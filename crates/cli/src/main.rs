//! The `gnoc` command-line tool: run the paper's characterisation and
//! experiments from the shell. See `gnoc help`.

use gnoc_chaos::{
    decompose, replay as replay_reproducer, run_chaos, run_iteration, shrink_violation,
    ChaosOptions, ChaosRun, Reproducer,
};
use gnoc_cli::{
    parse_invocation, AttackKind, ChaosAction, Command, FaultsAction, GpuChoice, SubmitWhat,
    TraceAction, TraceTarget, WorkloadKind, EXIT_CHECK_FAILED, EXIT_INVALID_INPUT, EXIT_IO,
    EXIT_OK, USAGE,
};
use gnoc_core::microbench::bandwidth::{aggregate_fabric_gbps, aggregate_memory_gbps};
use gnoc_core::noc::loadcurve::{hier_load_curve, mesh_load_curve, SweepConfig};
use gnoc_core::noc::{run_fairness_recorded, run_memsim_traced, HierConfig, MeshConfig};
use gnoc_core::noc::{ArbiterKind, FairnessConfig, MemSimConfig};
use gnoc_core::noc::{NodeId, PacketClass, ReliableMesh, RetryConfig};
use gnoc_core::sidechannel::covert::{
    bits_of, bytes_of, channel_snr, transmit, CovertChannelConfig,
};
use gnoc_core::workloads::replay::{replay, ReplayConfig};
use gnoc_core::workloads::{bfs, gaussian};
use gnoc_core::{
    fabric_connected, mesh_connected, resolve_jobs, AccessKind, AesAttackConfig,
    CheckpointedCampaign, CtaScheduler, FabricConfig, FabricHealthConfig, FabricHealthMonitor,
    FabricSim, FabricTopology, FaultPlan, GpuDevice, HealthConfig, LatencyCampaign, LatencyProbe,
    RsaAttackConfig, SelfHealingMesh, SliceId, SmId, Summary, WorkerPool,
};
use gnoc_core::{infer_placement, input_speedups, run_aes_attack, run_rsa_attack};
use gnoc_core::{
    FlightRecorder, JsonlWriter, MetricRegistry, ProfileReport, Telemetry, TelemetryHandle,
};
use gnoc_serve::client::{
    envelope_field_str, envelope_type, extract_payload, payload_summary, request_over_socket,
};
use gnoc_serve::{
    install_termination_flag, serve_stdin, Engine, JobSpec, ServeConfig, ServeError, SocketServer,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match parse_invocation(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(EXIT_INVALID_INPUT);
        }
    };

    // `--engine` overrides the NoC core (default: event, or GNOC_ENGINE).
    // Both engines are bit-identical; the flag only trades wall time.
    if let Some(engine) = inv.engine {
        gnoc_core::noc::set_event_skip_enabled(matches!(engine, gnoc_cli::EngineChoice::Event));
    }

    // `--trace`/`--metrics` turn telemetry on; otherwise every instrumented
    // call site stays on the zero-cost disabled path.
    let telemetry = if inv.trace.is_some() || inv.metrics.is_some() {
        let mut t = Telemetry::new();
        if let Some(path) = &inv.trace {
            match JsonlWriter::create(Path::new(path)) {
                Ok(sink) => t.set_sink(Box::new(sink)),
                Err(e) => {
                    eprintln!("error: cannot create trace file {path}: {e}");
                    return ExitCode::from(EXIT_IO);
                }
            }
        }
        TelemetryHandle::attach(t)
    } else {
        TelemetryHandle::disabled()
    };

    // `--faults` loads a plan once; subcommands pick it up where it applies.
    let plan = match &inv.faults {
        Some(path) => match FaultPlan::load(path) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("error: cannot load fault plan {path}: {e}");
                return ExitCode::from(plan_error_code(&e));
            }
        },
        None => None,
    };

    // The jobs knob (--jobs > GNOC_JOBS > machine) never changes results —
    // every parallel path is bit-identical to serial — only wall time.
    let pool = {
        let mut p = WorkerPool::new(resolve_jobs(inv.jobs));
        p.set_telemetry(telemetry.clone());
        p
    };

    let profile = inv.profile.as_deref().map(Path::new);
    let code = run(inv.command, plan.as_ref(), &telemetry, &pool, profile);

    telemetry.flush();
    if let Some(path) = &inv.metrics {
        let registry = telemetry.snapshot_registry().unwrap_or_default();
        if let Err(e) = registry.save(Path::new(path)) {
            eprintln!("error: cannot write metrics file {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    ExitCode::from(code)
}

/// Maps a fault-plan file error onto the documented exit codes: unreadable
/// file → I/O, unparsable or semantically invalid content → invalid input.
fn plan_error_code(e: &gnoc_core::FaultPlanError) -> u8 {
    match e {
        gnoc_core::FaultPlanError::Io(_) => EXIT_IO,
        _ => EXIT_INVALID_INPUT,
    }
}

/// Maps a chaos state/reproducer file error onto the documented exit codes.
fn chaos_error_code(e: &gnoc_chaos::ChaosError) -> u8 {
    match e {
        gnoc_chaos::ChaosError::Io(_) => EXIT_IO,
        _ => EXIT_INVALID_INPUT,
    }
}

fn device(
    gpu: GpuChoice,
    seed: u64,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> Result<GpuDevice, String> {
    let mut dev = match plan {
        Some(plan) => GpuDevice::with_faults(gpu.spec(), plan, seed)
            .map_err(|e| format!("fault plan does not fit {}: {e}", gpu.preset_name()))?,
        None => GpuDevice::with_seed(gpu.spec(), seed)
            .map_err(|e| format!("cannot build {}: {e}", gpu.preset_name()))?,
    };
    dev.set_telemetry(telemetry.clone());
    Ok(dev)
}

/// Unwraps a `Result` or prints the error and fails the subcommand with the
/// given exit code (default: invalid input).
macro_rules! try_or_fail {
    ($e:expr) => {
        try_or_fail!($e, EXIT_INVALID_INPUT)
    };
    ($e:expr, $code:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("error: {msg}");
                return $code;
            }
        }
    };
}

fn run(
    cmd: Command,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
    pool: &WorkerPool,
    profile: Option<&Path>,
) -> u8 {
    match cmd {
        Command::Help => print!("{USAGE}"),

        Command::Info { gpu } => {
            let spec = gpu.spec();
            for (label, value) in spec.table1_row() {
                println!("{label:<22}{value}");
            }
            println!();
            print!(
                "{}",
                spec.floorplan().render_ascii(&spec.hierarchy(), 96, 24)
            );
        }

        Command::Latency { gpu, sm, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let n = dev.hierarchy().num_sms() as u32;
            if sm >= n {
                eprintln!("error: SM {sm} out of range (device has {n} SMs)");
                return EXIT_INVALID_INPUT;
            }
            let probe = LatencyProbe::default();
            let profile = probe.sm_profile(&mut dev, SmId::new(sm));
            println!(
                "L2 hit latency from SM{sm} on {} ({} visible slices):",
                dev.spec().name,
                profile.len()
            );
            for (i, l) in profile.iter().enumerate() {
                println!("  slice {i:>3}: {l:>6.0} cycles");
            }
            println!("summary: {}", Summary::of(&profile));
            export_device_counters(&dev, telemetry);
        }

        Command::Bandwidth { gpu, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let fabric = aggregate_fabric_gbps(&mut dev);
            let mem = aggregate_memory_gbps(&mut dev);
            println!("{}:", dev.spec().name);
            println!("  aggregate L2 fabric bandwidth: {fabric:.0} GB/s");
            println!(
                "  aggregate memory bandwidth:    {mem:.0} GB/s ({:.0}% of peak)",
                100.0 * mem / dev.spec().mem_peak_gbps
            );
            println!("  fabric / memory ratio:         {:.2}x", fabric / mem);
            for (kind, label) in [
                (AccessKind::ReadHit, "reads"),
                (AccessKind::Write, "writes"),
            ] {
                let r = input_speedups(&dev, kind);
                println!(
                    "  input speedup ({label}): TPC {:.2}, GPC_l {:.1}/{}, GPC_g {:.1}/{}{}",
                    r.tpc,
                    r.gpc_local,
                    r.gpc_tpcs,
                    r.gpc_global,
                    r.gpc_sms,
                    r.cpc
                        .zip(r.cpc_sms)
                        .map(|(c, n)| format!(", CPC {c:.1}/{n}"))
                        .unwrap_or_default()
                );
            }
            export_device_counters(&dev, telemetry);
        }

        Command::Placement { gpu, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let probe = LatencyProbe {
                working_set_lines: 2,
                samples: 6,
            };
            let campaign = LatencyCampaign::run_traced(&mut dev, &probe, telemetry);
            let report = infer_placement(&campaign, &dev, 2.5);
            println!(
                "{}: grand mean latency {:.0} cycles over {}x{} pairs",
                dev.spec().name,
                campaign.grand_mean(),
                campaign.matrix.len(),
                campaign.matrix.first().map_or(0, Vec::len)
            );
            println!(
                "position recovery (corr vs proximity): {:.2}",
                report.position_recovery_r
            );
            println!("GPC groups inferred: {:?}", report.gpc_labels);
            println!("GPC groups actual:   {:?}", report.gpc_truth);
            println!("Rand index: {:.2}", report.gpc_rand_index);
            export_device_counters(&dev, telemetry);
        }

        Command::Attack {
            kind,
            gpu,
            scheduler,
            seed,
        } => match kind {
            AttackKind::Aes => {
                let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
                let key = [
                    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
                    0xcf, 0x4f, 0x3c,
                ];
                let cfg = AesAttackConfig {
                    samples: 2_500,
                    scheduler,
                    ..AesAttackConfig::new(key)
                };
                let r = run_aes_attack(&mut dev, &cfg, seed);
                println!(
                    "AES last-round key byte 0 on {} ({scheduler:?} scheduling):",
                    dev.spec().name
                );
                println!(
                    "  best guess 0x{:02x}, true 0x{:02x} → {}",
                    r.best_guess,
                    r.true_byte,
                    if r.succeeded() {
                        "KEY BYTE RECOVERED"
                    } else {
                        "attack defeated"
                    }
                );
                println!(
                    "  corr(true) {:+.3}, margin {:+.3}",
                    r.correlations[r.true_byte as usize], r.margin
                );
                export_device_counters(&dev, telemetry);
            }
            AttackKind::Rsa => {
                let dev = try_or_fail!(device(gpu, seed, plan, telemetry));
                let cfg = RsaAttackConfig {
                    scheduler,
                    ..RsaAttackConfig::default()
                };
                let r = run_rsa_attack(&dev, &cfg, seed);
                println!(
                    "RSA exponent-weight timing on {} ({scheduler:?} scheduling):",
                    dev.spec().name
                );
                println!("  fit R² = {:.3}", r.fit.r_squared);
                println!(
                    "  inverting one timing bounds the weight to ±{} bits",
                    r.weight_uncertainty
                );
                export_device_counters(&dev, telemetry);
            }
        },

        Command::Mesh {
            age_based,
            seed,
            transfers,
            self_heal,
            devices,
            topology,
        } => {
            let arbiter = if age_based {
                ArbiterKind::AgeBased
            } else {
                ArbiterKind::RoundRobin
            };
            if self_heal && plan.is_none() {
                eprintln!("error: --self-heal needs a --faults plan to heal around");
                return EXIT_INVALID_INPUT;
            }
            if devices >= 2 {
                // Multi-device: the same soak, but cross-device over the
                // inter-device fabric (paper dies joined by --topology).
                let args = FabricRunArgs {
                    devices,
                    topology: try_or_fail!(parse_topology(&topology)),
                    mesh: MeshConfig::paper_6x6(arbiter),
                    seed,
                    transfers,
                    cycles: 2_000_000,
                    self_heal,
                };
                return run_fabric(&args, plan, profile);
            }
            if let Some(plan) = plan {
                return run_faulted_mesh(
                    plan, arbiter, seed, transfers, self_heal, telemetry, profile,
                );
            }
            let fairness = FairnessConfig::paper(arbiter);
            let (r, rec) =
                run_fairness_recorded(fairness, seed, telemetry.clone(), profile.is_some());
            println!("6x6 mesh, 30 compute nodes → 6 MCs, {arbiter:?} arbitration:");
            for row in 0..5 {
                let cells: Vec<String> = (0..6)
                    .map(|c| format!("{:.3}", r.throughput[row * 6 + c]))
                    .collect();
                println!("  row {}: {}", row + 1, cells.join(" "));
            }
            println!("  unfairness (max/min): {:.2}x", r.unfairness);
            if let (Some(path), Some(rec)) = (profile, rec) {
                let cycles = fairness.warmup + fairness.measure;
                if let Err(code) = write_profile_artifacts(&rec, 6, 6, cycles, 5, path) {
                    return code;
                }
            }
        }

        Command::Faults { action } => return run_faults(action),

        Command::Fabric {
            devices,
            topology,
            width,
            height,
            seed,
            transfers,
            cycles,
            self_heal,
        } => {
            let args = FabricRunArgs {
                devices,
                topology: try_or_fail!(parse_topology(&topology)),
                mesh: MeshConfig {
                    width: width as usize,
                    height: height as usize,
                    buffer_packets: 4,
                    arbiter: ArbiterKind::RoundRobin,
                    route_order: gnoc_core::noc::RouteOrder::Xy,
                    vcs: 1,
                },
                seed,
                transfers,
                cycles,
                self_heal,
            };
            return run_fabric(&args, plan, profile);
        }

        Command::Chaos { action } => return run_chaos_action(action, telemetry, pool, profile),

        Command::Trace { action } => return run_trace_action(action, plan, telemetry),

        Command::Campaign {
            gpu,
            seed,
            checkpoint,
            lines,
            samples,
            quarantine,
            deadline_rows,
        } => {
            let probe = LatencyProbe {
                working_set_lines: lines,
                samples,
            };
            let preset = gpu.preset_name();
            let path = checkpoint.as_deref().map(Path::new);
            let mut campaign = try_or_fail!(match path {
                Some(p) => {
                    CheckpointedCampaign::resume_or_new(p, preset, seed, probe, plan.cloned())
                }
                None => CheckpointedCampaign::new(preset, seed, probe, plan.cloned()),
            }
            .map_err(|e| e.to_string()));
            campaign.set_telemetry(telemetry.clone());
            let resumed_at = campaign.completed_rows();
            if resumed_at > 0 {
                println!(
                    "resuming from checkpoint: {resumed_at}/{} rows done",
                    campaign.num_sms()
                );
            }
            if !quarantine.is_empty() || deadline_rows.is_some() {
                // Degraded mode: skip quarantined SMs, honor the row budget,
                // and salvage whatever was measured with explicit coverage.
                try_or_fail!(campaign
                    .set_quarantined_sms(quarantine)
                    .map_err(|e| e.to_string()));
                let (result, coverage) = try_or_fail!(campaign
                    .run_degraded(path, deadline_rows)
                    .map_err(|e| e.to_string()));
                println!(
                    "{preset}: grand mean latency {:.0} cycles (degraded campaign{})",
                    result.grand_mean(),
                    if plan.is_some() {
                        ", fault plan applied"
                    } else {
                        ""
                    }
                );
                println!(
                    "coverage: {}/{} rows measured ({:.0}%), {} quarantined, {} unreached",
                    coverage.measured,
                    coverage.total,
                    100.0 * coverage.fraction(),
                    coverage.quarantined.len(),
                    coverage.unreached
                );
                if let Some(p) = path {
                    println!("checkpoint: {}", p.display());
                }
                if let Some(p) = profile {
                    if let Err(code) = write_campaign_profile(
                        gpu,
                        seed,
                        plan,
                        &probe,
                        &result.matrix,
                        telemetry,
                        p,
                    ) {
                        return code;
                    }
                }
                return EXIT_OK;
            }
            let result = try_or_fail!(campaign
                .run_to_completion_par(path, pool)
                .map_err(|e| e.to_string()));
            println!(
                "{preset}: grand mean latency {:.0} cycles over {}x{} pairs{}",
                result.grand_mean(),
                result.matrix.len(),
                result.matrix.first().map_or(0, Vec::len),
                if plan.is_some() {
                    " (fault plan applied)"
                } else {
                    ""
                }
            );
            if let Some(p) = path {
                println!("checkpoint: {}", p.display());
            }
            if let Some(p) = profile {
                if let Err(code) =
                    write_campaign_profile(gpu, seed, plan, &probe, &result.matrix, telemetry, p)
                {
                    return code;
                }
            }
        }

        Command::Covert { gpu, far, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let slice = SliceId::new(5);
            let cfg = if far {
                CovertChannelConfig::far(&dev, slice, 2)
            } else {
                CovertChannelConfig::colocated(&dev, slice, 2)
            };
            println!(
                "covert channel on {} via {slice}, {} transmitter placement:",
                dev.spec().name,
                if far { "far" } else { "co-located" }
            );
            println!("  SNR: {:.1}", channel_snr(&mut dev, &cfg));
            let strong = CovertChannelConfig::colocated(&dev, slice, 6);
            let r = transmit(
                &mut dev,
                if far { &cfg } else { &strong },
                &bits_of(b"gnoc"),
            );
            println!(
                "  payload 'gnoc': BER {:.3}, decoded {:?}, capacity {:.0} kb/s",
                r.ber,
                String::from_utf8_lossy(&bytes_of(&r.received)),
                r.capacity_bits_per_sec() / 1e3
            );
            export_device_counters(&dev, telemetry);
        }

        Command::Replay {
            workload,
            gpu,
            random,
            blocks,
        } => {
            let dev = try_or_fail!(device(gpu, 0, plan, telemetry));
            let trace = match workload {
                WorkloadKind::Bfs => bfs::generate(bfs::BfsConfig::default(), 1),
                WorkloadKind::Gaussian => gaussian::generate(gaussian::GaussianConfig::default()),
            };
            let cfg = ReplayConfig {
                blocks,
                scheduler: if random {
                    CtaScheduler::RandomSeed
                } else {
                    CtaScheduler::Static
                },
                ..ReplayConfig::default()
            };
            let r = replay(&dev, &trace, &cfg);
            println!(
                "{} on {} ({} blocks, {} scheduling):",
                trace.name,
                dev.spec().name,
                blocks,
                if random { "random-seed" } else { "static" }
            );
            println!(
                "  {:.1} MB over {} steps in {:.3} ms — mean {:.0} GB/s",
                r.total_bytes / 1e6,
                r.step_gbps.len(),
                r.total_seconds * 1e3,
                r.mean_gbps()
            );
        }

        Command::LoadCurve { crossbar, seed } => {
            let rates = [0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25];
            let sweep = SweepConfig::default();
            let curve = if crossbar {
                hier_load_curve(HierConfig::gpu_like(), sweep, &rates, seed)
            } else {
                mesh_load_curve(
                    MeshConfig::paper_6x6(gnoc_core::ArbiterKind::RoundRobin),
                    sweep,
                    &rates,
                    seed,
                )
            };
            println!(
                "{} load sweep (30 terminals, 6 MCs):",
                if crossbar {
                    "hierarchical crossbar"
                } else {
                    "6x6 mesh"
                }
            );
            println!("{:>9} {:>10} {:>14}", "offered", "accepted", "mean latency");
            for p in curve {
                println!(
                    "{:>9.2} {:>10.2} {:>14.1}",
                    p.offered, p.accepted, p.mean_latency
                );
            }
        }

        Command::Memsim { provisioned, seed } => {
            let cfg = if provisioned {
                MemSimConfig::provisioned()
            } else {
                MemSimConfig::underprovisioned()
            };
            let r = run_memsim_traced(cfg, seed, telemetry.clone());
            println!(
                "request/reply memory simulation ({}):",
                if provisioned {
                    "provisioned reply interface"
                } else {
                    "under-provisioned reply interface"
                }
            );
            println!(
                "  mean channel utilisation {:.0}%, replies delivered {}",
                100.0 * r.mean_utilization,
                r.replies_delivered
            );
        }

        Command::Stats { path } => match MetricRegistry::load(Path::new(&path)) {
            Ok(registry) => print_stats(&registry),
            Err(e) => {
                eprintln!("error: cannot read metrics file {path}: {e}");
                return EXIT_IO;
            }
        },

        Command::Health {
            width,
            height,
            cycles,
            device,
            windows,
            seed,
        } => return run_health(width, height, cycles, device, windows, seed, plan),

        Command::Profile {
            width,
            height,
            age_based,
            seed,
            transfers,
            slowest,
            report,
            perfetto,
            jsonl,
            svg,
            devices,
            topology,
        } => {
            let arbiter = if age_based {
                ArbiterKind::AgeBased
            } else {
                ArbiterKind::RoundRobin
            };
            let outputs = ProfileOutputs {
                report,
                perfetto,
                jsonl,
                svg,
            };
            if devices >= 2 {
                return run_fabric_profile(
                    devices,
                    try_or_fail!(parse_topology(&topology)),
                    width as usize,
                    height as usize,
                    arbiter,
                    seed,
                    transfers,
                    slowest,
                    &outputs,
                    plan,
                );
            }
            return run_profile(
                width as usize,
                height as usize,
                arbiter,
                seed,
                transfers,
                slowest,
                &outputs,
                plan,
                telemetry,
            );
        }

        Command::Serve {
            state,
            socket,
            queue_cap,
            session_cap,
            max_rows,
            max_seeds,
            max_transfers,
            row_delay_ms,
        } => {
            let cfg = ServeConfig {
                state_dir: PathBuf::from(&state),
                queue_cap,
                session_cap,
                max_rows,
                max_seeds,
                max_transfers,
                row_delay_ms,
                jobs: pool.jobs(),
            };
            return run_serve(cfg, socket.as_deref(), telemetry);
        }

        Command::Submit {
            socket,
            what,
            payload_out,
            summary,
        } => return run_submit(&socket, &what, payload_out.as_deref(), summary, plan),

        Command::Batch { socket, file } => return run_batch(&socket, &file),
    }
    EXIT_OK
}

/// `gnoc serve`: open the state directory (replaying the journal), then
/// serve the line protocol on a Unix socket or stdin until drained.
fn run_serve(cfg: ServeConfig, socket: Option<&str>, telemetry: &TelemetryHandle) -> u8 {
    let state = cfg.state_dir.display().to_string();
    let engine = match Engine::open(cfg, telemetry.clone()) {
        Ok(engine) => engine,
        Err(ServeError::Config(msg)) => {
            eprintln!("error: {msg}");
            return EXIT_INVALID_INPUT;
        }
        Err(ServeError::Io(e)) => {
            eprintln!("error: cannot open state directory {state}: {e}");
            return EXIT_IO;
        }
    };
    if engine.recovered() > 0 {
        // The ci.sh crash-recovery smoke greps for this line.
        println!(
            "recovered {} unfinished job(s) from the journal",
            engine.recovered()
        );
    }
    match socket {
        Some(path) => {
            let term = install_termination_flag();
            let server = match SocketServer::bind(Path::new(path)) {
                Ok(server) => server,
                Err(ServeError::Config(msg)) => {
                    eprintln!("error: {msg}");
                    return EXIT_INVALID_INPUT;
                }
                Err(ServeError::Io(e)) => {
                    eprintln!("error: cannot bind socket {path}: {e}");
                    return EXIT_IO;
                }
            };
            println!("serving on {path} (state {state})");
            match server.run(&engine, term) {
                Ok(()) => {
                    println!("drained; exiting");
                    EXIT_OK
                }
                Err(e) => {
                    eprintln!("error: serve loop failed: {e}");
                    EXIT_IO
                }
            }
        }
        None => match serve_stdin(&engine) {
            Ok(()) => EXIT_OK,
            Err(e) => {
                eprintln!("error: serve loop failed: {e}");
                EXIT_IO
            }
        },
    }
}

/// Builds the protocol line a `gnoc submit` request sends. The structured
/// forms go through [`JobSpec::canonical_json`], so the client sends
/// exactly the canonical bytes the daemon would derive anyway. Errors only
/// for `submit replay`, whose trace file is read here on the client.
fn submit_line(what: &SubmitWhat, plan: Option<&FaultPlan>) -> Result<String, String> {
    Ok(match what {
        SubmitWhat::Raw(line) => line.clone(),
        SubmitWhat::Health => "{\"schema\":1,\"op\":\"health\"}".to_owned(),
        SubmitWhat::Shutdown => "{\"schema\":1,\"op\":\"shutdown\"}".to_owned(),
        SubmitWhat::Campaign {
            gpu,
            seed,
            lines,
            samples,
            deadline_rows,
        } => JobSpec::Campaign {
            device: gpu.preset_name().to_owned(),
            seed: *seed,
            lines: *lines,
            samples: *samples,
            deadline_rows: *deadline_rows,
            plan: plan.cloned(),
        }
        .canonical_json(),
        SubmitWhat::Mesh { seed, transfers } => JobSpec::Mesh {
            seed: *seed,
            transfers: *transfers,
            plan: plan.cloned(),
        }
        .canonical_json(),
        SubmitWhat::Chaos {
            seed_start,
            seed_count,
            transfers,
        } => JobSpec::Chaos {
            seed_start: *seed_start,
            seed_count: *seed_count,
            transfers: *transfers,
        }
        .canonical_json(),
        SubmitWhat::Fabric {
            devices,
            topology,
            seed,
            transfers,
        } => JobSpec::Fabric {
            devices: *devices,
            topology: topology.clone(),
            seed: *seed,
            transfers: *transfers,
        }
        .canonical_json(),
        SubmitWhat::Replay { trace } => {
            let bytes =
                std::fs::read(trace).map_err(|e| format!("cannot read trace {trace}: {e}"))?;
            JobSpec::Replay {
                trace_hex: gnoc_core::trace::to_hex(&bytes),
                plan: plan.cloned(),
            }
            .canonical_json()
        }
    })
}

/// Handles the terminal envelope of one request: prints it (or just the
/// payload summary), optionally captures the exact payload bytes, and maps
/// the outcome onto the documented exit codes.
fn settle_envelope(envelope: &str, payload_out: Option<&str>, summary: bool) -> u8 {
    match envelope_type(envelope).as_deref() {
        Some("done") | Some("health") => {
            let payload = extract_payload(envelope).unwrap_or("{}");
            if let Some(path) = payload_out {
                // The payload is written exactly as extracted — these are
                // the bytes the determinism pins `cmp`.
                if let Err(e) = std::fs::write(path, payload) {
                    eprintln!("error: cannot write payload to {path}: {e}");
                    return EXIT_IO;
                }
            }
            if summary {
                match payload_summary(payload) {
                    Some(line) => println!("{line}"),
                    None => println!("{envelope}"),
                }
            } else {
                println!("{envelope}");
            }
            EXIT_OK
        }
        Some("bye") => {
            println!("{envelope}");
            EXIT_OK
        }
        Some("failed") => {
            let error = envelope_field_str(envelope, "error").unwrap_or_default();
            eprintln!("error: job failed: {error}");
            EXIT_CHECK_FAILED
        }
        Some("rejected") => {
            let reason = envelope_field_str(envelope, "reason").unwrap_or_default();
            eprintln!("error: rejected: {reason}");
            if reason.starts_with("invalid: ") {
                EXIT_INVALID_INPUT
            } else {
                EXIT_CHECK_FAILED
            }
        }
        _ => {
            eprintln!("error: unexpected response: {envelope}");
            EXIT_IO
        }
    }
}

/// `gnoc submit`: one request to a running daemon, one exit code.
fn run_submit(
    socket: &str,
    what: &SubmitWhat,
    payload_out: Option<&str>,
    summary: bool,
    plan: Option<&FaultPlan>,
) -> u8 {
    let line = match submit_line(what, plan) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_IO;
        }
    };
    let envelopes = match request_over_socket(Path::new(socket), &line) {
        Ok(envelopes) => envelopes,
        Err(e) => {
            eprintln!("error: cannot reach daemon at {socket}: {e}");
            return EXIT_IO;
        }
    };
    // Progress envelopes (accepted) are printed as they came unless the
    // caller asked for just the summary.
    for envelope in &envelopes[..envelopes.len() - 1] {
        if !summary {
            println!("{envelope}");
        }
    }
    settle_envelope(
        envelopes.last().expect("terminal envelope"),
        payload_out,
        summary,
    )
}

/// `gnoc batch`: submit each non-empty line of a request file, in order.
/// The exit code is the worst per-request code.
fn run_batch(socket: &str, file: &str) -> u8 {
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return EXIT_IO;
        }
    };
    let mut worst = EXIT_OK;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let code = match request_over_socket(Path::new(socket), line) {
            Ok(envelopes) => {
                settle_envelope(envelopes.last().expect("terminal envelope"), None, false)
            }
            Err(e) => {
                eprintln!("error: cannot reach daemon at {socket}: {e}");
                EXIT_IO
            }
        };
        worst = worst.max(code);
    }
    worst
}

/// Optional artifact paths of `gnoc profile`.
struct ProfileOutputs {
    report: Option<String>,
    perfetto: Option<String>,
    jsonl: Option<String>,
    svg: Option<String>,
}

/// `gnoc profile`: flight-record a reliable-mesh soak (faulted when a
/// `--faults` plan is given, otherwise fault-free) and print the
/// stall-attribution report: where every stalled cycle of every message
/// went, the hottest links, a per-router utilization heatmap, and the
/// critical path of the slowest transfers. All timestamps are virtual
/// cycles, so every artifact is bit-identical across runs and `--jobs`.
#[allow(clippy::too_many_arguments)]
fn run_profile(
    width: usize,
    height: usize,
    arbiter: ArbiterKind,
    seed: u64,
    transfers: usize,
    slowest: usize,
    outputs: &ProfileOutputs,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> u8 {
    let cfg = MeshConfig {
        width,
        height,
        buffer_packets: 4,
        arbiter,
        route_order: gnoc_core::noc::RouteOrder::Xy,
        vcs: 1,
    };
    let benign = FaultPlan::none();
    let plan = plan.unwrap_or(&benign);
    let mut rm = try_or_fail!(ReliableMesh::with_faults(cfg, plan, RetryConfig::default())
        .map_err(|e| format!("plan does not fit a {width}x{height} mesh: {e}")));
    rm.mesh_mut().set_telemetry(telemetry.clone());
    rm.mesh_mut().attach_flight_recorder();

    // The same splitmix64 traffic stream as `gnoc mesh --faults`, with
    // varied packet lengths so serialization stalls show up in the profile.
    let nodes = (width * height) as u64;
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut submitted = 0usize;
    while submitted < transfers {
        let src = (next() % nodes) as u32;
        let dst = (next() % nodes) as u32;
        let flits = 1 + (next() % 4) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), flits, PacketClass::Request);
        submitted += 1;
    }
    let quiesced = rm.run_until_quiescent(2_000_000);
    let cycles = rm.mesh().cycle();
    let rec = rm
        .mesh_mut()
        .take_flight_recorder()
        .expect("recorder attached above");

    let report = ProfileReport::from_recorder(&rec, width, height, cycles, slowest);
    print!("{}", report.render_text());
    if let Err(code) = write_profile_outputs(&report, &rec, outputs) {
        return code;
    }
    if !quiesced {
        eprintln!(
            "error: mesh failed to quiesce (outstanding {})",
            rm.outstanding()
        );
        return EXIT_CHECK_FAILED;
    }
    EXIT_OK
}

/// Writes the optional `gnoc profile` artifacts (report, Perfetto trace,
/// JSONL event stream, utilization heatmap SVG) shared by the single-die
/// and multi-device paths.
fn write_profile_outputs(
    report: &ProfileReport,
    rec: &FlightRecorder,
    outputs: &ProfileOutputs,
) -> Result<(), u8> {
    macro_rules! write_or_fail {
        ($path:expr, $content:expr, $label:expr) => {
            if let Err(e) = std::fs::write($path, $content) {
                eprintln!("error: cannot write {} {}: {e}", $label, $path);
                return Err(EXIT_IO);
            }
        };
    }
    if let Some(path) = &outputs.report {
        write_or_fail!(path, report.to_json_pretty(), "report");
        println!("report: {path}");
    }
    if let Some(path) = &outputs.perfetto {
        write_or_fail!(path, rec.chrome_trace(), "trace");
        println!("perfetto trace: {path} (load at ui.perfetto.dev)");
    }
    if let Some(path) = &outputs.jsonl {
        let mut sink = match JsonlWriter::create(Path::new(path)) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("error: cannot create event stream {path}: {e}");
                return Err(EXIT_IO);
            }
        };
        rec.stream_to(&mut sink);
        println!("events: {path}");
    }
    if let Some(path) = &outputs.svg {
        write_or_fail!(path, report.utilization_heatmap_svg(), "heatmap");
        println!("heatmap: {path}");
    }
    Ok(())
}

/// `gnoc profile --devices N`: flight-record a cross-device fabric soak and
/// reduce it the same way. The profile grid is the fabric node graph (one
/// column per device, plus the switch node when present); fabric-hop
/// serialization shows up as its own stall class in the attribution.
#[allow(clippy::too_many_arguments)]
fn run_fabric_profile(
    devices: u32,
    topology: FabricTopology,
    width: usize,
    height: usize,
    arbiter: ArbiterKind,
    seed: u64,
    transfers: usize,
    slowest: usize,
    outputs: &ProfileOutputs,
    plan: Option<&FaultPlan>,
) -> u8 {
    let benign = FaultPlan::none();
    let plan = plan.unwrap_or(&benign);
    let mut cfg = FabricConfig::new(devices, topology);
    cfg.mesh = MeshConfig {
        width,
        height,
        buffer_packets: 4,
        arbiter,
        route_order: gnoc_core::noc::RouteOrder::Xy,
        vcs: 1,
    };
    let mut sim = try_or_fail!(FabricSim::with_faults(cfg, plan)
        .map_err(|e| format!("cannot build the {devices}-device {topology} fabric: {e}")));
    sim.attach_flight_recorder();
    try_or_fail!(submit_cli_fabric_traffic(
        &mut sim,
        devices,
        (width * height) as u64,
        seed,
        transfers
    ));
    let quiesced = sim.run_until_quiescent(2_000_000);
    let cycles = sim.cycle();
    let rec = sim.take_flight_recorder().expect("recorder attached above");
    let fabric_nodes = topology.node_count(devices) as usize;
    let report = ProfileReport::from_recorder(&rec, fabric_nodes, 1, cycles, slowest);
    print!("{}", report.render_text());
    if let Err(code) = write_profile_outputs(&report, &rec, outputs) {
        return code;
    }
    if !quiesced {
        eprintln!(
            "error: fabric failed to quiesce (outstanding {})",
            sim.outstanding()
        );
        return EXIT_CHECK_FAILED;
    }
    EXIT_OK
}

/// `gnoc health`: online fault detection. The `--faults` plan (or an empty
/// one) is applied physically but hidden from routing; the health layer must
/// infer faults from behavioral telemetry, quarantine them, and report what
/// it found. With `--device`, the plan's disabled slices are additionally
/// planted as latent device faults for the slice monitors to find.
fn run_health(
    width: u32,
    height: u32,
    cycles: u64,
    device: Option<GpuChoice>,
    windows: u64,
    seed: u64,
    plan: Option<&FaultPlan>,
) -> u8 {
    let benign = FaultPlan::none();
    let plan = plan.unwrap_or(&benign);
    let mesh_cfg = MeshConfig {
        width: width as usize,
        height: height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: gnoc_core::noc::RouteOrder::Xy,
        vcs: 1,
    };
    let mut healer = try_or_fail!(SelfHealingMesh::new(
        mesh_cfg,
        plan,
        RetryConfig::default(),
        HealthConfig::default(),
    )
    .map_err(|e| format!("plan does not fit a {width}x{height} mesh: {e}")));
    try_or_fail!(healer
        .run_detection(cycles)
        .map_err(|e| format!("detection run failed: {e}")));
    let report = healer.report();
    println!(
        "self-healing {width}x{height} mesh, plan [{}] hidden from routing:",
        plan.summary()
    );
    println!(
        "  {} cycles, {} health windows, {} patrol rounds",
        report.cycles, report.windows, report.patrol_rounds
    );
    println!(
        "  patrol traffic: {} delivered, {} lost, {} retries, {} reroutes",
        report.delivered, report.lost, report.retries, report.reroutes
    );
    if report.transitions.is_empty() {
        println!("  breakers: all closed (no faults detected)");
    } else {
        println!("  breaker transitions:");
        for t in &report.transitions {
            println!(
                "    cycle {:>8}: {} {} -> {}",
                t.at, t.resource, t.from, t.to
            );
        }
    }
    if !report.quarantined_now.is_empty() {
        println!("  quarantined now: {}", report.quarantined_now.join(", "));
    }
    for refusal in &report.refused {
        println!("  quarantine refused (would disconnect): {refusal}");
    }

    if let Some(gpu) = device {
        let monitor = try_or_fail!(gnoc_core::health::run_slice_detection_for_spec(
            gpu.spec(),
            plan,
            seed,
            HealthConfig::default(),
            windows,
        )
        .map_err(|e| format!("slice detection on {}: {e}", gpu.preset_name())))
        .1;
        let found = monitor.detected_slices();
        println!(
            "{} slice probe ({windows} windows): {} slice breaker(s) opened",
            gpu.preset_name(),
            found.len()
        );
        for (slice, window) in found {
            println!("  slice {slice}: first opened in window {window}");
        }
    }
    EXIT_OK
}

/// `gnoc mesh --faults plan.json`: retrying delivery over a degraded mesh.
///
/// Submits uniform-random (but seed-deterministic) transfers through a
/// [`ReliableMesh`] with the plan applied, then reports delivery, loss,
/// retry, and tail-latency figures; `--metrics` captures the `noc.retry.*`
/// counters. With `--self-heal` the plan is hidden from routing and the
/// health layer quarantines what it detects instead.
fn run_faulted_mesh(
    plan: &FaultPlan,
    arbiter: ArbiterKind,
    seed: u64,
    transfers: usize,
    self_heal: bool,
    telemetry: &TelemetryHandle,
    profile: Option<&Path>,
) -> u8 {
    let cfg = MeshConfig::paper_6x6(arbiter);
    let nodes = (cfg.width * cfg.height) as u64;
    let mut rm = if self_heal {
        let mut healer = try_or_fail!(SelfHealingMesh::new(
            cfg,
            plan,
            RetryConfig::default(),
            HealthConfig::default()
        )
        .map_err(|e| e.to_string()));
        if profile.is_some() {
            // Attach before the warm-up so the trace shows the healing
            // episode itself: patrol traffic, breaker transitions, and the
            // stalls the quarantines cause and cure.
            healer.rm_mut().mesh_mut().attach_flight_recorder();
        }
        // Warm-up patrol: detect and quarantine before user traffic.
        try_or_fail!(healer
            .run_detection(20_000)
            .map_err(|e| format!("self-heal warm-up failed: {e}")));
        let report = healer.report();
        println!(
            "self-heal warm-up: {} breaker transition(s), quarantined now: {}",
            report.transitions.len(),
            if report.quarantined_now.is_empty() {
                "(none)".to_owned()
            } else {
                report.quarantined_now.join(", ")
            }
        );
        healer.into_mesh()
    } else {
        try_or_fail!(
            ReliableMesh::with_faults(cfg, plan, RetryConfig::default()).map_err(|e| e.to_string())
        )
    };
    rm.mesh_mut().set_telemetry(telemetry.clone());
    if profile.is_some() && rm.mesh().flight_recorder().is_none() {
        rm.mesh_mut().attach_flight_recorder();
    }

    submit_mesh_soak_traffic(&mut rm, nodes, seed, transfers);

    let quiesced = rm.run_until_quiescent(2_000_000);
    let s = rm.stats().clone();
    let m = rm.mesh().stats().clone();
    println!(
        "6x6 mesh under fault plan [{}], {arbiter:?} arbitration:",
        plan.summary()
    );
    println!(
        "  transfers: {} submitted, {} delivered, {} lost",
        s.submitted,
        s.delivered,
        s.lost_total()
    );
    println!(
        "  losses:    {} unroutable, {} retries-exhausted, {} watchdog",
        s.lost_unroutable, s.lost_retries_exhausted, s.lost_watchdog
    );
    println!(
        "  retries:   {} ({} corrupt NACKs, {} duplicates suppressed)",
        s.retries, s.corrupt_retries, s.duplicates_suppressed
    );
    println!(
        "  fabric:    {} flaky drops, {} transient drops, {} corrupted, reroutes {}, dead links {}",
        m.dropped_flaky,
        m.dropped_transient,
        m.corrupted,
        m.reroutes,
        rm.mesh().dead_links_active()
    );
    println!(
        "  latency:   mean {:.1}, p50 {:.0}, p99 {:.0}, max {} cycles",
        s.mean_latency(),
        s.latency_quantile(0.50),
        s.latency_quantile(0.99),
        s.latency_max
    );
    if rm.watchdog_tripped() {
        println!(
            "  watchdog:  tripped {} time(s) — stuck traffic written off, no hang",
            s.watchdog_trips
        );
    }
    telemetry.with(|t| rm.export_metrics(&mut t.registry));
    if let Some(path) = profile {
        let cycles = rm.mesh().cycle();
        let rec = rm
            .mesh_mut()
            .take_flight_recorder()
            .expect("recorder attached at mesh construction");
        if let Err(code) = write_profile_artifacts(&rec, cfg.width, cfg.height, cycles, 5, path) {
            return code;
        }
    }
    if !quiesced {
        eprintln!(
            "error: mesh failed to quiesce (outstanding {})",
            rm.outstanding()
        );
        return EXIT_CHECK_FAILED;
    }
    EXIT_OK
}

/// The `gnoc mesh` splitmix64 traffic stream keyed by the seed, shared by
/// the live faulted soak and `gnoc trace record mesh` so a recording
/// captures exactly the run it stands in for.
fn submit_mesh_soak_traffic(rm: &mut ReliableMesh, nodes: u64, seed: u64, transfers: usize) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut submitted = 0usize;
    while submitted < transfers {
        let src = (next() % nodes) as u32;
        let dst = (next() % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
        submitted += 1;
    }
}

/// Resolves a topology name the parser already validated.
fn parse_topology(name: &str) -> Result<FabricTopology, String> {
    FabricTopology::parse(name)
        .ok_or_else(|| format!("unknown topology '{name}' (p2p|line|ring|fully|switch)"))
}

/// What `gnoc fabric` (and `gnoc mesh --devices N`) runs.
struct FabricRunArgs {
    devices: u32,
    topology: FabricTopology,
    mesh: MeshConfig,
    seed: u64,
    transfers: usize,
    cycles: u64,
    self_heal: bool,
}

/// Submits `transfers` seed-deterministic transfers with uniform-random
/// device and node endpoints (same-device pairs included, so die-local and
/// cross-device traffic mix) and varied packet lengths.
fn submit_cli_fabric_traffic(
    sim: &mut FabricSim,
    devices: u32,
    nodes: u64,
    seed: u64,
    transfers: usize,
) -> Result<(), String> {
    let devs = u64::from(devices);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut submitted = 0usize;
    while submitted < transfers {
        let src_dev = (next() % devs) as u32;
        let dst_dev = (next() % devs) as u32;
        let src = (next() % nodes) as u32;
        let dst = (next() % nodes) as u32;
        if src_dev == dst_dev && src == dst {
            continue;
        }
        let flits = 1 + (next() % 4) as u32;
        sim.submit(
            src_dev,
            NodeId(src),
            dst_dev,
            NodeId(dst),
            flits,
            PacketClass::Request,
        )
        .map_err(|e| e.to_string())?;
        submitted += 1;
    }
    Ok(())
}

/// `gnoc fabric` (and `gnoc mesh --devices N`): a cross-device soak over
/// per-die meshes joined by the inter-device topology. With a `--faults`
/// plan, routing fails over around dead fabric links, a dead switch, and
/// lost devices the cycle they manifest; with `--self-heal`, the plan is
/// hidden from fabric routing and per-link breakers detect, quarantine,
/// and reroute online instead, refusing any quarantine that would
/// partition the surviving devices.
fn run_fabric(args: &FabricRunArgs, plan: Option<&FaultPlan>, profile: Option<&Path>) -> u8 {
    let benign = FaultPlan::none();
    let plan = plan.unwrap_or(&benign);
    let mut cfg = FabricConfig::new(args.devices, args.topology);
    cfg.mesh = args.mesh;
    cfg.self_healing = args.self_heal;
    let mut sim = try_or_fail!(FabricSim::with_faults(cfg, plan).map_err(|e| format!(
        "cannot build the {}-device {} fabric: {e}",
        args.devices, args.topology
    )));
    if profile.is_some() {
        sim.attach_flight_recorder();
    }
    let mut monitor = args
        .self_heal
        .then(|| FabricHealthMonitor::new(&sim, FabricHealthConfig::default()));
    if let Some(m) = monitor.as_mut() {
        // Warm-up patrol before user traffic, mirroring `mesh --self-heal`:
        // detect, quarantine, and reroute while only probe packets are at
        // risk.
        m.run_detection(&mut sim, 20_000);
        let report = m.report(&sim);
        println!(
            "self-heal warm-up: {} window(s), {} breaker transition(s)",
            report.windows,
            report.transitions.len()
        );
        for t in &report.transitions {
            println!(
                "    cycle {:>8}: {} {} -> {}",
                t.at, t.resource, t.from, t.to
            );
        }
        if !report.quarantined.is_empty() {
            let q: Vec<String> = report
                .quarantined
                .iter()
                .map(|(a, b)| format!("{a}<->{b}"))
                .collect();
            println!("  quarantined now: {}", q.join(", "));
        }
        if report.refusals > 0 {
            println!(
                "  quarantine refused (would partition): {}",
                report.refusals
            );
        }
        if !report.partitioned_devices.is_empty() {
            println!(
                "  devices outside reliable coverage: {:?}",
                report.partitioned_devices
            );
        }
    }

    let nodes = (args.mesh.width * args.mesh.height) as u64;
    try_or_fail!(submit_cli_fabric_traffic(
        &mut sim,
        args.devices,
        nodes,
        args.seed,
        args.transfers
    ));
    let start = sim.cycle();
    let quiesced = if let Some(m) = monitor.as_mut() {
        // Keep the breakers polling during the soak so mid-traffic fault
        // onsets are detected and failed over too.
        while sim.outstanding() > 0 && sim.cycle() - start < args.cycles {
            sim.step();
            m.poll(&mut sim);
        }
        sim.outstanding() == 0
    } else {
        sim.run_until_quiescent(args.cycles)
    };

    let s = sim.stats().clone();
    println!(
        "{}-device {} fabric, {}x{} dies, plan [{}], {} routing:",
        args.devices,
        args.topology,
        args.mesh.width,
        args.mesh.height,
        plan.summary(),
        if args.self_heal {
            "self-healing"
        } else {
            "fault-aware"
        }
    );
    println!(
        "  transfers: {} submitted ({} cross-device), {} delivered, {} lost",
        s.submitted,
        s.cross_device,
        s.delivered,
        s.lost_total()
    );
    println!(
        "  losses:    {} partitioned, {} die, {} fabric-retries, {} watchdog",
        s.lost_partitioned, s.lost_die, s.lost_fabric_retries, s.lost_watchdog
    );
    println!(
        "  fabric:    {} hops, {} crossing retries, {} reroutes",
        s.fabric_hops, s.fabric_retries, s.reroutes
    );
    let dead = sim.dead_devices();
    if !dead.is_empty() {
        println!("  dead devices: {dead:?}");
    }
    println!(
        "  latency:   mean {:.1}, max {} cycles",
        s.mean_latency(),
        s.latency_max
    );
    if let Some(m) = &monitor {
        let report = m.report(&sim);
        for d in &report.detections {
            println!(
                "  detected:  {} (first opened at cycle {}, now {})",
                d.resource, d.first_open_at, d.state
            );
        }
        if !report.partitioned_devices.is_empty() {
            println!(
                "  degraded coverage: devices {:?} have no reliable fabric path",
                report.partitioned_devices
            );
        }
    }

    if let Some(path) = profile {
        let cycles = sim.cycle();
        let rec = sim.take_flight_recorder().expect("recorder attached above");
        let fabric_nodes = args.topology.node_count(args.devices) as usize;
        if let Err(code) = write_profile_artifacts(&rec, fabric_nodes, 1, cycles, 5, path) {
            return code;
        }
    }
    if !quiesced {
        eprintln!(
            "error: fabric failed to quiesce (outstanding {})",
            sim.outstanding()
        );
        return EXIT_CHECK_FAILED;
    }
    EXIT_OK
}

// ---------------------------------------------------------------------------
// gnoc trace: deterministic record/replay of soaks and campaigns
// ---------------------------------------------------------------------------

use gnoc_core::trace::{
    validate_stream, ReplayError, ReplayOutcome, TraceError, TraceHeader, TraceKind, TraceReader,
    TraceTap,
};
use gnoc_core::trace_digest;

/// Maps a trace-stream error onto the documented exit codes: I/O failure →
/// 3, wrong magic or schema → 2 (retrying the same file cannot succeed;
/// re-record it), corruption → 1. A truncated tail is normally a
/// salvageable warning handled by the caller, but a trace cut before its
/// header completes has no replayable prefix and counts as a failed check.
fn trace_error_code(e: &TraceError) -> u8 {
    match e {
        TraceError::Io(_) => EXIT_IO,
        TraceError::BadMagic { .. } | TraceError::SchemaVersion { .. } => EXIT_INVALID_INPUT,
        TraceError::CorruptChunk { .. } | TraceError::TruncatedTail { .. } => EXIT_CHECK_FAILED,
    }
}

/// Maps a replay-driver error: stream problems keep their trace code; a
/// CRC-valid event that does not fit the simulator (wrong node range) is a
/// crafted or mismatched trace — invalid input.
fn replay_error_exit(e: &ReplayError) -> u8 {
    eprintln!("error: {e}");
    match e {
        ReplayError::Trace(t) => trace_error_code(t),
        ReplayError::Event { .. } => EXIT_INVALID_INPUT,
    }
}

fn run_trace_action(
    action: TraceAction,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> u8 {
    match action {
        TraceAction::Record { target, out, stats } => record_trace(
            &target,
            Path::new(&out),
            stats.as_deref().map(Path::new),
            plan,
            telemetry,
        ),
        TraceAction::Replay { path, stats } => replay_trace(
            Path::new(&path),
            stats.as_deref().map(Path::new),
            plan,
            telemetry,
        ),
        TraceAction::Validate { path } => validate_trace(Path::new(&path)),
        TraceAction::Info { path } => trace_info(Path::new(&path)),
    }
}

/// Writes the canonical stats line where `--stats` asked for it. The same
/// bytes come out of a recording and any faithful replay, so scripts pin
/// replay fidelity with a plain `cmp`.
fn write_stats_line(path: &Path, line: &str) -> Result<(), u8> {
    if let Err(e) = gnoc_core::atomic_write(path, line.as_bytes()) {
        eprintln!("error: cannot write stats file {}: {e}", path.display());
        return Err(EXIT_IO);
    }
    Ok(())
}

fn record_trace(
    target: &TraceTarget,
    out: &Path,
    stats_out: Option<&Path>,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> u8 {
    let plan_fnv = trace_digest::plan_digest(plan);
    let benign = FaultPlan::none();
    match target {
        TraceTarget::Mesh { seed, transfers } => {
            // Exactly the `gnoc mesh --faults` soak (paper 6x6, round-robin,
            // default retry policy), with the tap recording each submission.
            let cfg = MeshConfig::paper_6x6(ArbiterKind::RoundRobin);
            let header = TraceHeader::mesh(
                cfg.width as u32,
                cfg.height as u32,
                *seed,
                *transfers as u64,
                plan_fnv,
            );
            let tap = try_or_fail!(
                TraceTap::to_file(out, &header)
                    .map_err(|e| format!("cannot create trace {}: {e}", out.display())),
                EXIT_IO
            );
            let mut rm = try_or_fail!(ReliableMesh::with_faults(
                cfg,
                plan.unwrap_or(&benign),
                RetryConfig::default()
            )
            .map_err(|e| e.to_string()));
            rm.mesh_mut().set_telemetry(telemetry.clone());
            rm.attach_trace_tap(tap);
            submit_mesh_soak_traffic(&mut rm, (cfg.width * cfg.height) as u64, *seed, *transfers);
            let quiesced = rm.run_until_quiescent(2_000_000);
            let line = try_or_fail!(trace_digest::mesh_stats_line(&rm));
            let tap = rm.take_trace_tap().expect("tap attached above");
            let events = tap.events();
            try_or_fail!(
                tap.finish_file(trace_digest::line_digest(&line))
                    .map_err(|e| format!("cannot finalize trace {}: {e}", out.display())),
                EXIT_IO
            );
            finish_recording("mesh", out, events, &line, stats_out, quiesced)
        }
        TraceTarget::Fabric {
            devices,
            topology,
            width,
            height,
            seed,
            transfers,
            cycles,
        } => {
            // Exactly the `gnoc fabric` soak with fault-aware routing
            // (self-heal runs are not recordable: the breaker poll loop
            // lives outside the injected stream).
            let topo = try_or_fail!(parse_topology(topology));
            let mut cfg = FabricConfig::new(*devices, topo);
            cfg.mesh = MeshConfig {
                width: *width as usize,
                height: *height as usize,
                buffer_packets: 4,
                arbiter: ArbiterKind::RoundRobin,
                route_order: gnoc_core::noc::RouteOrder::Xy,
                vcs: 1,
            };
            let header = TraceHeader::fabric(
                *devices,
                topology,
                *width,
                *height,
                *seed,
                *transfers as u64,
                plan_fnv,
            );
            let tap = try_or_fail!(
                TraceTap::to_file(out, &header)
                    .map_err(|e| format!("cannot create trace {}: {e}", out.display())),
                EXIT_IO
            );
            let mut sim = try_or_fail!(FabricSim::with_faults(cfg, plan.unwrap_or(&benign))
                .map_err(|e| format!("cannot build the {devices}-device {topology} fabric: {e}")));
            sim.attach_trace_tap(tap);
            let nodes = u64::from(*width) * u64::from(*height);
            try_or_fail!(submit_cli_fabric_traffic(
                &mut sim, *devices, nodes, *seed, *transfers
            ));
            let quiesced = sim.run_until_quiescent(*cycles);
            let line = try_or_fail!(trace_digest::fabric_stats_line(&sim));
            let tap = sim.take_trace_tap().expect("tap attached above");
            let events = tap.events();
            try_or_fail!(
                tap.finish_file(trace_digest::line_digest(&line))
                    .map_err(|e| format!("cannot finalize trace {}: {e}", out.display())),
                EXIT_IO
            );
            finish_recording("fabric", out, events, &line, stats_out, quiesced)
        }
        TraceTarget::Campaign {
            gpu,
            seed,
            lines,
            samples,
        } => {
            // A campaign injects no transfers: the trace is header+footer,
            // the header re-instantiates the run and the footer pins the
            // latency-matrix digest.
            let preset = gpu.preset_name();
            let probe = LatencyProbe {
                working_set_lines: *lines,
                samples: *samples,
            };
            let header =
                TraceHeader::campaign(preset, *seed, *lines as u32, *samples as u32, plan_fnv);
            let tap = try_or_fail!(
                TraceTap::to_file(out, &header)
                    .map_err(|e| format!("cannot create trace {}: {e}", out.display())),
                EXIT_IO
            );
            let mut campaign =
                try_or_fail!(
                    CheckpointedCampaign::new(preset, *seed, probe, plan.cloned())
                        .map_err(|e| e.to_string())
                );
            campaign.set_telemetry(telemetry.clone());
            let result = try_or_fail!(campaign.run_to_completion(None).map_err(|e| e.to_string()));
            let line = trace_digest::campaign_stats_line(preset, &result);
            try_or_fail!(
                tap.finish_file(trace_digest::line_digest(&line))
                    .map_err(|e| format!("cannot finalize trace {}: {e}", out.display())),
                EXIT_IO
            );
            finish_recording("campaign", out, 0, &line, stats_out, true)
        }
    }
}

fn finish_recording(
    kind: &str,
    out: &Path,
    events: u64,
    line: &str,
    stats_out: Option<&Path>,
    quiesced: bool,
) -> u8 {
    if let Some(p) = stats_out {
        if let Err(code) = write_stats_line(p, line) {
            return code;
        }
    }
    println!(
        "recorded {kind} trace: {} ({events} event(s), stats digest {:016x})",
        out.display(),
        trace_digest::line_digest(line)
    );
    if !quiesced {
        eprintln!(
            "error: the recorded run failed to quiesce; the sealed digest \
             reflects the budget-exhausted state"
        );
        return EXIT_CHECK_FAILED;
    }
    EXIT_OK
}

fn replay_trace(
    path: &Path,
    stats_out: Option<&Path>,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> u8 {
    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open trace {}: {e}", path.display());
            return trace_error_code(&e);
        }
    };
    let header = reader.header().clone();
    let plan_fnv = trace_digest::plan_digest(plan);
    if header.plan_fnv != plan_fnv {
        eprintln!(
            "error: trace was recorded against fault plan {:016x} but this \
             invocation supplies {:016x}; pass the recording's --faults plan",
            header.plan_fnv, plan_fnv
        );
        return EXIT_INVALID_INPUT;
    }
    let benign = FaultPlan::none();
    let mesh_cfg = MeshConfig {
        width: header.width as usize,
        height: header.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: gnoc_core::noc::RouteOrder::Xy,
        vcs: 1,
    };
    match header.kind {
        TraceKind::Mesh => {
            let mut rm = try_or_fail!(ReliableMesh::with_faults(
                mesh_cfg,
                plan.unwrap_or(&benign),
                RetryConfig::default()
            )
            .map_err(|e| e.to_string()));
            rm.mesh_mut().set_telemetry(telemetry.clone());
            let outcome = match rm.replay_from(&mut reader) {
                Ok(o) => o,
                Err(e) => return replay_error_exit(&e),
            };
            rm.run_until_quiescent(2_000_000);
            let line = try_or_fail!(trace_digest::mesh_stats_line(&rm));
            let recorded = reader.footer().map(|f| f.stats_fnv);
            finish_replay("mesh", &line, stats_out, &outcome, recorded)
        }
        TraceKind::Fabric => {
            let topo = try_or_fail!(parse_topology(&header.topology));
            let mut cfg = FabricConfig::new(header.devices, topo);
            cfg.mesh = mesh_cfg;
            let mut sim = try_or_fail!(
                FabricSim::with_faults(cfg, plan.unwrap_or(&benign)).map_err(|e| e.to_string())
            );
            let outcome = match sim.replay_from(&mut reader) {
                Ok(o) => o,
                Err(e) => return replay_error_exit(&e),
            };
            sim.run_until_quiescent(2_000_000);
            let line = try_or_fail!(trace_digest::fabric_stats_line(&sim));
            let recorded = reader.footer().map(|f| f.stats_fnv);
            finish_replay("fabric", &line, stats_out, &outcome, recorded)
        }
        TraceKind::Campaign => {
            // No events to drive — CRC-check the (empty) stream, then
            // re-run the campaign from the header and compare digests.
            let summary = match validate_stream(&mut reader) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return trace_error_code(&e);
                }
            };
            let device = header.device.clone().unwrap_or_default();
            let probe = LatencyProbe {
                working_set_lines: header.lines as usize,
                samples: header.samples as usize,
            };
            let mut campaign =
                try_or_fail!(
                    CheckpointedCampaign::new(&device, header.seed, probe, plan.cloned())
                        .map_err(|e| e.to_string())
                );
            campaign.set_telemetry(telemetry.clone());
            let result = try_or_fail!(campaign.run_to_completion(None).map_err(|e| e.to_string()));
            let line = trace_digest::campaign_stats_line(&device, &result);
            let outcome = ReplayOutcome {
                replayed: summary.events,
                truncated: summary.truncated,
            };
            let recorded = summary.complete.then_some(summary.stats_fnv);
            finish_replay("campaign", &line, stats_out, &outcome, recorded)
        }
    }
}

fn finish_replay(
    kind: &str,
    line: &str,
    stats_out: Option<&Path>,
    outcome: &ReplayOutcome,
    recorded: Option<u64>,
) -> u8 {
    if let Some(p) = stats_out {
        if let Err(code) = write_stats_line(p, line) {
            return code;
        }
    }
    let digest = trace_digest::line_digest(line);
    if let Some((chunk, offset)) = outcome.truncated {
        eprintln!(
            "warning: trace truncated in chunk {chunk} at byte offset {offset}; \
             replayed the complete prefix"
        );
        println!(
            "replayed {kind} prefix: {} event(s), stats digest {digest:016x} \
             (no footer to compare)",
            outcome.replayed
        );
        return EXIT_OK;
    }
    match recorded {
        Some(rec) if rec == digest => {
            println!(
                "replayed {kind} trace: {} event(s), stats digest {digest:016x} \
                 matches the recording",
                outcome.replayed
            );
            EXIT_OK
        }
        Some(rec) => {
            eprintln!(
                "error: divergent replay: stats digest {digest:016x} does not \
                 match the recorded {rec:016x}"
            );
            EXIT_CHECK_FAILED
        }
        None => {
            println!(
                "replayed {kind} trace: {} event(s), stats digest {digest:016x} \
                 (recording sealed no digest)",
                outcome.replayed
            );
            EXIT_OK
        }
    }
}

fn validate_trace(path: &Path) -> u8 {
    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open trace {}: {e}", path.display());
            return trace_error_code(&e);
        }
    };
    match validate_stream(&mut reader) {
        Ok(s) if s.complete => {
            println!(
                "valid {} trace: {} event(s) in {} chunk(s), stats digest {:016x}",
                reader.header().kind.name(),
                s.events,
                s.event_chunks,
                s.stats_fnv
            );
            EXIT_OK
        }
        Ok(s) => {
            let (chunk, offset) = s.truncated.unwrap_or((0, 0));
            eprintln!(
                "warning: trace truncated in chunk {chunk} at byte offset {offset}; \
                 the complete prefix is replayable"
            );
            println!(
                "salvageable {} trace: {} event(s) in {} chunk(s), no footer",
                reader.header().kind.name(),
                s.events,
                s.event_chunks
            );
            EXIT_OK
        }
        Err(e) => {
            eprintln!("error: {e}");
            trace_error_code(&e)
        }
    }
}

fn trace_info(path: &Path) -> u8 {
    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open trace {}: {e}", path.display());
            return trace_error_code(&e);
        }
    };
    let h = reader.header().clone();
    println!("kind:      {}", h.kind.name());
    println!("schema:    {}", gnoc_core::trace::TRACE_SCHEMA);
    match h.kind {
        TraceKind::Campaign => {
            println!("device:    {}", h.device.as_deref().unwrap_or("?"));
            println!("probe:     {} lines x {} samples", h.lines, h.samples);
        }
        TraceKind::Mesh => println!("geometry:  {}x{} mesh", h.width, h.height),
        TraceKind::Fabric => println!(
            "geometry:  {} devices over {} fabric, {}x{} dies",
            h.devices, h.topology, h.width, h.height
        ),
    }
    println!("seed:      {}", h.seed);
    println!("transfers: {}", h.transfers);
    println!(
        "plan:      {}",
        if h.plan_fnv == 0 {
            "none".to_owned()
        } else {
            format!("fnv {:016x}", h.plan_fnv)
        }
    );
    match validate_stream(&mut reader) {
        Ok(s) => {
            println!("events:    {} in {} chunk(s)", s.events, s.event_chunks);
            if s.complete {
                println!("footer:    stats digest {:016x}", s.stats_fnv);
            } else {
                let (chunk, offset) = s.truncated.unwrap_or((0, 0));
                println!("footer:    MISSING (truncated in chunk {chunk} at byte offset {offset})");
            }
            EXIT_OK
        }
        Err(e) => {
            eprintln!("error: {e}");
            trace_error_code(&e)
        }
    }
}

/// Writes the two profile artifacts for a finished recording: the
/// stall-attribution report at `path` and a Chrome trace-event JSON
/// (loadable at ui.perfetto.dev) alongside it at `<path>.trace.json`.
fn write_profile_artifacts(
    rec: &FlightRecorder,
    width: usize,
    height: usize,
    cycles: u64,
    slowest: usize,
    path: &Path,
) -> Result<(), u8> {
    let report = ProfileReport::from_recorder(rec, width, height, cycles, slowest);
    if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
        eprintln!("error: cannot write profile {}: {e}", path.display());
        return Err(EXIT_IO);
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".trace.json");
    let trace = path.with_file_name(name);
    if let Err(e) = std::fs::write(&trace, rec.chrome_trace()) {
        eprintln!("error: cannot write trace {}: {e}", trace.display());
        return Err(EXIT_IO);
    }
    println!("profile: {} (trace: {})", path.display(), trace.display());
    Ok(())
}

/// Writes the campaign-side `--profile` artifact. The engine models latency
/// analytically — there is no cycle-level mesh inside [`GpuDevice`] — so
/// "critical path" for a campaign means the slowest measured (SM, slice)
/// pairs of the latency matrix, each decomposed against the model's ground
/// truth: mean hit cycles, floorplan wire distance, and whether the route
/// crosses a partition boundary.
fn write_campaign_profile(
    gpu: GpuChoice,
    seed: u64,
    plan: Option<&FaultPlan>,
    probe: &LatencyProbe,
    matrix: &[Vec<f64>],
    telemetry: &TelemetryHandle,
    path: &Path,
) -> Result<(), u8> {
    let dev = match device(gpu, seed, plan, telemetry) {
        Ok(dev) => dev,
        Err(msg) => {
            eprintln!("error: {msg}");
            return Err(EXIT_INVALID_INPUT);
        }
    };
    let mut cells: Vec<(f64, SmId, SliceId)> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        let sm = SmId::new(i as u32);
        let slices = probe.visible_slices(&dev, sm);
        for (j, &lat) in row.iter().enumerate() {
            if let (true, Some(&slice)) = (lat.is_finite(), slices.get(j)) {
                cells.push((lat, sm, slice));
            }
        }
    }
    // Slowest first; ties broken by (sm, slice) so the artifact is
    // byte-identical across runs and `--jobs`.
    cells.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    cells.truncate(5);
    let probes: Vec<String> = cells
        .iter()
        .map(|&(lat, sm, slice)| {
            format!(
                "    {{\"sm\": {}, \"slice\": {}, \"measured_cycles\": {:.3}, \
                 \"model_hit_cycles\": {:.3}, \"wire_mm\": {:.3}, \"crosses_partition\": {}}}",
                sm.index(),
                slice.index(),
                lat,
                dev.hit_cycles_mean(sm, slice),
                dev.floorplan().wire_distance(sm, slice),
                dev.hierarchy().crosses_partition(sm, slice),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"kind\": \"campaign\",\n  \"gpu\": \"{}\",\n  \
         \"seed\": {},\n  \"slowest_probes\": [\n{}\n  ]\n}}\n",
        gpu.preset_name(),
        seed,
        probes.join(",\n")
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write profile {}: {e}", path.display());
        return Err(EXIT_IO);
    }
    println!("profile: {}", path.display());
    Ok(())
}

/// `gnoc chaos run|replay|shrink`: the fuzzing soak and its reproducer
/// tooling. Exit codes follow the documented scheme: `run` exits 1 when any
/// oracle fired; `replay` exits 1 while the recorded failure still
/// reproduces (a scriptable "is this bug fixed yet" check); unusable files
/// exit 2 (parse/config) or 3 (I/O).
fn run_chaos_action(
    action: ChaosAction,
    telemetry: &TelemetryHandle,
    pool: &WorkerPool,
    profile: Option<&Path>,
) -> u8 {
    match action {
        ChaosAction::Run {
            seeds,
            cfg,
            state,
            report,
            repro_dir,
            wall_ms,
            no_shrink,
        } => {
            let opts = ChaosOptions {
                seeds: seeds.collect(),
                state_path: state.map(PathBuf::from),
                wall_budget_ms: wall_ms,
                shrink: !no_shrink,
                repro_dir: repro_dir.map(PathBuf::from),
                jobs: pool.jobs(),
                profile: profile.map(Path::to_path_buf),
            };
            let run = match run_chaos(&cfg, &opts, telemetry) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("error: {e}");
                    return chaos_error_code(&e);
                }
            };
            let clean = print_chaos_run(&run);
            if let Some(path) = report {
                try_or_fail!(
                    run.report.save(Path::new(&path)).map_err(|e| e.to_string()),
                    EXIT_IO
                );
                println!("report: {path}");
            }
            if clean {
                EXIT_OK
            } else {
                EXIT_CHECK_FAILED
            }
        }
        ChaosAction::Replay { repro } => {
            let repro = match Reproducer::load(Path::new(&repro)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return chaos_error_code(&e);
                }
            };
            // A repro recorded with --greedy-bug must not silently "pass"
            // in a binary built without the bug-hooks feature.
            try_or_fail!(repro.config.validate().map_err(|e| e.to_string()));
            println!(
                "replaying seed {} against oracle [{}] on plan [{}]:",
                repro.seed,
                repro.oracle,
                repro.plan.summary()
            );
            let out = replay_reproducer(&repro);
            for v in &out.violations {
                println!("  VIOLATION [{}]: {}", v.oracle, v.detail);
            }
            if out.violations.iter().any(|v| v.oracle == repro.oracle) {
                println!("  recorded failure still reproduces");
                EXIT_CHECK_FAILED
            } else {
                println!("  recorded failure no longer reproduces");
                EXIT_OK
            }
        }
        ChaosAction::Shrink { repro, out } => {
            let path = repro;
            let mut repro = match Reproducer::load(Path::new(&path)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return chaos_error_code(&e);
                }
            };
            try_or_fail!(repro.config.validate().map_err(|e| e.to_string()));
            let run_device = repro.config.device.is_some();
            let fires = run_iteration(&repro.config, repro.seed, &repro.plan, run_device)
                .violations
                .iter()
                .any(|v| v.oracle == repro.oracle);
            if !fires {
                eprintln!(
                    "error: {path}: oracle [{}] no longer fires on the recorded plan; \
                     nothing to shrink",
                    repro.oracle
                );
                return EXIT_CHECK_FAILED;
            }
            let before = decompose(&repro.plan, repro.config.width, repro.config.height).len();
            repro.plan = shrink_violation(
                &repro.config,
                repro.seed,
                &repro.plan,
                repro.oracle,
                run_device,
            );
            let after = decompose(&repro.plan, repro.config.width, repro.config.height).len();
            let out_path = out.unwrap_or(path);
            repro.command = format!("gnoc chaos replay --repro {out_path}");
            try_or_fail!(
                repro.save(Path::new(&out_path)).map_err(|e| e.to_string()),
                EXIT_IO
            );
            println!(
                "{out_path}: {before} -> {after} fault atoms, oracle [{}] still fires",
                repro.oracle
            );
            EXIT_OK
        }
    }
}

/// Renders a chaos run summary; returns whether it was clean.
fn print_chaos_run(run: &ChaosRun) -> bool {
    let r = &run.report;
    println!(
        "chaos soak: {} seed(s) completed, {} violation(s), {} panic(s)",
        r.completed_seeds.len(),
        r.violations.len(),
        r.panics
    );
    let passes: Vec<String> = r
        .oracle_passes
        .iter()
        .map(|(name, count)| format!("{name} {count}"))
        .collect();
    println!(
        "  oracle passes: {}",
        if passes.is_empty() {
            "(none)".to_owned()
        } else {
            passes.join(", ")
        }
    );
    for v in &r.violations {
        println!("  VIOLATION [{}] seed {}: {}", v.oracle, v.seed, v.detail);
        if let Some(after) = v.atoms_after {
            println!("    plan shrunk: {} -> {after} fault atoms", v.atoms_before);
        }
        if let Some(path) = &v.reproducer {
            println!("    reproducer: {path}");
        }
    }
    if !run.finished {
        println!(
            "  wall budget expired: {} seed(s) pending (re-run with the same --state to resume)",
            run.pending.len()
        );
    }
    r.is_clean()
}

/// `gnoc faults gen|check`: fault-plan file tooling. `check` exits 1 when
/// the plan parses but fails validation for the given geometry, 2 for a
/// malformed file or bad flags, and 3 for I/O errors.
fn run_faults(action: FaultsAction) -> u8 {
    match action {
        FaultsAction::Gen { out, cfg } => {
            // try_generate validates every knob first, so a bad flag value
            // (e.g. --flaky-prob 1.5) is a hard error naming the field
            // instead of a silently saved invalid plan.
            let plan = try_or_fail!(FaultPlan::try_generate(&cfg).map_err(|e| e.to_string()));
            try_or_fail!(plan.save(&out).map_err(|e| e.to_string()), EXIT_IO);
            println!("{out}: {}", plan.summary());
        }
        FaultsAction::Check {
            path,
            width,
            height,
            slices,
            devices,
            topology,
        } => {
            let plan = match FaultPlan::load(&path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return plan_error_code(&e);
                }
            };
            try_or_fail!(
                plan.validate_for_mesh(width, height)
                    .map_err(|e| format!("{path} invalid for a {width}x{height} mesh: {e}")),
                EXIT_CHECK_FAILED
            );
            if let Some(n) = slices {
                try_or_fail!(
                    plan.validate_for_slices(n)
                        .map_err(|e| format!("{path} invalid for {n} L2 slices: {e}")),
                    EXIT_CHECK_FAILED
                );
            }
            let topo = try_or_fail!(parse_topology(&topology));
            if devices >= 2 {
                try_or_fail!(
                    plan.validate_for_fabric(devices, topo).map_err(|e| format!(
                        "{path} invalid for a {devices}-device {topology} fabric: {e}"
                    )),
                    EXIT_CHECK_FAILED
                );
            } else if !plan.fabric.is_empty() {
                eprintln!(
                    "error: {path} contains fabric faults; re-check with \
                     --devices N --topology T"
                );
                return EXIT_CHECK_FAILED;
            }
            if devices >= 2 {
                println!("{path}: valid for a {width}x{height} mesh and a {devices}-device {topology} fabric");
            } else {
                println!("{path}: valid for a {width}x{height} mesh");
            }
            println!(
                "  mesh_connected: {}",
                mesh_connected(width, height, &plan.dead_undirected_edges(width, height))
            );
            if devices >= 2 {
                println!(
                    "  fabric_connected: {}",
                    fabric_connected(devices, topo, &plan)
                );
            }
            println!("  {}", plan.summary());
        }
    }
    EXIT_OK
}

/// Folds the device's per-slice profiler counts into the shared registry so
/// `--metrics` captures them (the virtual `nvprof` dump).
fn export_device_counters(dev: &GpuDevice, telemetry: &TelemetryHandle) {
    telemetry.with(|t| dev.profiler().export_metrics(&mut t.registry));
}

/// Renders a saved `--metrics` registry as aligned text tables.
fn print_stats(registry: &MetricRegistry) {
    let counters: Vec<_> = registry.counters().collect();
    if !counters.is_empty() {
        println!("counters:");
        for (name, value) in counters {
            println!("  {name:<44} {value:>14}");
        }
    }
    let gauges: Vec<_> = registry.gauges().collect();
    if !gauges.is_empty() {
        println!("gauges:");
        for (name, value) in gauges {
            println!("  {name:<44} {value:>14.4}");
        }
    }
    let hists: Vec<_> = registry.histograms().collect();
    if !hists.is_empty() {
        println!("histograms:");
        println!(
            "  {:<34} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            println!(
                "  {:<34} {:>9} {:>9.1} {:>9.0} {:>9.0} {:>9.0} {:>9}",
                name,
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.50).unwrap_or(0.0),
                h.quantile(0.90).unwrap_or(0.0),
                h.quantile(0.99).unwrap_or(0.0),
                h.max().unwrap_or(0)
            );
        }
    }
    if registry.is_empty() {
        println!("(empty registry)");
    }
}
