//! The `gnoc` command-line tool: run the paper's characterisation and
//! experiments from the shell. See `gnoc help`.

use gnoc_chaos::{
    decompose, replay as replay_reproducer, run_chaos, run_iteration, shrink_violation,
    ChaosOptions, ChaosRun, Reproducer,
};
use gnoc_cli::{
    parse_invocation, AttackKind, ChaosAction, Command, FaultsAction, GpuChoice, WorkloadKind,
    USAGE,
};
use gnoc_core::microbench::bandwidth::{aggregate_fabric_gbps, aggregate_memory_gbps};
use gnoc_core::noc::loadcurve::{hier_load_curve, mesh_load_curve, SweepConfig};
use gnoc_core::noc::{run_fairness_traced, run_memsim_traced, HierConfig, MeshConfig};
use gnoc_core::noc::{ArbiterKind, FairnessConfig, MemSimConfig};
use gnoc_core::noc::{NodeId, PacketClass, ReliableMesh, RetryConfig};
use gnoc_core::sidechannel::covert::{
    bits_of, bytes_of, channel_snr, transmit, CovertChannelConfig,
};
use gnoc_core::workloads::replay::{replay, ReplayConfig};
use gnoc_core::workloads::{bfs, gaussian};
use gnoc_core::{infer_placement, input_speedups, run_aes_attack, run_rsa_attack};
use gnoc_core::{
    resolve_jobs, AccessKind, AesAttackConfig, CheckpointedCampaign, CtaScheduler, FaultPlan,
    GpuDevice, LatencyCampaign, LatencyProbe, RsaAttackConfig, SliceId, SmId, Summary, WorkerPool,
};
use gnoc_core::{JsonlWriter, MetricRegistry, Telemetry, TelemetryHandle};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match parse_invocation(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // `--trace`/`--metrics` turn telemetry on; otherwise every instrumented
    // call site stays on the zero-cost disabled path.
    let telemetry = if inv.trace.is_some() || inv.metrics.is_some() {
        let mut t = Telemetry::new();
        if let Some(path) = &inv.trace {
            match JsonlWriter::create(Path::new(path)) {
                Ok(sink) => t.set_sink(Box::new(sink)),
                Err(e) => {
                    eprintln!("error: cannot create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        TelemetryHandle::attach(t)
    } else {
        TelemetryHandle::disabled()
    };

    // `--faults` loads a plan once; subcommands pick it up where it applies.
    let plan = match &inv.faults {
        Some(path) => match FaultPlan::load(path) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("error: cannot load fault plan {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // The jobs knob (--jobs > GNOC_JOBS > machine) never changes results —
    // every parallel path is bit-identical to serial — only wall time.
    let pool = {
        let mut p = WorkerPool::new(resolve_jobs(inv.jobs));
        p.set_telemetry(telemetry.clone());
        p
    };

    let ok = run(inv.command, plan.as_ref(), &telemetry, &pool);

    telemetry.flush();
    if let Some(path) = &inv.metrics {
        let registry = telemetry.snapshot_registry().unwrap_or_default();
        if let Err(e) = registry.save(Path::new(path)) {
            eprintln!("error: cannot write metrics file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn device(
    gpu: GpuChoice,
    seed: u64,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
) -> Result<GpuDevice, String> {
    let mut dev = match plan {
        Some(plan) => GpuDevice::with_faults(gpu.spec(), plan, seed)
            .map_err(|e| format!("fault plan does not fit {}: {e}", gpu.preset_name()))?,
        None => GpuDevice::with_seed(gpu.spec(), seed)
            .map_err(|e| format!("cannot build {}: {e}", gpu.preset_name()))?,
    };
    dev.set_telemetry(telemetry.clone());
    Ok(dev)
}

/// Unwraps a `Result` or prints the error and fails the subcommand.
macro_rules! try_or_fail {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("error: {msg}");
                return false;
            }
        }
    };
}

fn run(
    cmd: Command,
    plan: Option<&FaultPlan>,
    telemetry: &TelemetryHandle,
    pool: &WorkerPool,
) -> bool {
    match cmd {
        Command::Help => print!("{USAGE}"),

        Command::Info { gpu } => {
            let spec = gpu.spec();
            for (label, value) in spec.table1_row() {
                println!("{label:<22}{value}");
            }
            println!();
            print!(
                "{}",
                spec.floorplan().render_ascii(&spec.hierarchy(), 96, 24)
            );
        }

        Command::Latency { gpu, sm, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let n = dev.hierarchy().num_sms() as u32;
            if sm >= n {
                eprintln!("error: SM {sm} out of range (device has {n} SMs)");
                return false;
            }
            let probe = LatencyProbe::default();
            let profile = probe.sm_profile(&mut dev, SmId::new(sm));
            println!(
                "L2 hit latency from SM{sm} on {} ({} visible slices):",
                dev.spec().name,
                profile.len()
            );
            for (i, l) in profile.iter().enumerate() {
                println!("  slice {i:>3}: {l:>6.0} cycles");
            }
            println!("summary: {}", Summary::of(&profile));
            export_device_counters(&dev, telemetry);
        }

        Command::Bandwidth { gpu, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let fabric = aggregate_fabric_gbps(&mut dev);
            let mem = aggregate_memory_gbps(&mut dev);
            println!("{}:", dev.spec().name);
            println!("  aggregate L2 fabric bandwidth: {fabric:.0} GB/s");
            println!(
                "  aggregate memory bandwidth:    {mem:.0} GB/s ({:.0}% of peak)",
                100.0 * mem / dev.spec().mem_peak_gbps
            );
            println!("  fabric / memory ratio:         {:.2}x", fabric / mem);
            for (kind, label) in [
                (AccessKind::ReadHit, "reads"),
                (AccessKind::Write, "writes"),
            ] {
                let r = input_speedups(&dev, kind);
                println!(
                    "  input speedup ({label}): TPC {:.2}, GPC_l {:.1}/{}, GPC_g {:.1}/{}{}",
                    r.tpc,
                    r.gpc_local,
                    r.gpc_tpcs,
                    r.gpc_global,
                    r.gpc_sms,
                    r.cpc
                        .map(|c| format!(", CPC {:.1}/{}", c, r.cpc_sms.unwrap()))
                        .unwrap_or_default()
                );
            }
            export_device_counters(&dev, telemetry);
        }

        Command::Placement { gpu, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let probe = LatencyProbe {
                working_set_lines: 2,
                samples: 6,
            };
            let campaign = LatencyCampaign::run_traced(&mut dev, &probe, telemetry);
            let report = infer_placement(&campaign, &dev, 2.5);
            println!(
                "{}: grand mean latency {:.0} cycles over {}x{} pairs",
                dev.spec().name,
                campaign.grand_mean(),
                campaign.matrix.len(),
                campaign.matrix.first().map_or(0, Vec::len)
            );
            println!(
                "position recovery (corr vs proximity): {:.2}",
                report.position_recovery_r
            );
            println!("GPC groups inferred: {:?}", report.gpc_labels);
            println!("GPC groups actual:   {:?}", report.gpc_truth);
            println!("Rand index: {:.2}", report.gpc_rand_index);
            export_device_counters(&dev, telemetry);
        }

        Command::Attack {
            kind,
            gpu,
            scheduler,
            seed,
        } => match kind {
            AttackKind::Aes => {
                let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
                let key = [
                    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
                    0xcf, 0x4f, 0x3c,
                ];
                let cfg = AesAttackConfig {
                    samples: 2_500,
                    scheduler,
                    ..AesAttackConfig::new(key)
                };
                let r = run_aes_attack(&mut dev, &cfg, seed);
                println!(
                    "AES last-round key byte 0 on {} ({scheduler:?} scheduling):",
                    dev.spec().name
                );
                println!(
                    "  best guess 0x{:02x}, true 0x{:02x} → {}",
                    r.best_guess,
                    r.true_byte,
                    if r.succeeded() {
                        "KEY BYTE RECOVERED"
                    } else {
                        "attack defeated"
                    }
                );
                println!(
                    "  corr(true) {:+.3}, margin {:+.3}",
                    r.correlations[r.true_byte as usize], r.margin
                );
                export_device_counters(&dev, telemetry);
            }
            AttackKind::Rsa => {
                let dev = try_or_fail!(device(gpu, seed, plan, telemetry));
                let cfg = RsaAttackConfig {
                    scheduler,
                    ..RsaAttackConfig::default()
                };
                let r = run_rsa_attack(&dev, &cfg, seed);
                println!(
                    "RSA exponent-weight timing on {} ({scheduler:?} scheduling):",
                    dev.spec().name
                );
                println!("  fit R² = {:.3}", r.fit.r_squared);
                println!(
                    "  inverting one timing bounds the weight to ±{} bits",
                    r.weight_uncertainty
                );
                export_device_counters(&dev, telemetry);
            }
        },

        Command::Mesh {
            age_based,
            seed,
            transfers,
        } => {
            let arbiter = if age_based {
                ArbiterKind::AgeBased
            } else {
                ArbiterKind::RoundRobin
            };
            if let Some(plan) = plan {
                return run_faulted_mesh(plan, arbiter, seed, transfers, telemetry);
            }
            let r = run_fairness_traced(FairnessConfig::paper(arbiter), seed, telemetry.clone());
            println!("6x6 mesh, 30 compute nodes → 6 MCs, {arbiter:?} arbitration:");
            for row in 0..5 {
                let cells: Vec<String> = (0..6)
                    .map(|c| format!("{:.3}", r.throughput[row * 6 + c]))
                    .collect();
                println!("  row {}: {}", row + 1, cells.join(" "));
            }
            println!("  unfairness (max/min): {:.2}x", r.unfairness);
        }

        Command::Faults { action } => return run_faults(action),

        Command::Chaos { action } => return run_chaos_action(action, telemetry, pool),

        Command::Campaign {
            gpu,
            seed,
            checkpoint,
            lines,
            samples,
        } => {
            let probe = LatencyProbe {
                working_set_lines: lines,
                samples,
            };
            let preset = gpu.preset_name();
            let path = checkpoint.as_deref().map(Path::new);
            let mut campaign = try_or_fail!(match path {
                Some(p) => {
                    CheckpointedCampaign::resume_or_new(p, preset, seed, probe, plan.cloned())
                }
                None => CheckpointedCampaign::new(preset, seed, probe, plan.cloned()),
            }
            .map_err(|e| e.to_string()));
            campaign.set_telemetry(telemetry.clone());
            let resumed_at = campaign.completed_rows();
            if resumed_at > 0 {
                println!(
                    "resuming from checkpoint: {resumed_at}/{} rows done",
                    campaign.num_sms()
                );
            }
            let result = try_or_fail!(campaign
                .run_to_completion_par(path, pool)
                .map_err(|e| e.to_string()));
            println!(
                "{preset}: grand mean latency {:.0} cycles over {}x{} pairs{}",
                result.grand_mean(),
                result.matrix.len(),
                result.matrix.first().map_or(0, Vec::len),
                if plan.is_some() {
                    " (fault plan applied)"
                } else {
                    ""
                }
            );
            if let Some(p) = path {
                println!("checkpoint: {}", p.display());
            }
        }

        Command::Covert { gpu, far, seed } => {
            let mut dev = try_or_fail!(device(gpu, seed, plan, telemetry));
            let slice = SliceId::new(5);
            let cfg = if far {
                CovertChannelConfig::far(&dev, slice, 2)
            } else {
                CovertChannelConfig::colocated(&dev, slice, 2)
            };
            println!(
                "covert channel on {} via {slice}, {} transmitter placement:",
                dev.spec().name,
                if far { "far" } else { "co-located" }
            );
            println!("  SNR: {:.1}", channel_snr(&mut dev, &cfg));
            let strong = CovertChannelConfig::colocated(&dev, slice, 6);
            let r = transmit(
                &mut dev,
                if far { &cfg } else { &strong },
                &bits_of(b"gnoc"),
            );
            println!(
                "  payload 'gnoc': BER {:.3}, decoded {:?}, capacity {:.0} kb/s",
                r.ber,
                String::from_utf8_lossy(&bytes_of(&r.received)),
                r.capacity_bits_per_sec() / 1e3
            );
            export_device_counters(&dev, telemetry);
        }

        Command::Replay {
            workload,
            gpu,
            random,
            blocks,
        } => {
            let dev = try_or_fail!(device(gpu, 0, plan, telemetry));
            let trace = match workload {
                WorkloadKind::Bfs => bfs::generate(bfs::BfsConfig::default(), 1),
                WorkloadKind::Gaussian => gaussian::generate(gaussian::GaussianConfig::default()),
            };
            let cfg = ReplayConfig {
                blocks,
                scheduler: if random {
                    CtaScheduler::RandomSeed
                } else {
                    CtaScheduler::Static
                },
                ..ReplayConfig::default()
            };
            let r = replay(&dev, &trace, &cfg);
            println!(
                "{} on {} ({} blocks, {} scheduling):",
                trace.name,
                dev.spec().name,
                blocks,
                if random { "random-seed" } else { "static" }
            );
            println!(
                "  {:.1} MB over {} steps in {:.3} ms — mean {:.0} GB/s",
                r.total_bytes / 1e6,
                r.step_gbps.len(),
                r.total_seconds * 1e3,
                r.mean_gbps()
            );
        }

        Command::LoadCurve { crossbar, seed } => {
            let rates = [0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25];
            let sweep = SweepConfig::default();
            let curve = if crossbar {
                hier_load_curve(HierConfig::gpu_like(), sweep, &rates, seed)
            } else {
                mesh_load_curve(
                    MeshConfig::paper_6x6(gnoc_core::ArbiterKind::RoundRobin),
                    sweep,
                    &rates,
                    seed,
                )
            };
            println!(
                "{} load sweep (30 terminals, 6 MCs):",
                if crossbar {
                    "hierarchical crossbar"
                } else {
                    "6x6 mesh"
                }
            );
            println!("{:>9} {:>10} {:>14}", "offered", "accepted", "mean latency");
            for p in curve {
                println!(
                    "{:>9.2} {:>10.2} {:>14.1}",
                    p.offered, p.accepted, p.mean_latency
                );
            }
        }

        Command::Memsim { provisioned, seed } => {
            let cfg = if provisioned {
                MemSimConfig::provisioned()
            } else {
                MemSimConfig::underprovisioned()
            };
            let r = run_memsim_traced(cfg, seed, telemetry.clone());
            println!(
                "request/reply memory simulation ({}):",
                if provisioned {
                    "provisioned reply interface"
                } else {
                    "under-provisioned reply interface"
                }
            );
            println!(
                "  mean channel utilisation {:.0}%, replies delivered {}",
                100.0 * r.mean_utilization,
                r.replies_delivered
            );
        }

        Command::Stats { path } => match MetricRegistry::load(Path::new(&path)) {
            Ok(registry) => print_stats(&registry),
            Err(e) => {
                eprintln!("error: cannot read metrics file {path}: {e}");
                return false;
            }
        },
    }
    true
}

/// `gnoc mesh --faults plan.json`: retrying delivery over a degraded mesh.
///
/// Submits uniform-random (but seed-deterministic) transfers through a
/// [`ReliableMesh`] with the plan applied, then reports delivery, loss,
/// retry, and tail-latency figures; `--metrics` captures the `noc.retry.*`
/// counters.
fn run_faulted_mesh(
    plan: &FaultPlan,
    arbiter: ArbiterKind,
    seed: u64,
    transfers: usize,
    telemetry: &TelemetryHandle,
) -> bool {
    let cfg = MeshConfig::paper_6x6(arbiter);
    let nodes = (cfg.width * cfg.height) as u64;
    let mut rm = try_or_fail!(
        ReliableMesh::with_faults(cfg, plan, RetryConfig::default()).map_err(|e| e.to_string())
    );
    rm.mesh_mut().set_telemetry(telemetry.clone());

    // splitmix64 traffic stream keyed by the seed: deterministic across runs.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut submitted = 0usize;
    while submitted < transfers {
        let src = (next() % nodes) as u32;
        let dst = (next() % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
        submitted += 1;
    }

    let quiesced = rm.run_until_quiescent(2_000_000);
    let s = rm.stats().clone();
    let m = rm.mesh().stats().clone();
    println!(
        "6x6 mesh under fault plan [{}], {arbiter:?} arbitration:",
        plan.summary()
    );
    println!(
        "  transfers: {} submitted, {} delivered, {} lost",
        s.submitted,
        s.delivered,
        s.lost_total()
    );
    println!(
        "  losses:    {} unroutable, {} retries-exhausted, {} watchdog",
        s.lost_unroutable, s.lost_retries_exhausted, s.lost_watchdog
    );
    println!(
        "  retries:   {} ({} corrupt NACKs, {} duplicates suppressed)",
        s.retries, s.corrupt_retries, s.duplicates_suppressed
    );
    println!(
        "  fabric:    {} flaky drops, {} transient drops, {} corrupted, reroutes {}, dead links {}",
        m.dropped_flaky,
        m.dropped_transient,
        m.corrupted,
        m.reroutes,
        rm.mesh().dead_links_active()
    );
    println!(
        "  latency:   mean {:.1}, p50 {:.0}, p99 {:.0}, max {} cycles",
        s.mean_latency(),
        s.latency_quantile(0.50),
        s.latency_quantile(0.99),
        s.latency_max
    );
    if rm.watchdog_tripped() {
        println!(
            "  watchdog:  tripped {} time(s) — stuck traffic written off, no hang",
            s.watchdog_trips
        );
    }
    telemetry.with(|t| rm.export_metrics(&mut t.registry));
    if !quiesced {
        eprintln!(
            "error: mesh failed to quiesce (outstanding {})",
            rm.outstanding()
        );
        return false;
    }
    true
}

/// `gnoc chaos run|replay|shrink`: the fuzzing soak and its reproducer
/// tooling. `run` exits nonzero when any oracle fired; `replay` exits
/// nonzero while the recorded failure still reproduces (a scriptable
/// "is this bug fixed yet" check).
fn run_chaos_action(action: ChaosAction, telemetry: &TelemetryHandle, pool: &WorkerPool) -> bool {
    match action {
        ChaosAction::Run {
            seeds,
            cfg,
            state,
            report,
            repro_dir,
            wall_ms,
            no_shrink,
        } => {
            let opts = ChaosOptions {
                seeds: seeds.collect(),
                state_path: state.map(PathBuf::from),
                wall_budget_ms: wall_ms,
                shrink: !no_shrink,
                repro_dir: repro_dir.map(PathBuf::from),
                jobs: pool.jobs(),
            };
            let run = try_or_fail!(run_chaos(&cfg, &opts, telemetry).map_err(|e| e.to_string()));
            let clean = print_chaos_run(&run);
            if let Some(path) = report {
                try_or_fail!(run.report.save(Path::new(&path)).map_err(|e| e.to_string()));
                println!("report: {path}");
            }
            clean
        }
        ChaosAction::Replay { repro } => {
            let repro =
                try_or_fail!(Reproducer::load(Path::new(&repro)).map_err(|e| e.to_string()));
            // A repro recorded with --greedy-bug must not silently "pass"
            // in a binary built without the bug-hooks feature.
            try_or_fail!(repro.config.validate().map_err(|e| e.to_string()));
            println!(
                "replaying seed {} against oracle [{}] on plan [{}]:",
                repro.seed,
                repro.oracle,
                repro.plan.summary()
            );
            let out = replay_reproducer(&repro);
            for v in &out.violations {
                println!("  VIOLATION [{}]: {}", v.oracle, v.detail);
            }
            if out.violations.iter().any(|v| v.oracle == repro.oracle) {
                println!("  recorded failure still reproduces");
                false
            } else {
                println!("  recorded failure no longer reproduces");
                true
            }
        }
        ChaosAction::Shrink { repro, out } => {
            let path = repro;
            let mut repro =
                try_or_fail!(Reproducer::load(Path::new(&path)).map_err(|e| e.to_string()));
            try_or_fail!(repro.config.validate().map_err(|e| e.to_string()));
            let run_device = repro.config.device.is_some();
            let fires = run_iteration(&repro.config, repro.seed, &repro.plan, run_device)
                .violations
                .iter()
                .any(|v| v.oracle == repro.oracle);
            if !fires {
                eprintln!(
                    "error: {path}: oracle [{}] no longer fires on the recorded plan; \
                     nothing to shrink",
                    repro.oracle
                );
                return false;
            }
            let before = decompose(&repro.plan, repro.config.width, repro.config.height).len();
            repro.plan = shrink_violation(
                &repro.config,
                repro.seed,
                &repro.plan,
                repro.oracle,
                run_device,
            );
            let after = decompose(&repro.plan, repro.config.width, repro.config.height).len();
            let out_path = out.unwrap_or(path);
            repro.command = format!("gnoc chaos replay --repro {out_path}");
            try_or_fail!(repro.save(Path::new(&out_path)).map_err(|e| e.to_string()));
            println!(
                "{out_path}: {before} -> {after} fault atoms, oracle [{}] still fires",
                repro.oracle
            );
            true
        }
    }
}

/// Renders a chaos run summary; returns whether it was clean.
fn print_chaos_run(run: &ChaosRun) -> bool {
    let r = &run.report;
    println!(
        "chaos soak: {} seed(s) completed, {} violation(s), {} panic(s)",
        r.completed_seeds.len(),
        r.violations.len(),
        r.panics
    );
    let passes: Vec<String> = r
        .oracle_passes
        .iter()
        .map(|(name, count)| format!("{name} {count}"))
        .collect();
    println!(
        "  oracle passes: {}",
        if passes.is_empty() {
            "(none)".to_owned()
        } else {
            passes.join(", ")
        }
    );
    for v in &r.violations {
        println!("  VIOLATION [{}] seed {}: {}", v.oracle, v.seed, v.detail);
        if let Some(after) = v.atoms_after {
            println!("    plan shrunk: {} -> {after} fault atoms", v.atoms_before);
        }
        if let Some(path) = &v.reproducer {
            println!("    reproducer: {path}");
        }
    }
    if !run.finished {
        println!(
            "  wall budget expired: {} seed(s) pending (re-run with the same --state to resume)",
            run.pending.len()
        );
    }
    r.is_clean()
}

/// `gnoc faults gen|check`: fault-plan file tooling.
fn run_faults(action: FaultsAction) -> bool {
    match action {
        FaultsAction::Gen { out, cfg } => {
            // try_generate validates every knob first, so a bad flag value
            // (e.g. --flaky-prob 1.5) is a hard error naming the field
            // instead of a silently saved invalid plan.
            let plan = try_or_fail!(FaultPlan::try_generate(&cfg).map_err(|e| e.to_string()));
            try_or_fail!(plan.save(&out).map_err(|e| e.to_string()));
            println!("{out}: {}", plan.summary());
        }
        FaultsAction::Check {
            path,
            width,
            height,
            slices,
        } => {
            let plan = try_or_fail!(FaultPlan::load(&path).map_err(|e| e.to_string()));
            try_or_fail!(plan
                .validate_for_mesh(width, height)
                .map_err(|e| format!("{path} invalid for a {width}x{height} mesh: {e}")));
            if let Some(n) = slices {
                try_or_fail!(plan
                    .validate_for_slices(n)
                    .map_err(|e| format!("{path} invalid for {n} L2 slices: {e}")));
            }
            println!("{path}: valid for a {width}x{height} mesh");
            println!("  {}", plan.summary());
        }
    }
    true
}

/// Folds the device's per-slice profiler counts into the shared registry so
/// `--metrics` captures them (the virtual `nvprof` dump).
fn export_device_counters(dev: &GpuDevice, telemetry: &TelemetryHandle) {
    telemetry.with(|t| dev.profiler().export_metrics(&mut t.registry));
}

/// Renders a saved `--metrics` registry as aligned text tables.
fn print_stats(registry: &MetricRegistry) {
    let counters: Vec<_> = registry.counters().collect();
    if !counters.is_empty() {
        println!("counters:");
        for (name, value) in counters {
            println!("  {name:<44} {value:>14}");
        }
    }
    let gauges: Vec<_> = registry.gauges().collect();
    if !gauges.is_empty() {
        println!("gauges:");
        for (name, value) in gauges {
            println!("  {name:<44} {value:>14.4}");
        }
    }
    let hists: Vec<_> = registry.histograms().collect();
    if !hists.is_empty() {
        println!("histograms:");
        println!(
            "  {:<34} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            println!(
                "  {:<34} {:>9} {:>9.1} {:>9.0} {:>9.0} {:>9.0} {:>9}",
                name,
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.50).unwrap_or(0.0),
                h.quantile(0.90).unwrap_or(0.0),
                h.quantile(0.99).unwrap_or(0.0),
                h.max().unwrap_or(0)
            );
        }
    }
    if registry.is_empty() {
        println!("(empty registry)");
    }
}
