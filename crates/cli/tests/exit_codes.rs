//! Pins the documented exit-code scheme end to end through the real binary:
//! 0 = ok, 1 = check failed, 2 = invalid input, 3 = I/O error. Scripts (and
//! ci.sh) branch on these values, so a drift here is an interface break even
//! when the human-readable output looks fine.

use std::path::PathBuf;
use std::process::Command;

use gnoc_chaos::{ChaosConfig, OracleKind, Reproducer, REPRODUCER_VERSION};
use gnoc_core::faults::{Direction, LinkFault, LinkFaultKind};
use gnoc_core::trace::{TraceEvent, TraceHeader, TraceTap};
use gnoc_core::FaultPlan;

const EXIT_OK: i32 = 0;
const EXIT_CHECK_FAILED: i32 = 1;
const EXIT_INVALID_INPUT: i32 = 2;
const EXIT_IO: i32 = 3;

/// Runs the `gnoc` binary with `args` and returns its exit code.
fn gnoc(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_gnoc"))
        .args(args)
        .output()
        .expect("spawn gnoc")
        .status
        .code()
        .expect("gnoc terminated by signal")
}

/// A per-test scratch path that won't collide across parallel test binaries.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gnoc-exit-{}-{name}", std::process::id()))
}

#[test]
fn faults_check_distinguishes_all_four_exit_codes() {
    // A plan that is valid on the default 6x6 mesh but references router 12,
    // which a 2x2 mesh does not have — so the same file exercises both the
    // pass and the check-failed paths.
    let mut plan = FaultPlan::none();
    plan.links.push(LinkFault {
        router: 12,
        dir: Direction::East,
        kind: LinkFaultKind::Dead,
        onset: 0,
    });
    let plan_path = scratch("plan.json");
    plan.save(&plan_path).unwrap();
    let plan_arg = plan_path.to_str().unwrap();

    assert_eq!(gnoc(&["faults", "check", plan_arg]), EXIT_OK);
    assert_eq!(
        gnoc(&["faults", "check", plan_arg, "--width", "2", "--height", "2"]),
        EXIT_CHECK_FAILED
    );

    let bad_path = scratch("malformed.json");
    std::fs::write(&bad_path, "this is not a fault plan").unwrap();
    assert_eq!(
        gnoc(&["faults", "check", bad_path.to_str().unwrap()]),
        EXIT_INVALID_INPUT
    );

    let missing = scratch("does-not-exist.json");
    let _ = std::fs::remove_file(&missing);
    assert_eq!(
        gnoc(&["faults", "check", missing.to_str().unwrap()]),
        EXIT_IO
    );

    let _ = std::fs::remove_file(&plan_path);
    let _ = std::fs::remove_file(&bad_path);
}

#[test]
fn chaos_replay_distinguishes_exit_codes() {
    // A reproducer whose recorded oracle does not fire on its (benign) plan:
    // replay reports "no longer reproduces" and exits 0. Genuine
    // still-reproducing failures only exist behind the bug-hooks feature, so
    // the 1-exit is pinned by `faults check` above instead.
    let repro = Reproducer {
        version: REPRODUCER_VERSION,
        oracle: OracleKind::Delivery,
        seed: 0,
        detail: "recorded detail".to_owned(),
        config: ChaosConfig::default(),
        plan: FaultPlan::none(),
        command: String::new(),
        trace: None,
        traffic_trace: None,
    };
    let repro_path = scratch("repro.json");
    repro.save(&repro_path).unwrap();
    assert_eq!(
        gnoc(&["chaos", "replay", "--repro", repro_path.to_str().unwrap()]),
        EXIT_OK
    );

    let bad_path = scratch("repro-malformed.json");
    std::fs::write(&bad_path, "{]").unwrap();
    assert_eq!(
        gnoc(&["chaos", "replay", "--repro", bad_path.to_str().unwrap()]),
        EXIT_INVALID_INPUT
    );

    let missing = scratch("repro-missing.json");
    let _ = std::fs::remove_file(&missing);
    assert_eq!(
        gnoc(&["chaos", "replay", "--repro", missing.to_str().unwrap()]),
        EXIT_IO
    );

    let _ = std::fs::remove_file(&repro_path);
    let _ = std::fs::remove_file(&bad_path);
}

#[test]
fn usage_errors_and_flag_contradictions_exit_invalid_input() {
    assert_eq!(gnoc(&["no-such-command"]), EXIT_INVALID_INPUT);
    // --self-heal is meaningless without a plan to heal around.
    assert_eq!(gnoc(&["mesh", "--self-heal"]), EXIT_INVALID_INPUT);
}

#[test]
fn trace_subcommands_pin_all_four_exit_codes() {
    let trc = scratch("trace.trc");
    let trc_arg = trc.to_str().unwrap();
    let plan_path = scratch("trace-plan.json");
    FaultPlan::none().save(&plan_path).unwrap();
    let plan_arg = plan_path.to_str().unwrap();

    // 0: a recording, its replay, validate, and info all succeed.
    assert_eq!(
        gnoc(&[
            "trace",
            "record",
            "mesh",
            "--seed",
            "4",
            "--transfers",
            "60",
            "--out",
            trc_arg,
            "--faults",
            plan_arg,
        ]),
        EXIT_OK
    );
    assert_eq!(
        gnoc(&["trace", "replay", trc_arg, "--faults", plan_arg]),
        EXIT_OK
    );
    assert_eq!(gnoc(&["trace", "validate", trc_arg]), EXIT_OK);
    assert_eq!(gnoc(&["trace", "info", trc_arg]), EXIT_OK);

    let bytes = std::fs::read(&trc).unwrap();

    // 0 with a warning: a truncated tail salvages its complete prefix.
    let cut = scratch("trace-cut.trc");
    std::fs::write(&cut, &bytes[..bytes.len() - 40]).unwrap();
    let cut_arg = cut.to_str().unwrap();
    assert_eq!(gnoc(&["trace", "validate", cut_arg]), EXIT_OK);
    assert_eq!(
        gnoc(&["trace", "replay", cut_arg, "--faults", plan_arg]),
        EXIT_OK
    );

    // 1: a flipped byte is corruption, not truncation.
    let mut damaged = bytes.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xff;
    let bad = scratch("trace-bad.trc");
    std::fs::write(&bad, &damaged).unwrap();
    let bad_arg = bad.to_str().unwrap();
    assert_eq!(gnoc(&["trace", "validate", bad_arg]), EXIT_CHECK_FAILED);
    assert_eq!(
        gnoc(&["trace", "replay", bad_arg, "--faults", plan_arg]),
        EXIT_CHECK_FAILED
    );

    // 1: a structurally valid trace whose sealed digest does not match what
    // the replay recomputes is a divergent replay.
    let lying = scratch("trace-lying.trc");
    let header = TraceHeader::mesh(6, 6, 4, 2, 0);
    let mut tap = TraceTap::to_file(&lying, &header).unwrap();
    for (src, dst) in [(0, 7), (3, 11)] {
        tap.record(&TraceEvent {
            cycle: 0,
            src_dev: 0,
            src,
            dst_dev: 0,
            dst,
            flits: 1,
            class: 0,
        });
    }
    tap.finish_file(0xdead_beef).unwrap();
    assert_eq!(
        gnoc(&["trace", "replay", lying.to_str().unwrap()]),
        EXIT_CHECK_FAILED
    );

    // 2: replaying against the wrong fault plan is refused up front.
    assert_eq!(gnoc(&["trace", "replay", trc_arg]), EXIT_INVALID_INPUT);
    // 2: record without a destination is a usage error.
    assert_eq!(gnoc(&["trace", "record", "mesh"]), EXIT_INVALID_INPUT);
    // 2: a bumped schema version cannot be replayed, only re-recorded.
    let mut bumped = bytes.clone();
    let next = (gnoc_core::trace::TRACE_SCHEMA + 1).to_le_bytes();
    bumped[8..12].copy_from_slice(&next);
    let drifted = scratch("trace-drifted.trc");
    std::fs::write(&drifted, &bumped).unwrap();
    assert_eq!(
        gnoc(&["trace", "validate", drifted.to_str().unwrap()]),
        EXIT_INVALID_INPUT
    );

    // 3: a missing trace file is an I/O error.
    let missing = scratch("trace-missing.trc");
    let _ = std::fs::remove_file(&missing);
    assert_eq!(
        gnoc(&["trace", "replay", missing.to_str().unwrap()]),
        EXIT_IO
    );

    for p in [&trc, &cut, &bad, &lying, &drifted, &plan_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn health_subcommand_runs_clean_without_faults() {
    assert_eq!(
        gnoc(&["health", "--cycles", "2000", "--device", "none"]),
        EXIT_OK
    );
}

#[test]
fn serve_and_submit_distinguish_exit_codes() {
    // Serve parse errors (no mode, both modes) are invalid input.
    assert_eq!(gnoc(&["serve", "--state", "s"]), EXIT_INVALID_INPUT);
    assert_eq!(gnoc(&["submit", "mesh"]), EXIT_INVALID_INPUT);

    // An unreachable state directory is an I/O error.
    assert_eq!(
        gnoc(&[
            "serve",
            "--state",
            "/proc/no-such-dir/state",
            "--socket",
            scratch("nope.sock").to_str().unwrap(),
        ]),
        EXIT_IO
    );

    // Submitting to a socket no daemon listens on is an I/O error.
    assert_eq!(
        gnoc(&[
            "submit",
            "health",
            "--socket",
            scratch("absent.sock").to_str().unwrap(),
        ]),
        EXIT_IO
    );

    // A batch file that does not exist is an I/O error (before any
    // connection is attempted).
    assert_eq!(
        gnoc(&[
            "batch",
            scratch("absent.jsonl").to_str().unwrap(),
            "--socket",
            scratch("absent.sock").to_str().unwrap(),
        ]),
        EXIT_IO
    );
}

#[test]
fn daemon_round_trip_pins_ok_rejected_and_invalid_codes() {
    let dir = scratch("serve-rt");
    let _ = std::fs::remove_dir_all(&dir);
    let sock = dir.join("d.sock");
    std::fs::create_dir_all(&dir).unwrap();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_gnoc"))
        .args([
            "serve",
            "--state",
            dir.join("state").to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
        ])
        .spawn()
        .expect("spawn daemon");
    // Wait for the socket to appear.
    let sock_arg = sock.to_str().unwrap();
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // A good job is exit 0; a malformed request is invalid input (the
    // daemon rejects it with an `invalid:` reason and stays up).
    assert_eq!(
        gnoc(&["submit", "mesh", "--transfers", "20", "--socket", sock_arg]),
        EXIT_OK
    );
    assert_eq!(
        gnoc(&["submit", "--socket", sock_arg, "--json", "{\"schema\":9}"]),
        EXIT_INVALID_INPUT
    );
    assert_eq!(
        gnoc(&[
            "submit",
            "--socket",
            sock_arg,
            "--json",
            "{\"schema\":1,\"op\":\"campaign\",\"device\":\"rtx5090\"}",
        ]),
        EXIT_INVALID_INPUT
    );
    assert_eq!(gnoc(&["submit", "health", "--socket", sock_arg]), EXIT_OK);
    assert_eq!(gnoc(&["submit", "shutdown", "--socket", sock_arg]), EXIT_OK);
    let status = daemon.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(EXIT_OK), "drained daemon exits 0");
}
