//! End-to-end daemon robustness through the real binary: a SIGKILL mid-job
//! must lose nothing (journal replay + checkpoint resume, byte-identical
//! result), and a SIGTERM must drain gracefully.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gnoc-serve-e2e-{}-{name}", std::process::id()))
}

fn spawn_daemon(state: &Path, sock: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_gnoc"))
        .args([
            "serve",
            "--state",
            state.to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon")
}

fn wait_for_socket(sock: &Path) {
    for _ in 0..400 {
        if sock.exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon socket {} never appeared", sock.display());
}

/// Polls `health` until the daemon answers (the socket file existing is
/// not enough — the listener may not be accepting yet).
fn wait_for_health(sock_arg: &str) {
    for _ in 0..400 {
        let (code, _) = submit(&["submit", "health", "--socket", sock_arg]);
        if code == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon at {sock_arg} never answered health");
}

fn submit(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gnoc"))
        .args(args)
        .output()
        .expect("spawn submit");
    (
        out.status.code().expect("submit exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

const CAMPAIGN: [&str; 7] = [
    "submit",
    "campaign",
    "v100",
    "--lines",
    "2",
    "--samples",
    "2",
];

#[test]
fn sigkill_mid_job_resumes_bit_identically_and_then_caches() {
    let dir = scratch("kill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("state");
    let sock = dir.join("d.sock");
    let sock_arg = sock.to_str().unwrap();

    // Daemon with a per-row delay so the kill reliably lands mid-campaign.
    let mut daemon = spawn_daemon(&state, &sock, &["--row-delay-ms", "25"]);
    wait_for_socket(&sock);

    // Fire the campaign from a child process we never wait to finish.
    let mut victim = Command::new(env!("CARGO_BIN_EXE_gnoc"))
        .args(CAMPAIGN)
        .args(["--socket", sock_arg])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim submit");

    // Give the job time to start and checkpoint a few rows, then SIGKILL
    // the daemon mid-row. 80 rows x 25ms = 2s of runway.
    std::thread::sleep(Duration::from_millis(700));
    daemon.kill().expect("SIGKILL daemon");
    let _ = daemon.wait();
    let _ = victim.kill();
    let _ = victim.wait();
    let ckpt_dir = state.join("ckpt");
    let had_checkpoint = std::fs::read_dir(&ckpt_dir)
        .map(|rd| rd.filter_map(Result::ok).count() > 0)
        .unwrap_or(false);
    assert!(
        had_checkpoint,
        "kill landed before any checkpoint was written"
    );

    // Restart without the row delay: the journal replays, the campaign
    // resumes from its checkpoint, and the same request (now attached to
    // the recovered job, or served from cache once it finishes) completes.
    // The SIGKILL left a stale socket file behind; removing it here lets
    // wait_for_socket observe daemon2's fresh bind rather than the corpse
    // (the daemon itself also reclaims stale sockets).
    let _ = std::fs::remove_file(&sock);
    let daemon2 = spawn_daemon(&state, &sock, &[]);
    wait_for_socket(&sock);
    wait_for_health(sock_arg);
    let resumed_payload = dir.join("resumed.json");
    let (code, _) = submit(
        &[
            &CAMPAIGN[..],
            &[
                "--socket",
                sock_arg,
                "--payload-out",
                resumed_payload.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(code, 0, "resumed job completed");

    // Resubmitting is now a pure cache hit with the same bytes.
    let cached_payload = dir.join("cached.json");
    let (code, stdout) = submit(
        &[
            &CAMPAIGN[..],
            &[
                "--socket",
                sock_arg,
                "--payload-out",
                cached_payload.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(code, 0);
    assert!(
        stdout.contains("\"cached\":true"),
        "expected a cache hit: {stdout}"
    );
    let (code, _) = submit(&["submit", "shutdown", "--socket", sock_arg]);
    assert_eq!(code, 0);
    let out = daemon2.wait_with_output().expect("daemon2 exit");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("recovered 1 unfinished job(s) from the journal"),
        "daemon2 stdout: {stdout}"
    );

    // Reference: the identical request served by a never-killed daemon.
    let ref_dir = scratch("kill-ref");
    let _ = std::fs::remove_dir_all(&ref_dir);
    std::fs::create_dir_all(&ref_dir).unwrap();
    let ref_sock = ref_dir.join("d.sock");
    let mut ref_daemon = spawn_daemon(&ref_dir.join("state"), &ref_sock, &[]);
    wait_for_socket(&ref_sock);
    let ref_payload = ref_dir.join("payload.json");
    let (code, _) = submit(
        &[
            &CAMPAIGN[..],
            &[
                "--socket",
                ref_sock.to_str().unwrap(),
                "--payload-out",
                ref_payload.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(code, 0);
    let (code, _) = submit(&["submit", "shutdown", "--socket", ref_sock.to_str().unwrap()]);
    assert_eq!(code, 0);
    let _ = ref_daemon.wait();

    let resumed = std::fs::read(&resumed_payload).unwrap();
    let cached = std::fs::read(&cached_payload).unwrap();
    let fresh = std::fs::read(&ref_payload).unwrap();
    assert_eq!(
        resumed, fresh,
        "resumed payload differs from uninterrupted run"
    );
    assert_eq!(
        cached, fresh,
        "cached payload differs from uninterrupted run"
    );
}

#[test]
fn sigterm_drains_gracefully_and_removes_the_socket() {
    let dir = scratch("term");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("d.sock");
    let daemon = spawn_daemon(&dir.join("state"), &sock, &[]);
    wait_for_socket(&sock);

    // Do some work so the drain has something to have finished.
    let (code, _) = submit(&[
        "submit",
        "mesh",
        "--transfers",
        "20",
        "--socket",
        sock.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);

    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = daemon.wait_with_output().expect("daemon exit");
    assert_eq!(out.status.code(), Some(0), "SIGTERM drain exits 0");
    assert!(!sock.exists(), "socket file is removed on clean exit");
}
