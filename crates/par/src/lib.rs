//! # gnoc-par — deterministic parallel execution
//!
//! A hand-rolled, std-only scoped worker pool (the build environment is
//! offline, so no rayon — see `shims/README.md` for the precedent) built
//! around one primitive: an **ordered** [`WorkerPool::par_map`] whose result
//! vector always matches input-index order, regardless of which worker
//! finished which task first. Every parallel hot path in the workspace
//! (latency campaigns, correlation matrices, chaos soaks) is expressed as a
//! `par_map` over *independently seeded* work items, which makes the
//! parallel result **bit-identical to the serial one by construction**: each
//! item's result depends only on the item, never on scheduling.
//!
//! Panics inside a task do not leak threads or deadlock the pool:
//! [`WorkerPool::try_par_map`] catches the unwind, poisons the batch so idle
//! workers stop pulling new tasks, joins everything (the scope guarantees
//! it), and reports the lowest-index failure as a typed [`PoolPanic`].
//!
//! The worker count comes from [`resolve_jobs`]: an explicit `--jobs N`
//! beats the `GNOC_JOBS` environment variable, which beats the machine's
//! available parallelism. `jobs = 1` runs inline on the calling thread — the
//! exact serial path, with no thread spawned at all.
//!
//! ```
//! use gnoc_par::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gnoc_telemetry::TelemetryHandle;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the worker count: `explicit` (a `--jobs N` flag) wins, then the
/// `GNOC_JOBS` environment variable, then the machine's available
/// parallelism. Always at least 1; unparsable `GNOC_JOBS` values are
/// ignored rather than fatal.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("GNOC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A task panicked inside [`WorkerPool::try_par_map`]. The pool is already
/// drained and joined when this is returned; no worker leaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Input index of the panicking task (the lowest one when several
    /// tasks panicked in one batch).
    pub task_index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task_index, self.message)
    }
}

impl std::error::Error for PoolPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A scoped worker pool with a fixed degree of parallelism.
///
/// The pool is stateless between calls: each `par_map` spawns (at most)
/// `jobs` scoped threads, joins them before returning, and leaves nothing
/// behind. That keeps the pool trivially reusable after a poisoned batch and
/// means dropping it never blocks.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    jobs: usize,
    telemetry: TelemetryHandle,
}

impl WorkerPool {
    /// A pool running `jobs` tasks concurrently (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        WorkerPool {
            jobs: jobs.max(1),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// The serial pool: `jobs = 1`, tasks run inline on the calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized by [`resolve_jobs`] with no explicit override
    /// (`GNOC_JOBS`, then available parallelism).
    pub fn from_env() -> Self {
        Self::new(resolve_jobs(None))
    }

    /// Attaches telemetry: each batch records `par.tasks` /
    /// `par.batches`, and every worker its own `par.worker.N.tasks`.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The shared telemetry handle (disabled unless
    /// [`set_telemetry`](Self::set_telemetry) was called).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The configured degree of parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` with up to [`jobs`](Self::jobs) concurrent
    /// workers, returning results **in input order** regardless of
    /// completion order. `f` must be a pure function of its item for the
    /// parallel result to be bit-identical to the serial one — which is how
    /// every caller in this workspace uses it (per-row / per-seed
    /// independence).
    ///
    /// # Panics
    ///
    /// Re-raises the first (lowest-index) task panic on the calling thread,
    /// after the whole batch has been drained and joined.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_par_map(items, f) {
            Ok(out) => out,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`par_map`](Self::par_map), but a task panic is returned as a
    /// typed [`PoolPanic`] instead of unwinding: the batch is poisoned (idle
    /// workers stop pulling tasks), every thread is joined, and the pool
    /// stays usable for the next call.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.jobs.min(n);
        let result = if workers <= 1 {
            self.map_serial(items, &f)
        } else {
            self.map_scoped(items, &f, workers)
        };
        if result.is_ok() {
            self.telemetry.with(|t| {
                t.registry.counter_add("par.tasks", n as u64);
                t.registry.counter_add("par.batches", 1);
                t.registry.gauge_max("par.jobs", self.jobs as f64);
            });
        }
        result
    }

    /// The `jobs = 1` path: inline on the calling thread, no spawn.
    fn map_serial<T, R, F>(&self, items: &[T], f: &F) -> Result<Vec<R>, PoolPanic>
    where
        F: Fn(&T) -> R,
    {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(PoolPanic {
                        task_index: i,
                        message: panic_message(&*payload),
                    })
                }
            }
        }
        self.telemetry
            .counter_add("par.worker.0.tasks", items.len() as u64);
        Ok(out)
    }

    /// The parallel path: `workers` scoped threads pull indices from a
    /// shared cursor and write each result into its input-index slot.
    fn map_scoped<T, R, F>(&self, items: &[T], f: &F, workers: usize) -> Result<Vec<R>, PoolPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        // One slot per input index: per-slot locks never contend (each index
        // is claimed by exactly one worker), so writes are cheap and the
        // result order is input order by construction.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let first_panic: Mutex<Option<PoolPanic>> = Mutex::new(None);

        std::thread::scope(|s| {
            for w in 0..workers {
                let slots = &slots;
                let cursor = &cursor;
                let poisoned = &poisoned;
                let first_panic = &first_panic;
                let telemetry = &self.telemetry;
                s.spawn(move || {
                    let mut done = 0u64;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => {
                                *slots[i].lock().expect("result slot lock") = Some(r);
                                done += 1;
                            }
                            Err(payload) => {
                                let panic = PoolPanic {
                                    task_index: i,
                                    message: panic_message(&*payload),
                                };
                                let mut slot = first_panic.lock().expect("panic slot lock");
                                // Keep the lowest-index panic so the error
                                // is deterministic under racing failures.
                                match &*slot {
                                    Some(p) if p.task_index <= i => {}
                                    _ => *slot = Some(panic),
                                }
                                poisoned.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    telemetry.counter_add(&format!("par.worker.{w}.tasks"), done);
                });
            }
        });

        if let Some(panic) = first_panic.into_inner().expect("panic slot lock") {
            return Err(panic);
        }
        Ok(slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot lock")
                    .expect("unpoisoned batch fills every slot")
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_telemetry::{Telemetry, TelemetryHandle};

    #[test]
    fn par_map_preserves_input_order_for_any_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 7, 16] {
            let pool = WorkerPool::new(jobs);
            assert_eq!(pool.par_map(&items, |&x| x * x + 1), expect, "jobs {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches_work() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(pool.par_map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(WorkerPool::new(0).jobs(), 1);
        assert_eq!(WorkerPool::serial().jobs(), 1);
    }

    #[test]
    fn slow_early_tasks_do_not_scramble_order() {
        // Task 0 finishes last; its result must still land in slot 0.
        let pool = WorkerPool::new(4);
        let out = pool.par_map(&[30u64, 1, 1, 1, 1, 1, 1, 1], |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, vec![30, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn panic_poisons_the_batch_and_reports_the_lowest_index() {
        for jobs in [1, 4] {
            let pool = WorkerPool::new(jobs);
            let err = pool
                .try_par_map(&(0..64u64).collect::<Vec<_>>(), |&x| {
                    if x == 5 || x == 40 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .unwrap_err();
            assert!(
                err.task_index == 5 || err.task_index == 40,
                "jobs {jobs}: {err:?}"
            );
            assert!(err.message.contains("boom"), "jobs {jobs}: {err:?}");
            // The pool is stateless: the next batch works normally.
            assert_eq!(pool.par_map(&[1u64, 2], |&x| x), vec![1, 2]);
        }
    }

    #[test]
    fn telemetry_counts_tasks_batches_and_workers() {
        let handle = TelemetryHandle::attach(Telemetry::new());
        let mut pool = WorkerPool::new(3);
        pool.set_telemetry(handle.clone());
        pool.par_map(&(0..10u64).collect::<Vec<_>>(), |&x| x);
        let reg = handle.snapshot_registry().unwrap();
        assert_eq!(reg.counter("par.tasks"), 10);
        assert_eq!(reg.counter("par.batches"), 1);
        let per_worker: u64 = (0..3)
            .map(|w| reg.counter(&format!("par.worker.{w}.tasks")))
            .sum();
        assert_eq!(per_worker, 10, "every task is attributed to one worker");
    }

    #[test]
    fn resolve_jobs_prefers_explicit_then_env() {
        assert_eq!(resolve_jobs(Some(6)), 6);
        assert_eq!(resolve_jobs(Some(0)), 1, "explicit 0 clamps to 1");
        std::env::set_var("GNOC_JOBS", "3");
        assert_eq!(resolve_jobs(None), 3);
        assert_eq!(resolve_jobs(Some(2)), 2, "flag beats env");
        std::env::set_var("GNOC_JOBS", "not-a-number");
        assert!(resolve_jobs(None) >= 1, "bad env falls through");
        std::env::remove_var("GNOC_JOBS");
        assert!(resolve_jobs(None) >= 1);
    }
}
