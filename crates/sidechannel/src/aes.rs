//! From-scratch AES-128 with table-access tracing.
//!
//! The GPU AES timing attacks the paper revisits (Jiang et al., HPCA'16;
//! Section V-B1) exploit a T-table implementation: each round performs table
//! lookups whose *indices* depend on the state, and on a GPU the 32 threads
//! of a warp encrypt 32 blocks concurrently, so the number of **unique cache
//! lines** touched by the warp's last-round lookups determines the number of
//! memory transactions — and therefore the kernel's timing.
//!
//! This module implements standard AES-128 (FIPS-197) in software and, in
//! addition to ciphertexts, can report the trace of last-round S-box line
//! indices needed by the timing model and the attack. The implementation
//! exists to reproduce a published academic attack and evaluate the paper's
//! scheduling defense; it is not a hardened cryptographic library.

use serde::{Deserialize, Serialize};

/// The AES S-box (FIPS-197, Fig. 7).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, computed from [`SBOX`].
pub fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// xtime: multiplication by x in GF(2^8) modulo the AES polynomial.
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (if a & 0x80 != 0 { 0x1b } else { 0 })
}

/// Multiplication in GF(2^8).
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Bytes per S-box cache line on the GPU: a 128 B line holds 128 single-byte
/// entries of the final-round table... in the T-table layout each entry is
/// 4 B, so a line holds 32 entries. The attack literature uses 32-entry
/// granularity; we follow it.
pub const SBOX_ENTRIES_PER_LINE: u8 = 32;

/// Trace of one block encryption: the last-round S-box indices (one per state
/// byte), from which warp-level unique-line counts are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTrace {
    /// Indices into the S-box used by the final round, per byte position.
    pub last_round_indices: [u8; 16],
}

impl BlockTrace {
    /// The cache-line ids touched by the final round.
    pub fn lines(&self) -> impl Iterator<Item = u8> + '_ {
        self.last_round_indices
            .iter()
            .map(|&i| i / SBOX_ENTRIES_PER_LINE)
    }
}

/// AES-128 with expanded round keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: [u8; 16]) -> Self {
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    /// The last round key (used by the attacker's hypothesis test).
    pub fn last_round_key(&self) -> [u8; 16] {
        self.round_keys[10]
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: byte (row r, col c) at index 4c + r.
        let mut out = [0u8; 16];
        for c in 0..4 {
            for r in 0..4 {
                out[4 * c + r] = state[4 * ((c + r) % 4) + r];
            }
        }
        *state = out;
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let mut out = [0u8; 16];
        for c in 0..4 {
            for r in 0..4 {
                // Inverse of ShiftRows: row r rotates right by r.
                out[4 * ((c + r) % 4) + r] = state[4 * c + r];
            }
        }
        *state = out;
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, plaintext: [u8; 16]) -> [u8; 16] {
        self.encrypt_block_traced(plaintext).0
    }

    /// Decrypts one 16-byte block (the inverse cipher of FIPS-197 §5.3).
    pub fn decrypt_block(&self, ciphertext: [u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let inv_sub = |state: &mut [u8; 16]| {
            for b in state.iter_mut() {
                *b = inv[*b as usize];
            }
        };
        let mut state = ciphertext;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        Self::inv_shift_rows(&mut state);
        inv_sub(&mut state);
        for round in (1..10).rev() {
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
            Self::inv_shift_rows(&mut state);
            inv_sub(&mut state);
        }
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Encrypts one block and reports the last-round table-access trace.
    pub fn encrypt_block_traced(&self, plaintext: [u8; 16]) -> ([u8; 16], BlockTrace) {
        let mut state = plaintext;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        // Final round: the table indices are the pre-SubBytes state bytes
        // (after the ShiftRows permutation they feed the output positions).
        let mut pre = state;
        Self::shift_rows(&mut pre);
        let trace = BlockTrace {
            last_round_indices: pre,
        };
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        (state, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e...3c, plaintext 3243...34.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(key).encrypt_block(pt), expected);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(key).encrypt_block(pt), expected);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_fips_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(key);
        assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
        // And on an arbitrary block with an arbitrary key.
        let aes = Aes128::new([0x5a; 16]);
        let block = [0xc3; 16];
        assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    #[test]
    fn trace_is_consistent_with_ciphertext() {
        // ciphertext byte = SBOX[index] ^ k10 at the same position.
        let key = [7u8; 16];
        let aes = Aes128::new(key);
        let (ct, trace) = aes.encrypt_block_traced([42u8; 16]);
        let k10 = aes.last_round_key();
        for i in 0..16 {
            assert_eq!(
                ct[i],
                SBOX[trace.last_round_indices[i] as usize] ^ k10[i],
                "position {i}"
            );
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        let inv = inv_sbox();
        for b in 0..=255u8 {
            assert_eq!(inv[SBOX[b as usize] as usize], b);
        }
    }

    #[test]
    fn trace_lines_are_in_range() {
        let aes = Aes128::new([1u8; 16]);
        let (_, trace) = aes.encrypt_block_traced([9u8; 16]);
        for line in trace.lines() {
            assert!(line < 8, "256 entries / 32 per line = 8 lines");
        }
    }

    #[test]
    fn gf_multiplication_sanity() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }
}
