//! The AES last-round timing key-recovery attack (paper Section V-B1, Fig. 18)
//! and the random thread-block-scheduling defense (Section V-C).
//!
//! Threat model (after Jiang et al., HPCA'16): the attacker triggers AES
//! encryptions of known random plaintexts on the victim GPU, observes the
//! ciphertexts and kernel execution times, and — knowing that timing is
//! linear in the number of unique T-table cache lines touched by the warp's
//! final round — correlates measured time against the line count predicted
//! under each last-round key-byte guess. The correct guess predicts the real
//! access pattern and produces a Pearson-correlation peak.
//!
//! The NoC twist (this paper's contribution): the linear timing relationship
//! *shifts with SM placement*. Static scheduling pins the victim to one SM,
//! so the shift is constant and harmless; random-seed scheduling re-draws the
//! SM each launch, turning placement-dependent NoC latency into noise that
//! buries the correlation peak.

use crate::aes::{inv_sbox, Aes128, SBOX_ENTRIES_PER_LINE};
use crate::timing::warp_read_cycles;
use gnoc_analysis::pearson;
use gnoc_engine::{CtaScheduler, GpuDevice};
use gnoc_topo::SmId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Threads per warp (blocks encrypted concurrently per sample).
pub const WARP_SIZE: usize = 32;

/// Configuration of one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AesAttackConfig {
    /// Victim AES-128 key.
    pub key: [u8; 16],
    /// Timed encryption launches to collect.
    pub samples: usize,
    /// Ciphertext byte position under attack (0–15).
    pub position: usize,
    /// Victim thread-block scheduler (the defense knob).
    pub scheduler: CtaScheduler,
}

impl AesAttackConfig {
    /// A default attack against byte 0 with static scheduling.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            key,
            samples: 3_000,
            position: 0,
            scheduler: CtaScheduler::Static,
        }
    }
}

/// Result of one attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AesAttackResult {
    /// Pearson correlation between measured time and predicted unique-line
    /// count, per key-byte guess.
    pub correlations: Vec<f64>,
    /// The guess with the highest correlation.
    pub best_guess: u8,
    /// The true key byte (for scoring).
    pub true_byte: u8,
    /// Correlation of the best guess minus the runner-up — the
    /// distinguishability margin.
    pub margin: f64,
}

impl AesAttackResult {
    /// Whether the attack recovered the key byte.
    pub fn succeeded(&self) -> bool {
        self.best_guess == self.true_byte
    }
}

/// T-table cache line of a lookup at byte `position` with table index `idx`:
/// four interleaved T-tables of 8 lines each, selected by `position % 4`.
fn table_line(position: usize, idx: u8) -> u8 {
    (position % 4) as u8 * 8 + idx / SBOX_ENTRIES_PER_LINE
}

/// Unique-line count of a warp's lookups at one byte position.
fn unique_lines(position: usize, indices: &[u8]) -> usize {
    let mut seen = [false; 64];
    let mut count = 0;
    for &idx in indices {
        let line = table_line(position, idx) as usize;
        if !seen[line] {
            seen[line] = true;
            count += 1;
        }
    }
    count
}

/// Runs the attack: collects `cfg.samples` timed launches from the victim and
/// correlates against all 256 key-byte guesses.
///
/// # Panics
///
/// Panics if `cfg.position > 15` or `cfg.samples < 2`.
pub fn run_aes_attack(dev: &mut GpuDevice, cfg: &AesAttackConfig, seed: u64) -> AesAttackResult {
    assert!(cfg.position < 16, "byte position out of range");
    assert!(cfg.samples >= 2, "need at least two samples");
    let aes = Aes128::new(cfg.key);
    let mut rng = StdRng::seed_from_u64(seed);
    let all_sms: Vec<SmId> = SmId::range(dev.hierarchy().num_sms()).collect();

    // ---- Victim: collect (ciphertext bytes, time) samples. -----------------
    let mut times = Vec::with_capacity(cfg.samples);
    let mut ct_bytes: Vec<[u8; WARP_SIZE]> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let sm = cfg.scheduler.assign(1, &all_sms, &mut rng)[0];
        let mut warp_ct = [0u8; WARP_SIZE];
        let mut traces = Vec::with_capacity(WARP_SIZE);
        for (t, slot) in warp_ct.iter_mut().enumerate() {
            let mut pt = [0u8; 16];
            rng.fill(&mut pt);
            let (ct, trace) = aes.encrypt_block_traced(pt);
            *slot = ct[cfg.position];
            traces.push(trace);
            let _ = t;
        }
        // Kernel time: one coalesced transaction group per byte position.
        let mut time = 0.0;
        for position in 0..16 {
            let lines: Vec<u8> = traces
                .iter()
                .map(|tr| table_line(position, tr.last_round_indices[position]))
                .collect();
            time += warp_read_cycles(dev, sm, &lines);
        }
        times.push(time);
        ct_bytes.push(warp_ct);
    }

    // ---- Attacker: correlate per guess. ------------------------------------
    let inv = inv_sbox();
    let mut correlations = Vec::with_capacity(256);
    for guess in 0..=255u8 {
        let predicted: Vec<f64> = ct_bytes
            .iter()
            .map(|warp| {
                let indices: Vec<u8> = warp.iter().map(|&c| inv[(c ^ guess) as usize]).collect();
                unique_lines(cfg.position, &indices) as f64
            })
            .collect();
        correlations.push(pearson(&predicted, &times));
    }

    let mut order: Vec<usize> = (0..256).collect();
    order.sort_by(|&a, &b| {
        correlations[b]
            .partial_cmp(&correlations[a])
            .expect("finite")
    });
    let best_guess = order[0] as u8;
    let margin = correlations[order[0]] - correlations[order[1]];
    AesAttackResult {
        correlations,
        best_guess,
        true_byte: aes.last_round_key()[cfg.position],
        margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    #[test]
    fn static_scheduling_leaks_the_key_byte() {
        // Fig. 18a: with static scheduling the correct last-round key byte
        // produces a clear Pearson peak.
        let mut dev = GpuDevice::a100(0);
        let cfg = AesAttackConfig {
            samples: 2_500,
            ..AesAttackConfig::new(KEY)
        };
        let r = run_aes_attack(&mut dev, &cfg, 42);
        assert!(r.succeeded(), "best {} true {}", r.best_guess, r.true_byte);
        assert!(r.margin > 0.05, "margin {}", r.margin);
    }

    #[test]
    fn random_scheduling_defeats_the_attack() {
        // Fig. 18b: random-seed scheduling destroys the correlation peak.
        let mut dev = GpuDevice::a100(0);
        let cfg = AesAttackConfig {
            samples: 2_500,
            scheduler: CtaScheduler::RandomSeed,
            ..AesAttackConfig::new(KEY)
        };
        let r = run_aes_attack(&mut dev, &cfg, 42);
        let true_corr = r.correlations[r.true_byte as usize];
        // The correct byte no longer stands out: its correlation is buried in
        // the noise floor of wrong guesses.
        let noise: f64 = r
            .correlations
            .iter()
            .enumerate()
            .filter(|&(g, _)| g != r.true_byte as usize)
            .map(|(_, &c)| c.abs())
            .fold(0.0, f64::max);
        assert!(
            true_corr < noise * 2.0,
            "defense failed: true {true_corr} vs noise {noise}"
        );
    }

    #[test]
    fn other_byte_positions_are_recoverable_too() {
        let mut dev = GpuDevice::a100(1);
        let cfg = AesAttackConfig {
            samples: 2_500,
            position: 5,
            ..AesAttackConfig::new(KEY)
        };
        let r = run_aes_attack(&mut dev, &cfg, 7);
        assert!(r.succeeded());
    }

    #[test]
    fn unique_line_counting_is_correct() {
        assert_eq!(unique_lines(0, &[0, 1, 31]), 1);
        assert_eq!(unique_lines(0, &[0, 32, 64]), 3);
        // Different positions select different tables.
        assert_ne!(table_line(0, 0), table_line(1, 0));
        assert_eq!(table_line(0, 0), table_line(4, 0));
    }

    #[test]
    #[should_panic(expected = "position")]
    fn bad_position_rejected() {
        let mut dev = GpuDevice::v100(0);
        let cfg = AesAttackConfig {
            position: 16,
            ..AesAttackConfig::new(KEY)
        };
        let _ = run_aes_attack(&mut dev, &cfg, 0);
    }
}
