//! GPU kernel-timing models for the side-channel experiments.
//!
//! Both attacks in the paper reduce to kernel execution time that depends on
//! (a) a secret-dependent amount of memory work and (b) the *placement* of
//! the kernel's SMs relative to the L2 slices — the NoC contribution that is
//! the paper's subject (Fig. 17).

use gnoc_engine::GpuDevice;
use gnoc_topo::{PartitionId, SliceId, SmId};

/// Extra cycles per additional coalesced memory transaction once the first
/// transaction's latency is paid (the slope of Fig. 17a).
pub const ISSUE_GAP_CYCLES: f64 = 6.0;

/// Base line address of the resident AES T-tables in the device address
/// space (arbitrary but fixed; the tables are warmed into L2).
pub const TABLE_BASE_LINE: u64 = 0x4000_0000;

/// Execution time (cycles) of one warp performing coalesced reads that touch
/// the given table cache lines from `sm` — the Fig. 17a kernel.
///
/// The warp issues one memory transaction per *unique* line; the
/// transactions pipeline at [`ISSUE_GAP_CYCLES`] and the warp completes when
/// the slowest reply returns, so the time is the *maximum* per-line L2
/// latency (placement-dependent) plus the serialisation term. Measurement
/// jitter comes from the device's seeded noise stream.
pub fn warp_read_cycles(dev: &mut GpuDevice, sm: SmId, table_lines: &[u8]) -> f64 {
    let mut unique: Vec<u8> = table_lines.to_vec();
    unique.sort_unstable();
    unique.dedup();
    if unique.is_empty() {
        return 0.0;
    }
    let mut slowest = 0.0f64;
    for &line in &unique {
        let addr = TABLE_BASE_LINE + u64::from(line);
        dev.warm_line(sm, addr);
        slowest = slowest.max(dev.timed_read(sm, addr) as f64);
    }
    slowest + (unique.len() as f64 - 1.0) * ISSUE_GAP_CYCLES
}

/// Fixed (compute) cycles of one `square()`/`multiply()` kernel invocation,
/// excluding memory and synchronisation.
pub const RSA_OP_COMPUTE_CYCLES: f64 = 52.0;

/// Execution time (cycles) of one two-SM RSA kernel operation (the CUDA
/// `square()` sample the paper measures in Fig. 17b).
///
/// Both SMs read the shared operand, which lives in L2 near `sm_a`; each
/// iteration ends with a barrier. When the SMs sit on different die
/// partitions the far SM pays the crossing on every access *and* the barrier
/// pays a round trip over the central interconnect — the paper measures up to
/// 1.7× on A100.
pub fn two_sm_op_cycles(dev: &GpuDevice, sm_a: SmId, sm_b: SmId) -> f64 {
    let h = dev.hierarchy();
    let pa = h.sm(sm_a).partition;
    // Shared data is resident in sm_a's partition (or the single partition).
    let data_slices: Vec<SliceId> = h.slices_in_partition(pa).to_vec();
    let mean_lat = |sm: SmId| -> f64 {
        data_slices
            .iter()
            .map(|&s| dev.hit_cycles_mean(sm, s))
            .sum::<f64>()
            / data_slices.len() as f64
    };
    let sync = if h.sm(sm_b).partition == pa {
        0.0
    } else {
        2.0 * dev.calibration().partition_crossing_cycles
    };
    RSA_OP_COMPUTE_CYCLES + mean_lat(sm_a) + mean_lat(sm_b) + sync
}

/// Convenience: the die partition of an SM (used when selecting experiment
/// SM sets).
pub fn partition_of(dev: &GpuDevice, sm: SmId) -> PartitionId {
    dev.hierarchy().sm(sm).partition
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_time_grows_linearly_with_unique_lines() {
        // Fig. 17a: latency linear in the number of unique cache lines.
        let mut dev = GpuDevice::v100(0);
        let sm = SmId::new(0);
        let t1 = avg(&mut dev, sm, &[0]);
        let t4 = avg(&mut dev, sm, &[0, 1, 2, 3]);
        let t8 = avg(&mut dev, sm, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(t1 < t4 && t4 < t8, "{t1} {t4} {t8}");
        // Adding lines 4..8 to an existing set costs ≈ 4 serialisation gaps
        // (plus a bounded change in the max-latency term).
        assert!((t8 - t4 - 4.0 * ISSUE_GAP_CYCLES).abs() < 25.0, "{t4} {t8}");
    }

    fn avg(dev: &mut GpuDevice, sm: SmId, lines: &[u8]) -> f64 {
        (0..24)
            .map(|_| warp_read_cycles(dev, sm, lines))
            .sum::<f64>()
            / 24.0
    }

    #[test]
    fn duplicate_lines_coalesce() {
        let mut dev = GpuDevice::v100(1);
        let sm = SmId::new(3);
        let dup = avg(&mut dev, sm, &[5, 5, 5, 5]);
        let single = avg(&mut dev, sm, &[5]);
        assert!((dup - single).abs() < 5.0, "{dup} vs {single}");
    }

    #[test]
    fn warp_time_shifts_with_sm_placement() {
        // Fig. 17a: the linear relationship "shifts" between SMs.
        let mut dev = GpuDevice::a100(0);
        let near = avg(&mut dev, SmId::new(0), &[0, 1, 2, 3]);
        // Find an SM on the other partition: its view of the same table lines
        // is served by its own partition... on A100 (globally shared) the
        // table lines live on fixed slices, so a far SM pays the crossing.
        let far_sm = SmId::new(2);
        let far = avg(&mut dev, far_sm, &[0, 1, 2, 3]);
        assert!(
            (far - near).abs() > 15.0,
            "placement shift expected: {near} vs {far}"
        );
    }

    #[test]
    fn empty_line_set_is_free() {
        let mut dev = GpuDevice::v100(0);
        assert_eq!(warp_read_cycles(&mut dev, SmId::new(0), &[]), 0.0);
    }

    #[test]
    fn cross_partition_rsa_op_costs_about_1_7x() {
        // Fig. 17b on A100: up to ≈ 1.7× across partitions, ≤ ~12 % within.
        let dev = GpuDevice::a100(0);
        let h = dev.hierarchy();
        let left = h.sms_in_partition(PartitionId::new(0)).to_vec();
        let right = h.sms_in_partition(PartitionId::new(1)).to_vec();
        let same = two_sm_op_cycles(&dev, left[0], left[1]);
        let cross = two_sm_op_cycles(&dev, left[0], right[0]);
        let ratio = cross / same;
        assert!((1.5..1.95).contains(&ratio), "cross/same = {ratio:.2}");

        // Within-partition variation stays modest.
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &b in left.iter().skip(1).take(12) {
            let t = two_sm_op_cycles(&dev, left[0], b);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        assert!(hi / lo < 1.15, "same-partition spread {:.3}", hi / lo);
    }

    #[test]
    fn v100_has_no_cross_partition_penalty() {
        let dev = GpuDevice::v100(0);
        let a = two_sm_op_cycles(&dev, SmId::new(0), SmId::new(40));
        let b = two_sm_op_cycles(&dev, SmId::new(0), SmId::new(1));
        assert!(a / b < 1.2, "{a} vs {b}");
    }
}
