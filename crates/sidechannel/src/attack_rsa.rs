//! The RSA exponent-weight timing attack (paper Section V-B2, Fig. 19).
//!
//! Square-and-multiply modular exponentiation performs one squaring per
//! exponent bit and one extra multiplication per 1-bit, each a
//! constant-work kernel, so decryption time is linear in the exponent's
//! Hamming weight — which prior work (Luo et al.) used to recover it. The
//! kernel runs on two SMs; this paper shows the per-operation time depends on
//! *which* SMs the scheduler picks (up to 1.7× across A100 partitions), so
//! random-seed scheduling makes the time-vs-weight relationship too noisy to
//! invert.

use crate::bigint::BigUint;
use crate::timing::two_sm_op_cycles;
use gnoc_analysis::LinearFit;
use gnoc_engine::{CtaScheduler, GpuDevice};
use gnoc_topo::SmId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one RSA timing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsaAttackConfig {
    /// Bit length of the secret exponents sampled.
    pub exponent_bits: usize,
    /// Decryption launches (each with a fresh random exponent weight).
    pub samples: usize,
    /// Victim scheduler.
    pub scheduler: CtaScheduler,
}

impl Default for RsaAttackConfig {
    fn default() -> Self {
        Self {
            exponent_bits: 256,
            samples: 120,
            scheduler: CtaScheduler::Static,
        }
    }
}

/// One observed decryption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsaSample {
    /// Hamming weight of the secret exponent (ground truth).
    pub ones: u64,
    /// Measured decryption time, cycles.
    pub time: f64,
}

/// Result of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RsaAttackResult {
    /// The observed (weight, time) samples.
    pub samples: Vec<RsaSample>,
    /// Least-squares fit of time against weight — the attacker's model.
    pub fit: LinearFit,
    /// Width of the plausible-weight interval when inverting a timing
    /// observation: the largest spread of true weights over any pair of
    /// samples whose times agree within 2 %. Small ⇒ timing pins the weight
    /// (attack works); large ⇒ defeated (the paper quotes 416–1920 possible
    /// 1-bits for one observed time under the randomised scheduler).
    pub weight_uncertainty: u64,
}

/// Generates a random exponent of exactly `bits` bits with a random weight
/// (top bit forced to 1 so the bit length is exact).
fn random_exponent(bits: usize, rng: &mut StdRng) -> BigUint {
    // Bias the per-bit probability to spread Hamming weights widely.
    let p: f64 = rng.gen_range(0.05..0.95);
    let mut limbs = vec![0u64; bits.div_ceil(64)];
    for i in 0..bits {
        if rng.gen::<f64>() < p {
            limbs[i / 64] |= 1 << (i % 64);
        }
    }
    limbs[(bits - 1) / 64] |= 1 << ((bits - 1) % 64);
    BigUint::from_limbs(limbs)
}

/// Runs the experiment: samples secret exponents, executes real
/// square-and-multiply decryptions to obtain operation counts, and times them
/// under the victim's scheduler.
///
/// # Panics
///
/// Panics if `exponent_bits` is zero or `samples < 2`.
pub fn run_rsa_attack(dev: &GpuDevice, cfg: &RsaAttackConfig, seed: u64) -> RsaAttackResult {
    assert!(cfg.exponent_bits > 0, "exponent must be non-empty");
    assert!(cfg.samples >= 2, "need at least two samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let all_sms: Vec<SmId> = SmId::range(dev.hierarchy().num_sms()).collect();
    // A fixed toy modulus (product of two primes) — the arithmetic is real,
    // only the width is scaled down for simulation speed.
    let modulus = BigUint::from_limbs(vec![0x9ba4_f327_cd73_a697, 0xc1f6_1a5b_88f2_9d11]);
    let ciphertext = BigUint::from_limbs(vec![0x0123_4567_89ab_cdef, 0x0fed_cba9]);

    let mut samples = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let exponent = random_exponent(cfg.exponent_bits, &mut rng);
        let (_, squares, multiplies) = ciphertext.modpow_counted(&exponent, &modulus);
        // The square() kernel uses two SMs; the scheduler picks them fresh
        // each launch.
        let pair = cfg.scheduler.assign(2, &all_sms, &mut rng);
        let op_time = two_sm_op_cycles(dev, pair[0], pair[1]);
        let time = (squares + multiplies) as f64 * op_time;
        samples.push(RsaSample {
            ones: exponent.count_ones(),
            time,
        });
    }

    let xs: Vec<f64> = samples.iter().map(|s| s.ones as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let fit = LinearFit::fit(&xs, &ys);

    // Invert timing observations: over every pair of samples whose times
    // agree within 2 %, how far apart can the true weights be?
    let mut weight_uncertainty = 0u64;
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            let (a, b) = (&samples[i], &samples[j]);
            if (a.time - b.time).abs() <= 0.02 * a.time.max(b.time) {
                weight_uncertainty = weight_uncertainty.max(a.ones.abs_diff(b.ones));
            }
        }
    }

    RsaAttackResult {
        samples,
        fit,
        weight_uncertainty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_scheduling_gives_clean_linear_fit() {
        // Fig. 19a: time vs weight is linear under static scheduling.
        let dev = GpuDevice::a100(0);
        let r = run_rsa_attack(&dev, &RsaAttackConfig::default(), 11);
        assert!(r.fit.r_squared > 0.98, "r² = {}", r.fit.r_squared);
        assert!(r.fit.slope > 0.0);
        // Inversion pins the weight to a narrow interval.
        assert!(
            r.weight_uncertainty < 20,
            "uncertainty {}",
            r.weight_uncertainty
        );
    }

    #[test]
    fn random_scheduling_makes_the_relation_noisy() {
        // Fig. 19b: random thread-block scheduling buries the line in noise.
        let dev = GpuDevice::a100(0);
        let cfg = RsaAttackConfig {
            scheduler: CtaScheduler::RandomSeed,
            ..RsaAttackConfig::default()
        };
        let r = run_rsa_attack(&dev, &cfg, 11);
        assert!(r.fit.r_squared < 0.75, "r² = {}", r.fit.r_squared);
        // Inverting a time now spans a wide weight range (the paper quotes
        // 416–1920 for a 2048-bit key; proportionally wide here).
        assert!(
            r.weight_uncertainty > 40,
            "uncertainty {}",
            r.weight_uncertainty
        );
    }

    #[test]
    fn defense_strictly_increases_uncertainty() {
        let dev = GpuDevice::a100(3);
        let s = run_rsa_attack(&dev, &RsaAttackConfig::default(), 5);
        let d = run_rsa_attack(
            &dev,
            &RsaAttackConfig {
                scheduler: CtaScheduler::RandomSeed,
                ..RsaAttackConfig::default()
            },
            5,
        );
        assert!(d.weight_uncertainty > s.weight_uncertainty);
        assert!(d.fit.r_squared < s.fit.r_squared);
    }

    #[test]
    fn exponent_generator_spans_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights: Vec<u64> = (0..40)
            .map(|_| random_exponent(256, &mut rng).count_ones())
            .collect();
        let min = weights.iter().min().unwrap();
        let max = weights.iter().max().unwrap();
        assert!(max - min > 60, "weights {min}..{max} too narrow");
        // Bit length is exact.
        let e = random_exponent(256, &mut rng);
        assert_eq!(e.bits(), 256);
    }

    #[test]
    fn time_is_linear_in_operation_count_by_construction() {
        let dev = GpuDevice::v100(0);
        let r = run_rsa_attack(
            &dev,
            &RsaAttackConfig {
                exponent_bits: 128,
                samples: 60,
                scheduler: CtaScheduler::Static,
            },
            2,
        );
        assert!(r.fit.r_squared > 0.99);
    }
}
