//! Minimal unsigned big-integer arithmetic for the RSA timing reproduction.
//!
//! Just enough to run square-and-multiply modular exponentiation over
//! multi-limb moduli: comparison, subtraction, schoolbook multiplication,
//! modular reduction by shift-and-subtract, and modpow. Not constant-time —
//! deliberately so: the RSA attack (paper Section V-B2) exploits exactly the
//! data-dependent square/multiply operation counts.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer, little-endian 64-bit limbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BigUint {
    limbs: Vec<u64>, // no trailing zero limbs; empty == 0
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Builds from little-endian limbs (trailing zeros trimmed).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// The little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Three-way comparison.
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0);
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`; panics on underflow.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "big integer subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        Self::from_limbs(out)
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Self::from_limbs(out)
    }

    /// `self mod m` by shift-and-subtract long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulo by zero");
        if self.cmp_big(m) == Ordering::Less {
            return self.clone();
        }
        let mut r = self.clone();
        let shift = self.bits() - m.bits();
        for s in (0..=shift).rev() {
            let shifted = m.shl(s);
            if r.cmp_big(&shifted) != Ordering::Less {
                r = r.sub(&shifted);
            }
        }
        r
    }

    /// Modular exponentiation by left-to-right square-and-multiply, counting
    /// the squarings and multiplications performed — the operation counts
    /// whose timing the RSA attack measures.
    ///
    /// Returns `(result, squares, multiplies)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow_counted(&self, exponent: &Self, modulus: &Self) -> (Self, u64, u64) {
        let mut result = BigUint::from_u64(1).rem(modulus);
        let mut squares = 0u64;
        let mut multiplies = 0u64;
        if exponent.is_zero() {
            return (result, 0, 0);
        }
        let base = self.rem(modulus);
        for i in (0..exponent.bits()).rev() {
            result = result.mul(&result).rem(modulus);
            squares += 1;
            if exponent.bit(i) {
                result = result.mul(&base).rem(modulus);
                multiplies += 1;
            }
        }
        (result, squares, multiplies)
    }

    /// Number of 1-bits in the value (the RSA attack's target quantity).
    pub fn count_ones(&self) -> u64 {
        self.limbs.iter().map(|l| u64::from(l.count_ones())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_normalises() {
        assert!(BigUint::from_limbs(vec![0, 0]).is_zero());
        assert_eq!(BigUint::from_limbs(vec![5, 0]).limbs(), &[5]);
    }

    #[test]
    fn bits_and_bit_access() {
        let v = BigUint::from_limbs(vec![0b1010, 1]);
        assert_eq!(v.bits(), 65);
        assert!(v.bit(1));
        assert!(!v.bit(0));
        assert!(v.bit(64));
        assert!(!v.bit(200));
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = BigUint::from_limbs(vec![u64::MAX]);
        let b = big(1);
        assert_eq!(a.add(&b).limbs(), &[0, 1]);
        // add/sub are inverse.
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(BigUint::zero().add(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn subtraction_with_borrow() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = big(1);
        assert_eq!(a.sub(&b).limbs(), &[u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn multiplication_crosses_limbs() {
        let a = BigUint::from_limbs(vec![u64::MAX]);
        let sq = a.mul(&a); // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.limbs(), &[1, u64::MAX - 1]);
    }

    #[test]
    fn rem_matches_u128_arithmetic() {
        let a = BigUint::from_limbs(vec![0x1234_5678_9abc_def0, 0xfedc_ba98]);
        let m = big(1_000_000_007);
        let a128 = (0xfedc_ba98u128 << 64) | 0x1234_5678_9abc_def0u128;
        assert_eq!(a.rem(&m).limbs(), &[(a128 % 1_000_000_007) as u64]);
    }

    #[test]
    fn modpow_matches_u128_reference() {
        let (r, s, m) = big(7).modpow_counted(&big(0b1011), &big(1000));
        // 7^11 mod 1000 = 1977326743 mod 1000 = 743.
        assert_eq!(r.limbs(), &[743]);
        assert_eq!(s, 4); // one squaring per exponent bit
        assert_eq!(m, 3); // one multiply per 1-bit
    }

    #[test]
    fn modpow_counts_follow_hamming_weight() {
        let modulus = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0xdead_beef]);
        let exp_light = BigUint::from_limbs(vec![0b1000_0001]);
        let exp_heavy = BigUint::from_limbs(vec![0xff]);
        let base = big(12345);
        let (_, s1, m1) = base.modpow_counted(&exp_light, &modulus);
        let (_, s2, m2) = base.modpow_counted(&exp_heavy, &modulus);
        assert_eq!(s1, s2); // same bit length → same squarings
        assert_eq!(m1, 2);
        assert_eq!(m2, 8);
    }

    #[test]
    fn zero_exponent_yields_one() {
        let (r, s, m) = big(5).modpow_counted(&BigUint::zero(), &big(13));
        assert_eq!(r.limbs(), &[1]);
        assert_eq!((s, m), (0, 0));
    }

    #[test]
    fn count_ones_spans_limbs() {
        let v = BigUint::from_limbs(vec![0b111, 0b1]);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // a^(p-1) ≡ 1 mod p for prime p not dividing a.
        let p = big(1_000_000_007);
        let (r, _, _) = big(31337).modpow_counted(&big(1_000_000_006), &p);
        assert_eq!(r.limbs(), &[1]);
    }
}
