//! # gnoc-sidechannel
//!
//! Reproduction of the GPU timing side-channel study in Section V of
//! *Uncovering Real GPU NoC Characteristics* (MICRO 2024): how non-uniform
//! NoC latency interacts with two published attacks, and the paper's
//! random thread-block-scheduling defense.
//!
//! - [`Aes128`] — from-scratch AES-128 (FIPS-197) with last-round T-table
//!   access tracing;
//! - [`BigUint`] — minimal bignum with counted square-and-multiply modpow;
//! - [`timing`] — the placement-dependent GPU kernel-timing models of
//!   Fig. 17;
//! - [`run_aes_attack`] — the last-round correlation key recovery (Fig. 18);
//! - [`run_rsa_attack`] — the exponent-weight timing attack (Fig. 19);
//! - both evaluated under [`gnoc_engine::CtaScheduler::Static`] and the
//!   defensive [`gnoc_engine::CtaScheduler::RandomSeed`];
//! - [`covert`] — the slice-contention covert channel the paper's Section
//!   V-A sketches at the NoC output, with placement-aware setup.
//!
//! These implementations reproduce published academic attacks against a
//! *simulated* device to evaluate a defense; they are not hardened crypto.
//!
//! ```
//! use gnoc_sidechannel::Aes128;
//!
//! let aes = Aes128::new([0u8; 16]);
//! let ct = aes.encrypt_block([0u8; 16]);
//! assert_eq!(ct[0], 0x66); // FIPS-197 all-zero vector starts 66 e9 4b d4…
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aes;
mod attack_aes;
mod attack_rsa;
mod bigint;
pub mod covert;
pub mod timing;

pub use aes::{inv_sbox, Aes128, BlockTrace, SBOX, SBOX_ENTRIES_PER_LINE};
pub use attack_aes::{run_aes_attack, AesAttackConfig, AesAttackResult, WARP_SIZE};
pub use attack_rsa::{run_rsa_attack, RsaAttackConfig, RsaAttackResult, RsaSample};
pub use bigint::BigUint;
