//! Slice-contention covert channel (paper Section V-A).
//!
//! The paper notes that NoC characterisation enables covert channels both at
//! the NoC *input* (SM co-location) and at the NoC *output* — the input of an
//! L2 slice. This module builds the output-side channel: a transmitter
//! modulates load on one L2 slice (hammer = 1, idle = 0) while a receiver
//! continuously streams from the same slice and decodes its own achieved
//! bandwidth. Placement knowledge (Implication #1) matters twice: the
//! parties must agree on a slice, and a transmitter placed on the slice's own
//! partition injects far more contention per SM than a far-partition one.

use gnoc_analysis::Summary;
use gnoc_engine::{AccessKind, FlowSpec, GpuDevice};
use gnoc_topo::{PartitionId, SliceId, SmId};
use serde::{Deserialize, Serialize};

/// Configuration of one covert-channel session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertChannelConfig {
    /// The L2 slice both parties agreed on (e.g. recovered via the slice-map
    /// probe of `gnoc-microbench`).
    pub slice: SliceId,
    /// SMs the transmitter's kernel occupies.
    pub tx_sms: Vec<SmId>,
    /// The receiver's SM.
    pub rx_sm: SmId,
    /// Symbol duration in cycles (sets the bit rate).
    pub window_cycles: f64,
    /// Length of the known alternating preamble used to train the decision
    /// threshold.
    pub preamble_bits: usize,
}

impl CovertChannelConfig {
    /// A placement-aware default on `dev`: the transmitter takes `tx_count`
    /// SMs from the slice's own partition (maximum contention per SM), the
    /// receiver one more SM from the same partition.
    pub fn colocated(dev: &GpuDevice, slice: SliceId, tx_count: usize) -> Self {
        let p = dev.hierarchy().slice(slice).partition;
        let sms = dev.hierarchy().sms_in_partition(p);
        Self {
            slice,
            tx_sms: sms[..tx_count.min(sms.len() - 1)].to_vec(),
            rx_sm: sms[sms.len() - 1],
            window_cycles: 20_000.0,
            preamble_bits: 8,
        }
    }

    /// A naive placement on a two-partition device: the transmitter sits on
    /// the partition *opposite* the slice, where Little's law caps each SM's
    /// pressure on the slice — the weak-signal baseline.
    pub fn far(dev: &GpuDevice, slice: SliceId, tx_count: usize) -> Self {
        let near = dev.hierarchy().slice(slice).partition;
        let far =
            PartitionId::new((near.index() as u32 + 1) % dev.hierarchy().num_partitions() as u32);
        let tx = dev.hierarchy().sms_in_partition(far);
        let rx = dev.hierarchy().sms_in_partition(near);
        Self {
            slice,
            tx_sms: tx[..tx_count.min(tx.len())].to_vec(),
            rx_sm: rx[rx.len() - 1],
            window_cycles: 20_000.0,
            preamble_bits: 8,
        }
    }
}

/// Result of a covert transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertResult {
    /// The payload bits sent.
    pub sent: Vec<bool>,
    /// The bits the receiver decoded.
    pub received: Vec<bool>,
    /// Receiver bandwidth sample per payload symbol, GB/s.
    pub rx_rates: Vec<f64>,
    /// Decision threshold learned from the preamble, GB/s.
    pub threshold: f64,
    /// Bit error rate over the payload.
    pub ber: f64,
    /// Raw symbol rate in bits/s implied by the window length.
    pub raw_bits_per_sec: f64,
}

impl CovertResult {
    /// Shannon capacity of the binary symmetric channel implied by the
    /// measured BER, in bits per symbol: `1 - H(ber)`.
    pub fn capacity_per_symbol(&self) -> f64 {
        let p = self.ber.clamp(1e-12, 1.0 - 1e-12);
        let h = -p * p.log2() - (1.0 - p) * (1.0 - p).log2();
        (1.0 - h).max(0.0)
    }

    /// Effective channel capacity in bits/s.
    pub fn capacity_bits_per_sec(&self) -> f64 {
        self.raw_bits_per_sec * self.capacity_per_symbol()
    }
}

/// The receiver's observed bandwidth during one symbol (GB/s, with
/// measurement noise).
fn rx_sample(dev: &mut GpuDevice, cfg: &CovertChannelConfig, tx_active: bool) -> f64 {
    let mut flows = vec![FlowSpec {
        sm: cfg.rx_sm,
        slice: cfg.slice,
        kind: AccessKind::ReadHit,
    }];
    if tx_active {
        flows.extend(cfg.tx_sms.iter().map(|&sm| FlowSpec {
            sm,
            slice: cfg.slice,
            kind: AccessKind::ReadHit,
        }));
    }
    let sol = dev.solve_bandwidth(&flows);
    (sol.rates_gbps[0] + dev.bandwidth_jitter(0.6)).max(0.0)
}

/// Transmits `payload` over the channel, training the threshold with an
/// alternating preamble first.
///
/// # Panics
///
/// Panics if the config has no transmitter SMs or the preamble is shorter
/// than two bits.
pub fn transmit(dev: &mut GpuDevice, cfg: &CovertChannelConfig, payload: &[bool]) -> CovertResult {
    assert!(!cfg.tx_sms.is_empty(), "transmitter needs at least one SM");
    assert!(cfg.preamble_bits >= 2, "preamble must train both symbols");

    // Preamble: 1, 0, 1, 0, … — receiver learns the two rate levels.
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for i in 0..cfg.preamble_bits {
        let bit = i % 2 == 0;
        let rate = rx_sample(dev, cfg, bit);
        if bit {
            ones.push(rate);
        } else {
            zeros.push(rate);
        }
    }
    let threshold = (Summary::of(&ones).mean + Summary::of(&zeros).mean) / 2.0;

    // Payload.
    let mut rx_rates = Vec::with_capacity(payload.len());
    let mut received = Vec::with_capacity(payload.len());
    for &bit in payload {
        let rate = rx_sample(dev, cfg, bit);
        rx_rates.push(rate);
        // TX hammering the slice *lowers* the receiver's share.
        received.push(rate < threshold);
    }
    let errors = payload
        .iter()
        .zip(&received)
        .filter(|(s, r)| s != r)
        .count();
    let ber = errors as f64 / payload.len().max(1) as f64;
    let clock_hz = dev.spec().clock_ghz * 1e9;
    CovertResult {
        sent: payload.to_vec(),
        received,
        rx_rates,
        threshold,
        ber,
        raw_bits_per_sec: clock_hz / cfg.window_cycles,
    }
}

/// Signal-to-noise summary of a channel configuration: the gap between the
/// receiver's idle and contended bandwidth, in units of the measurement
/// noise. Used to compare placement strategies without running a payload.
pub fn channel_snr(dev: &mut GpuDevice, cfg: &CovertChannelConfig) -> f64 {
    let idle: Vec<f64> = (0..12).map(|_| rx_sample(dev, cfg, false)).collect();
    let busy: Vec<f64> = (0..12).map(|_| rx_sample(dev, cfg, true)).collect();
    let gap = (Summary::of(&idle).mean - Summary::of(&busy).mean).abs();
    let noise = (Summary::of(&idle).stddev + Summary::of(&busy).stddev).max(1e-9);
    gap / noise
}

/// Demo payload helper: the bytes' bits, MSB first.
pub fn bits_of(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Reassembles bits (MSB first) into bytes, dropping a ragged tail.
pub fn bytes_of(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_channel_is_error_free() {
        let mut dev = GpuDevice::a100(51);
        let slice = SliceId::new(3);
        let cfg = CovertChannelConfig::colocated(&dev, slice, 6);
        let payload = bits_of(b"gnoc");
        let r = transmit(&mut dev, &cfg, &payload);
        assert_eq!(r.ber, 0.0, "rates {:?}", r.rx_rates);
        assert_eq!(bytes_of(&r.received), b"gnoc");
        assert!(r.capacity_per_symbol() > 0.99);
        assert!(r.raw_bits_per_sec > 10_000.0);
    }

    #[test]
    fn placement_knowledge_improves_snr() {
        // The paper's point: co-locating the transmitter with the slice's
        // partition (which requires placement recovery) gives a stronger
        // channel than a naive far placement.
        let mut dev = GpuDevice::a100(52);
        let slice = SliceId::new(0);
        let near = CovertChannelConfig::colocated(&dev, slice, 3);
        let far = CovertChannelConfig::far(&dev, slice, 3);
        let snr_near = channel_snr(&mut dev, &near);
        let snr_far = channel_snr(&mut dev, &far);
        assert!(
            snr_near > snr_far,
            "near SNR {snr_near:.1} should beat far SNR {snr_far:.1}"
        );
    }

    #[test]
    fn single_far_sm_is_a_weak_transmitter() {
        let mut dev = GpuDevice::a100(53);
        let slice = SliceId::new(0);
        let strong_cfg = CovertChannelConfig::colocated(&dev, slice, 6);
        let weak_cfg = CovertChannelConfig::far(&dev, slice, 1);
        let strong = channel_snr(&mut dev, &strong_cfg);
        let weak = channel_snr(&mut dev, &weak_cfg);
        assert!(strong > 2.0 * weak, "strong {strong:.1} vs weak {weak:.1}");
    }

    #[test]
    fn bits_round_trip() {
        let bytes = b"\x00\xff\xa5";
        assert_eq!(bytes_of(&bits_of(bytes)), bytes);
        // Ragged tails are dropped.
        let mut bits = bits_of(b"x");
        bits.push(true);
        assert_eq!(bytes_of(&bits), b"x");
    }

    #[test]
    fn capacity_is_monotone_in_ber() {
        let mk = |ber: f64| CovertResult {
            sent: vec![],
            received: vec![],
            rx_rates: vec![],
            threshold: 0.0,
            ber,
            raw_bits_per_sec: 1000.0,
        };
        assert!(mk(0.0).capacity_per_symbol() > mk(0.1).capacity_per_symbol());
        assert!(mk(0.1).capacity_per_symbol() > mk(0.4).capacity_per_symbol());
        assert!(mk(0.5).capacity_per_symbol() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn empty_transmitter_rejected() {
        let mut dev = GpuDevice::v100(0);
        let cfg = CovertChannelConfig {
            slice: SliceId::new(0),
            tx_sms: vec![],
            rx_sm: SmId::new(0),
            window_cycles: 1000.0,
            preamble_bits: 4,
        };
        let _ = transmit(&mut dev, &cfg, &[true]);
    }
}
