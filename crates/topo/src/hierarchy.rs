//! The compute and memory hierarchy of a GPU.
//!
//! A GPU is organised hierarchically (Section II-A of the paper): two SMs form
//! a TPC, several TPCs form a CPC (an intermediate level the paper infers on
//! H100), several CPCs form a GPC, and GPCs are grouped into one or two die
//! "partitions". On the memory side, L2 slices are grouped into memory
//! partitions (MPs), each with a memory controller, and MPs likewise belong to
//! a die partition.
//!
//! [`Hierarchy`] is the immutable, fully-resolved form: it pre-computes every
//! containment lookup in both directions so the rest of the workspace can ask
//! `sm → gpc` or `gpc → [sm]` in O(1).

use crate::ids::{CpcId, GpcId, MpId, PartitionId, SliceId, SmId, TpcId};
use serde::{Deserialize, Serialize};

/// How architectural SM ids (the `smid` register values) map onto physical SM
/// positions.
///
/// NVIDIA does not document this mapping; the paper observes that consecutive
/// `smid`s land in different GPCs (e.g. SM0 and SM2 of the A100 live on
/// different die partitions, Fig. 12). [`SmEnumeration::RoundRobinTpc`]
/// reproduces that behaviour; [`SmEnumeration::GpcMajor`] is the naive layout
/// useful for debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmEnumeration {
    /// SM ids are assigned GPC by GPC: SMs `0..k` are GPC0, the next `k` are
    /// GPC1, and so on.
    GpcMajor,
    /// SM ids are assigned one TPC (two SMs) at a time, cycling through the
    /// GPCs in `gpc_order`. GPCs that run out of TPCs are skipped.
    RoundRobinTpc {
        /// The order in which GPCs receive TPCs during enumeration. Must be a
        /// permutation of all GPC ids.
        gpc_order: Vec<GpcId>,
    },
}

/// Declarative description of a GPU hierarchy, from which a [`Hierarchy`] is
/// built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// For each GPC, for each CPC inside it, the number of TPCs in that CPC.
    /// Devices without a visible CPC level use a single CPC per GPC.
    pub gpc_cpc_tpcs: Vec<Vec<u32>>,
    /// SMs per TPC (2 on every GPU the paper studies).
    pub sms_per_tpc: u32,
    /// Die partition of each GPC (indexed by GPC id).
    pub gpc_partition: Vec<PartitionId>,
    /// Number of die partitions (1 on V100, 2 on A100/H100).
    pub num_partitions: u32,
    /// Number of memory partitions (MPs).
    pub num_mps: u32,
    /// L2 slices per MP.
    pub slices_per_mp: u32,
    /// Die partition of each MP (indexed by MP id).
    pub mp_partition: Vec<PartitionId>,
    /// How `smid` values map to physical SMs.
    pub sm_enumeration: SmEnumeration,
}

/// Errors produced when validating a [`HierarchySpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildHierarchyError {
    /// The spec contains no GPCs, no TPCs, no MPs or no slices.
    Empty(&'static str),
    /// `gpc_partition` / `mp_partition` length does not match the GPC/MP count.
    PartitionTableLength {
        /// Which table was wrong.
        table: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Number of entries found.
        found: usize,
    },
    /// A partition id is out of range.
    PartitionOutOfRange {
        /// The offending partition id.
        partition: PartitionId,
        /// Number of partitions declared.
        num_partitions: u32,
    },
    /// The round-robin enumeration order is not a permutation of all GPCs.
    BadEnumerationOrder,
}

impl std::fmt::Display for BuildHierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty(what) => write!(f, "hierarchy spec has no {what}"),
            Self::PartitionTableLength {
                table,
                expected,
                found,
            } => write!(
                f,
                "{table} has {found} entries but {expected} were expected"
            ),
            Self::PartitionOutOfRange {
                partition,
                num_partitions,
            } => write!(
                f,
                "partition {partition} out of range (device has {num_partitions} partitions)"
            ),
            Self::BadEnumerationOrder => {
                write!(f, "sm enumeration order is not a permutation of all gpcs")
            }
        }
    }
}

impl std::error::Error for BuildHierarchyError {}

/// Fully-resolved location of one SM in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmInfo {
    /// The SM's architectural id.
    pub sm: SmId,
    /// Global TPC id.
    pub tpc: TpcId,
    /// Global CPC id.
    pub cpc: CpcId,
    /// GPC id.
    pub gpc: GpcId,
    /// Die partition.
    pub partition: PartitionId,
    /// Index of this SM within its TPC (0 or 1).
    pub lane_in_tpc: u32,
    /// Index of this SM's TPC within its GPC.
    pub tpc_in_gpc: u32,
    /// Index of this SM's CPC within its GPC.
    pub cpc_in_gpc: u32,
}

/// Fully-resolved location of one L2 slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceInfo {
    /// The slice id as enumerated by the profiler.
    pub slice: SliceId,
    /// Memory partition this slice belongs to.
    pub mp: MpId,
    /// Die partition of the memory partition.
    pub partition: PartitionId,
    /// Index of this slice within its MP.
    pub index_in_mp: u32,
}

/// The immutable, fully-resolved GPU hierarchy.
///
/// Built from a [`HierarchySpec`] via [`Hierarchy::build`]; all lookups are
/// O(1) table reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hierarchy {
    spec: HierarchySpec,
    sms: Vec<SmInfo>,
    slices: Vec<SliceInfo>,
    gpc_sms: Vec<Vec<SmId>>,
    cpc_sms: Vec<Vec<SmId>>,
    tpc_sms: Vec<Vec<SmId>>,
    mp_slices: Vec<Vec<SliceId>>,
    partition_sms: Vec<Vec<SmId>>,
    partition_slices: Vec<Vec<SliceId>>,
    partition_mps: Vec<Vec<MpId>>,
    cpc_gpc: Vec<GpcId>,
    tpc_gpc: Vec<GpcId>,
    gpc_cpcs: Vec<Vec<CpcId>>,
    num_tpcs: usize,
    num_cpcs: usize,
}

impl Hierarchy {
    /// Builds and validates a hierarchy from its spec.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildHierarchyError`] when the spec is internally
    /// inconsistent (empty levels, mismatched partition tables, or a bad SM
    /// enumeration order).
    pub fn build(spec: HierarchySpec) -> Result<Self, BuildHierarchyError> {
        Self::validate(&spec)?;

        let num_gpcs = spec.gpc_cpc_tpcs.len();

        // Assign global CPC and TPC ids GPC-major, irrespective of SM
        // enumeration (these are structural, not architectural, ids).
        let mut cpc_gpc = Vec::new();
        let mut tpc_gpc = Vec::new();
        let mut gpc_cpcs: Vec<Vec<CpcId>> = vec![Vec::new(); num_gpcs];
        // (gpc, cpc_in_gpc, tpc_in_gpc) for each global tpc, in gpc-major order.
        let mut tpc_slots: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_gpcs];
        for (g, cpcs) in spec.gpc_cpc_tpcs.iter().enumerate() {
            let mut tpc_in_gpc = 0u32;
            for (c, &tpcs) in cpcs.iter().enumerate() {
                let cpc = CpcId::new(cpc_gpc.len() as u32);
                cpc_gpc.push(GpcId::new(g as u32));
                gpc_cpcs[g].push(cpc);
                for _ in 0..tpcs {
                    tpc_gpc.push(GpcId::new(g as u32));
                    tpc_slots[g].push((c as u32, tpc_in_gpc));
                    tpc_in_gpc += 1;
                }
            }
        }
        let num_tpcs = tpc_gpc.len();
        let num_cpcs = cpc_gpc.len();

        // Global tpc id of the `k`-th tpc of gpc `g`.
        let mut gpc_tpc_base = vec![0usize; num_gpcs];
        {
            let mut acc = 0usize;
            for (g, base) in gpc_tpc_base.iter_mut().enumerate() {
                *base = acc;
                acc += tpc_slots[g].len();
            }
        }

        // Enumerate SMs.
        let sms_per_tpc = spec.sms_per_tpc;
        let num_sms = num_tpcs * sms_per_tpc as usize;
        let mut sms: Vec<Option<SmInfo>> = vec![None; num_sms];
        let mut next_sm = 0u32;
        let assign_tpc = |sms: &mut Vec<Option<SmInfo>>, g: usize, k: usize, next: &mut u32| {
            let (cpc_in_gpc, tpc_in_gpc) = tpc_slots[g][k];
            let tpc = TpcId::new((gpc_tpc_base[g] + k) as u32);
            let cpc = gpc_cpcs[g][cpc_in_gpc as usize];
            for lane in 0..sms_per_tpc {
                let sm = SmId::new(*next);
                *next += 1;
                sms[sm.index()] = Some(SmInfo {
                    sm,
                    tpc,
                    cpc,
                    gpc: GpcId::new(g as u32),
                    partition: spec.gpc_partition[g],
                    lane_in_tpc: lane,
                    tpc_in_gpc,
                    cpc_in_gpc,
                });
            }
        };

        match &spec.sm_enumeration {
            SmEnumeration::GpcMajor => {
                for (g, slots) in tpc_slots.iter().enumerate() {
                    for k in 0..slots.len() {
                        assign_tpc(&mut sms, g, k, &mut next_sm);
                    }
                }
            }
            SmEnumeration::RoundRobinTpc { gpc_order } => {
                let mut round = 0usize;
                while (next_sm as usize) < num_sms {
                    for &g in gpc_order {
                        let g = g.index();
                        if round < tpc_slots[g].len() {
                            assign_tpc(&mut sms, g, round, &mut next_sm);
                        }
                    }
                    round += 1;
                }
            }
        }
        let sms: Vec<SmInfo> = sms
            .into_iter()
            .map(|s| s.expect("all sms assigned"))
            .collect();

        // Slices are enumerated MP-major; MPs are ordered so that partition 0
        // owns the first block of slice ids (paper Fig. 12: A100 slices 0-39
        // sit on the left partition).
        let mut slices = Vec::with_capacity((spec.num_mps * spec.slices_per_mp) as usize);
        for mp in 0..spec.num_mps {
            for s in 0..spec.slices_per_mp {
                slices.push(SliceInfo {
                    slice: SliceId::new(mp * spec.slices_per_mp + s),
                    mp: MpId::new(mp),
                    partition: spec.mp_partition[mp as usize],
                    index_in_mp: s,
                });
            }
        }

        // Reverse tables.
        let mut gpc_sms = vec![Vec::new(); num_gpcs];
        let mut cpc_sms = vec![Vec::new(); num_cpcs];
        let mut tpc_sms = vec![Vec::new(); num_tpcs];
        let mut partition_sms = vec![Vec::new(); spec.num_partitions as usize];
        for info in &sms {
            gpc_sms[info.gpc.index()].push(info.sm);
            cpc_sms[info.cpc.index()].push(info.sm);
            tpc_sms[info.tpc.index()].push(info.sm);
            partition_sms[info.partition.index()].push(info.sm);
        }
        let mut mp_slices = vec![Vec::new(); spec.num_mps as usize];
        let mut partition_slices = vec![Vec::new(); spec.num_partitions as usize];
        let mut partition_mps = vec![Vec::new(); spec.num_partitions as usize];
        for info in &slices {
            mp_slices[info.mp.index()].push(info.slice);
            partition_slices[info.partition.index()].push(info.slice);
        }
        for (mp, &partition) in spec.mp_partition.iter().enumerate() {
            partition_mps[partition.index()].push(MpId::new(mp as u32));
        }

        Ok(Self {
            spec,
            sms,
            slices,
            gpc_sms,
            cpc_sms,
            tpc_sms,
            mp_slices,
            partition_sms,
            partition_slices,
            partition_mps,
            cpc_gpc,
            tpc_gpc,
            gpc_cpcs,
            num_tpcs,
            num_cpcs,
        })
    }

    fn validate(spec: &HierarchySpec) -> Result<(), BuildHierarchyError> {
        if spec.gpc_cpc_tpcs.is_empty() {
            return Err(BuildHierarchyError::Empty("gpcs"));
        }
        if spec
            .gpc_cpc_tpcs
            .iter()
            .any(|cpcs| cpcs.is_empty() || cpcs.iter().sum::<u32>() == 0)
        {
            return Err(BuildHierarchyError::Empty("tpcs in some gpc"));
        }
        if spec.sms_per_tpc == 0 {
            return Err(BuildHierarchyError::Empty("sms per tpc"));
        }
        if spec.num_mps == 0 || spec.slices_per_mp == 0 {
            return Err(BuildHierarchyError::Empty("l2 slices"));
        }
        if spec.num_partitions == 0 {
            return Err(BuildHierarchyError::Empty("partitions"));
        }
        if spec.gpc_partition.len() != spec.gpc_cpc_tpcs.len() {
            return Err(BuildHierarchyError::PartitionTableLength {
                table: "gpc_partition",
                expected: spec.gpc_cpc_tpcs.len(),
                found: spec.gpc_partition.len(),
            });
        }
        if spec.mp_partition.len() != spec.num_mps as usize {
            return Err(BuildHierarchyError::PartitionTableLength {
                table: "mp_partition",
                expected: spec.num_mps as usize,
                found: spec.mp_partition.len(),
            });
        }
        for &p in spec.gpc_partition.iter().chain(&spec.mp_partition) {
            if p.index() >= spec.num_partitions as usize {
                return Err(BuildHierarchyError::PartitionOutOfRange {
                    partition: p,
                    num_partitions: spec.num_partitions,
                });
            }
        }
        if let SmEnumeration::RoundRobinTpc { gpc_order } = &spec.sm_enumeration {
            let mut seen = vec![false; spec.gpc_cpc_tpcs.len()];
            if gpc_order.len() != seen.len() {
                return Err(BuildHierarchyError::BadEnumerationOrder);
            }
            for &g in gpc_order {
                if g.index() >= seen.len() || seen[g.index()] {
                    return Err(BuildHierarchyError::BadEnumerationOrder);
                }
                seen[g.index()] = true;
            }
        }
        Ok(())
    }

    /// The spec this hierarchy was built from.
    pub fn spec(&self) -> &HierarchySpec {
        &self.spec
    }

    /// Number of SMs.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// Number of TPCs.
    pub fn num_tpcs(&self) -> usize {
        self.num_tpcs
    }

    /// Number of CPCs (equals the GPC count on devices without a CPC level).
    pub fn num_cpcs(&self) -> usize {
        self.num_cpcs
    }

    /// Number of GPCs.
    pub fn num_gpcs(&self) -> usize {
        self.gpc_sms.len()
    }

    /// Number of die partitions.
    pub fn num_partitions(&self) -> usize {
        self.spec.num_partitions as usize
    }

    /// Number of L2 slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Number of memory partitions.
    pub fn num_mps(&self) -> usize {
        self.mp_slices.len()
    }

    /// Whether the device exposes a CPC level distinct from GPCs (i.e. some
    /// GPC has more than one CPC).
    pub fn has_cpc_level(&self) -> bool {
        self.gpc_cpcs.iter().any(|c| c.len() > 1)
    }

    /// Location of `sm`.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range; use [`Hierarchy::num_sms`] to bound ids.
    pub fn sm(&self, sm: SmId) -> &SmInfo {
        &self.sms[sm.index()]
    }

    /// Location of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn slice(&self, slice: SliceId) -> &SliceInfo {
        &self.slices[slice.index()]
    }

    /// All SMs, in `smid` order.
    pub fn sms(&self) -> &[SmInfo] {
        &self.sms
    }

    /// All slices, in slice-id order.
    pub fn slices(&self) -> &[SliceInfo] {
        &self.slices
    }

    /// SM ids belonging to `gpc`, in ascending order of `smid`.
    pub fn sms_in_gpc(&self, gpc: GpcId) -> &[SmId] {
        &self.gpc_sms[gpc.index()]
    }

    /// SM ids belonging to `cpc`.
    pub fn sms_in_cpc(&self, cpc: CpcId) -> &[SmId] {
        &self.cpc_sms[cpc.index()]
    }

    /// SM ids belonging to `tpc`.
    pub fn sms_in_tpc(&self, tpc: TpcId) -> &[SmId] {
        &self.tpc_sms[tpc.index()]
    }

    /// SM ids on die partition `p`.
    pub fn sms_in_partition(&self, p: PartitionId) -> &[SmId] {
        &self.partition_sms[p.index()]
    }

    /// Slice ids belonging to `mp`.
    pub fn slices_in_mp(&self, mp: MpId) -> &[SliceId] {
        &self.mp_slices[mp.index()]
    }

    /// Slice ids on die partition `p`.
    pub fn slices_in_partition(&self, p: PartitionId) -> &[SliceId] {
        &self.partition_slices[p.index()]
    }

    /// MP ids on die partition `p`.
    pub fn mps_in_partition(&self, p: PartitionId) -> &[MpId] {
        &self.partition_mps[p.index()]
    }

    /// CPC ids belonging to `gpc`.
    pub fn cpcs_in_gpc(&self, gpc: GpcId) -> &[CpcId] {
        &self.gpc_cpcs[gpc.index()]
    }

    /// GPC that contains `cpc`.
    pub fn gpc_of_cpc(&self, cpc: CpcId) -> GpcId {
        self.cpc_gpc[cpc.index()]
    }

    /// GPC that contains `tpc`.
    pub fn gpc_of_tpc(&self, tpc: TpcId) -> GpcId {
        self.tpc_gpc[tpc.index()]
    }

    /// Die partition of `gpc`.
    pub fn partition_of_gpc(&self, gpc: GpcId) -> PartitionId {
        self.spec.gpc_partition[gpc.index()]
    }

    /// Die partition of `mp`.
    pub fn partition_of_mp(&self, mp: MpId) -> PartitionId {
        self.spec.mp_partition[mp.index()]
    }

    /// Whether a request from `sm` to `slice` crosses the central
    /// inter-partition interconnect.
    pub fn crosses_partition(&self, sm: SmId, slice: SliceId) -> bool {
        self.sm(sm).partition != self.slice(slice).partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_partition_spec() -> HierarchySpec {
        HierarchySpec {
            gpc_cpc_tpcs: vec![vec![2, 2], vec![2, 2], vec![2, 2], vec![2, 2]],
            sms_per_tpc: 2,
            gpc_partition: vec![
                PartitionId::new(0),
                PartitionId::new(0),
                PartitionId::new(1),
                PartitionId::new(1),
            ],
            num_partitions: 2,
            num_mps: 4,
            slices_per_mp: 4,
            mp_partition: vec![
                PartitionId::new(0),
                PartitionId::new(0),
                PartitionId::new(1),
                PartitionId::new(1),
            ],
            sm_enumeration: SmEnumeration::RoundRobinTpc {
                gpc_order: vec![GpcId::new(0), GpcId::new(2), GpcId::new(1), GpcId::new(3)],
            },
        }
    }

    #[test]
    fn counts_are_consistent() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        assert_eq!(h.num_gpcs(), 4);
        assert_eq!(h.num_cpcs(), 8);
        assert_eq!(h.num_tpcs(), 16);
        assert_eq!(h.num_sms(), 32);
        assert_eq!(h.num_slices(), 16);
        assert_eq!(h.num_mps(), 4);
        assert_eq!(h.num_partitions(), 2);
        assert!(h.has_cpc_level());
    }

    #[test]
    fn round_robin_enumeration_interleaves_partitions() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        // SM0/1 are the first TPC of GPC0 (partition 0); SM2/3 the first TPC of
        // GPC2 (partition 1) — reproducing the paper's Fig. 12 premise that
        // SM0 and SM2 sit on different partitions.
        assert_eq!(h.sm(SmId::new(0)).partition, PartitionId::new(0));
        assert_eq!(h.sm(SmId::new(2)).partition, PartitionId::new(1));
        assert_eq!(h.sm(SmId::new(0)).tpc, h.sm(SmId::new(1)).tpc);
        assert_ne!(h.sm(SmId::new(1)).tpc, h.sm(SmId::new(2)).tpc);
    }

    #[test]
    fn gpc_major_enumeration_is_contiguous() {
        let mut spec = two_partition_spec();
        spec.sm_enumeration = SmEnumeration::GpcMajor;
        let h = Hierarchy::build(spec).unwrap();
        for sm in 0..8 {
            assert_eq!(h.sm(SmId::new(sm)).gpc, GpcId::new(0));
        }
        assert_eq!(h.sm(SmId::new(8)).gpc, GpcId::new(1));
    }

    #[test]
    fn reverse_tables_match_forward_lookup() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        for gpc in GpcId::range(h.num_gpcs()) {
            for &sm in h.sms_in_gpc(gpc) {
                assert_eq!(h.sm(sm).gpc, gpc);
            }
        }
        let total: usize = GpcId::range(h.num_gpcs())
            .map(|g| h.sms_in_gpc(g).len())
            .sum();
        assert_eq!(total, h.num_sms());
        for mp in MpId::range(h.num_mps()) {
            for &s in h.slices_in_mp(mp) {
                assert_eq!(h.slice(s).mp, mp);
            }
        }
    }

    #[test]
    fn slices_are_partition_major() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        // First half of slice ids on partition 0, second half on partition 1.
        for s in 0..8 {
            assert_eq!(h.slice(SliceId::new(s)).partition, PartitionId::new(0));
        }
        for s in 8..16 {
            assert_eq!(h.slice(SliceId::new(s)).partition, PartitionId::new(1));
        }
    }

    #[test]
    fn crosses_partition_detects_remote_slices() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        assert!(!h.crosses_partition(SmId::new(0), SliceId::new(0)));
        assert!(h.crosses_partition(SmId::new(0), SliceId::new(15)));
    }

    #[test]
    fn cpc_structure_is_recorded() {
        let h = Hierarchy::build(two_partition_spec()).unwrap();
        let cpcs = h.cpcs_in_gpc(GpcId::new(0));
        assert_eq!(cpcs.len(), 2);
        assert_eq!(h.gpc_of_cpc(cpcs[0]), GpcId::new(0));
        assert_eq!(h.sms_in_cpc(cpcs[0]).len(), 4);
    }

    #[test]
    fn rejects_empty_spec() {
        let mut spec = two_partition_spec();
        spec.gpc_cpc_tpcs.clear();
        spec.gpc_partition.clear();
        assert!(matches!(
            Hierarchy::build(spec),
            Err(BuildHierarchyError::Empty("gpcs"))
        ));
    }

    #[test]
    fn rejects_mismatched_partition_table() {
        let mut spec = two_partition_spec();
        spec.gpc_partition.pop();
        assert!(matches!(
            Hierarchy::build(spec),
            Err(BuildHierarchyError::PartitionTableLength { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let mut spec = two_partition_spec();
        spec.mp_partition[0] = PartitionId::new(9);
        assert!(matches!(
            Hierarchy::build(spec),
            Err(BuildHierarchyError::PartitionOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_enumeration_order() {
        let mut spec = two_partition_spec();
        spec.sm_enumeration = SmEnumeration::RoundRobinTpc {
            gpc_order: vec![GpcId::new(0), GpcId::new(0), GpcId::new(1), GpcId::new(2)],
        };
        assert!(matches!(
            Hierarchy::build(spec),
            Err(BuildHierarchyError::BadEnumerationOrder)
        ));
    }

    #[test]
    fn uneven_gpcs_enumerate_all_sms() {
        let spec = HierarchySpec {
            gpc_cpc_tpcs: vec![vec![3], vec![1], vec![2]],
            sms_per_tpc: 2,
            gpc_partition: vec![PartitionId::new(0); 3],
            num_partitions: 1,
            num_mps: 2,
            slices_per_mp: 2,
            mp_partition: vec![PartitionId::new(0); 2],
            sm_enumeration: SmEnumeration::RoundRobinTpc {
                gpc_order: vec![GpcId::new(0), GpcId::new(1), GpcId::new(2)],
            },
        };
        let h = Hierarchy::build(spec).unwrap();
        assert_eq!(h.num_sms(), 12);
        // GPC1 runs out after one TPC; later rounds skip it.
        let g: Vec<_> = (0..12).map(|i| h.sm(SmId::new(i)).gpc.index()).collect();
        assert_eq!(g, vec![0, 0, 1, 1, 2, 2, 0, 0, 2, 2, 0, 0]);
    }
}
