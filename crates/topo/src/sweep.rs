//! Floorsweeping: enable-masks over a full-die hierarchy.
//!
//! Shipping GPUs are not pristine silicon. Dies are *floor-swept*: TPCs,
//! whole GPCs and memory partitions that fail test are fused off, and the
//! part is sold as a smaller SKU (the A100 enables 108 of the GA100's 128
//! SMs; L2 slices and memory partitions are fused off per SKU). A
//! [`FloorSweep`] describes which units of a full-die [`HierarchySpec`] are
//! disabled; [`crate::GpuSpec::floorswept`] applies it, producing the spec of
//! the harvested device. Everything downstream (floorplan, latency model,
//! address hashing) then operates on the surviving units only, exactly as the
//! paper's measurements do on real binned parts.

use crate::hierarchy::HierarchySpec;
use crate::hierarchy::SmEnumeration;
use crate::ids::GpcId;
use serde::{Deserialize, Serialize};

/// Units of a full-die hierarchy fused off by the manufacturer (or by a fault
/// plan). Indices always refer to the *pre-sweep* hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorSweep {
    /// GPC ids removed entirely (all their TPCs are fused off).
    pub disabled_gpcs: Vec<u32>,
    /// `(gpc, tpc_in_gpc)` pairs fused off, with `tpc_in_gpc` counted
    /// GPC-major across the GPC's CPCs in pre-sweep order.
    pub disabled_tpcs: Vec<(u32, u32)>,
    /// Memory partitions fused off (their L2 slices and DRAM vanish).
    pub disabled_mps: Vec<u32>,
}

impl FloorSweep {
    /// A sweep that disables nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the sweep disables anything at all.
    pub fn is_empty(&self) -> bool {
        self.disabled_gpcs.is_empty()
            && self.disabled_tpcs.is_empty()
            && self.disabled_mps.is_empty()
    }

    /// The production A100 binning: the full GA100 die has 8 GPCs × 8 TPCs
    /// (128 SMs) and 12 memory partitions; the shipping SKU fuses one TPC off
    /// GPCs 0–5, two TPCs off GPCs 6–7 (→ 108 SMs) and one memory partition
    /// per die partition (→ 10 MPs, 80 L2 slices).
    pub fn a100_sku() -> Self {
        let mut disabled_tpcs: Vec<(u32, u32)> = (0..6).map(|g| (g, 7)).collect();
        disabled_tpcs.extend([(6, 7), (6, 6), (7, 7), (7, 6)]);
        Self {
            disabled_gpcs: Vec::new(),
            disabled_tpcs,
            disabled_mps: vec![5, 11],
        }
    }

    /// Total number of units this sweep disables (GPCs + TPCs + MPs).
    pub fn num_disabled(&self) -> usize {
        self.disabled_gpcs.len() + self.disabled_tpcs.len() + self.disabled_mps.len()
    }
}

/// Errors applying a [`FloorSweep`] to a hierarchy spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A disabled GPC id is not in the hierarchy.
    GpcOutOfRange(u32),
    /// A disabled TPC does not exist in its GPC.
    TpcOutOfRange {
        /// GPC named by the sweep entry.
        gpc: u32,
        /// TPC index within the GPC.
        tpc: u32,
    },
    /// A disabled MP id is not in the hierarchy.
    MpOutOfRange(u32),
    /// The same unit is disabled twice.
    Duplicate(&'static str),
    /// The sweep removes every unit of some level, or strips a die partition
    /// of all its GPCs or MPs — no usable device remains.
    NothingLeft(&'static str),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GpcOutOfRange(g) => write!(f, "swept gpc {g} does not exist"),
            Self::TpcOutOfRange { gpc, tpc } => {
                write!(f, "swept tpc {tpc} does not exist in gpc {gpc}")
            }
            Self::MpOutOfRange(m) => write!(f, "swept mp {m} does not exist"),
            Self::Duplicate(what) => write!(f, "duplicate swept {what}"),
            Self::NothingLeft(what) => write!(f, "sweep leaves no {what}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Applies `sweep` to `spec`, returning the harvested hierarchy spec.
///
/// TPCs are removed from their containing CPC (a CPC swept empty disappears);
/// a GPC swept empty — explicitly or by losing all its TPCs — is removed and
/// the remaining GPCs are renumbered, including inside the SM-enumeration
/// order. Disabled MPs take their L2 slices with them.
///
/// # Errors
///
/// Returns [`SweepError`] for out-of-range or duplicate entries, and when the
/// sweep leaves any die partition without GPCs or MPs.
pub fn apply_sweep(spec: &HierarchySpec, sweep: &FloorSweep) -> Result<HierarchySpec, SweepError> {
    let num_gpcs = spec.gpc_cpc_tpcs.len() as u32;

    // Validate GPC entries.
    let mut gpc_gone = vec![false; num_gpcs as usize];
    for &g in &sweep.disabled_gpcs {
        if g >= num_gpcs {
            return Err(SweepError::GpcOutOfRange(g));
        }
        if gpc_gone[g as usize] {
            return Err(SweepError::Duplicate("gpc"));
        }
        gpc_gone[g as usize] = true;
    }

    // Remove TPCs. Work on a per-GPC flat TPC count view first.
    let mut cpc_tpcs: Vec<Vec<u32>> = spec.gpc_cpc_tpcs.clone();
    let mut seen_tpc = std::collections::HashSet::new();
    for &(g, t) in &sweep.disabled_tpcs {
        if g >= num_gpcs {
            return Err(SweepError::GpcOutOfRange(g));
        }
        if !seen_tpc.insert((g, t)) {
            return Err(SweepError::Duplicate("tpc"));
        }
        if gpc_gone[g as usize] {
            // Redundant with a whole-GPC sweep; tolerate silently.
            continue;
        }
        // Locate the CPC containing pre-sweep TPC index `t` of GPC `g`.
        let pre_sweep = &spec.gpc_cpc_tpcs[g as usize];
        let mut acc = 0u32;
        let mut found = None;
        for (c, &n) in pre_sweep.iter().enumerate() {
            if t < acc + n {
                found = Some(c);
                break;
            }
            acc += n;
        }
        let Some(c) = found else {
            return Err(SweepError::TpcOutOfRange { gpc: g, tpc: t });
        };
        if cpc_tpcs[g as usize][c] == 0 {
            return Err(SweepError::NothingLeft("tpcs in a swept cpc"));
        }
        cpc_tpcs[g as usize][c] -= 1;
    }

    // Drop emptied CPCs; mark GPCs emptied by TPC sweeps as gone.
    for (g, cpcs) in cpc_tpcs.iter_mut().enumerate() {
        cpcs.retain(|&n| n > 0);
        if cpcs.is_empty() {
            gpc_gone[g] = true;
        }
    }

    // Rebuild the GPC tables, renumbering survivors by rank.
    let mut new_id = vec![None; num_gpcs as usize];
    let mut gpc_cpc_tpcs = Vec::new();
    let mut gpc_partition = Vec::new();
    for g in 0..num_gpcs as usize {
        if gpc_gone[g] {
            continue;
        }
        new_id[g] = Some(GpcId::new(gpc_cpc_tpcs.len() as u32));
        gpc_cpc_tpcs.push(cpc_tpcs[g].clone());
        gpc_partition.push(spec.gpc_partition[g]);
    }
    if gpc_cpc_tpcs.is_empty() {
        return Err(SweepError::NothingLeft("gpcs"));
    }

    let sm_enumeration = match &spec.sm_enumeration {
        SmEnumeration::GpcMajor => SmEnumeration::GpcMajor,
        SmEnumeration::RoundRobinTpc { gpc_order } => SmEnumeration::RoundRobinTpc {
            gpc_order: gpc_order.iter().filter_map(|g| new_id[g.index()]).collect(),
        },
    };

    // Remove MPs.
    let mut mp_gone = vec![false; spec.num_mps as usize];
    for &m in &sweep.disabled_mps {
        if m >= spec.num_mps {
            return Err(SweepError::MpOutOfRange(m));
        }
        if mp_gone[m as usize] {
            return Err(SweepError::Duplicate("mp"));
        }
        mp_gone[m as usize] = true;
    }
    let mp_partition: Vec<_> = spec
        .mp_partition
        .iter()
        .zip(&mp_gone)
        .filter(|(_, &gone)| !gone)
        .map(|(&p, _)| p)
        .collect();
    if mp_partition.is_empty() {
        return Err(SweepError::NothingLeft("mps"));
    }

    // Every die partition must keep at least one GPC and one MP, or the
    // latency/bandwidth model has nothing to anchor on that side of the die.
    for p in 0..spec.num_partitions {
        if !gpc_partition.iter().any(|q| q.index() == p as usize) {
            return Err(SweepError::NothingLeft("gpcs on some die partition"));
        }
        if !mp_partition.iter().any(|q| q.index() == p as usize) {
            return Err(SweepError::NothingLeft("mps on some die partition"));
        }
    }

    Ok(HierarchySpec {
        gpc_cpc_tpcs,
        sms_per_tpc: spec.sms_per_tpc,
        gpc_partition,
        num_partitions: spec.num_partitions,
        num_mps: mp_partition.len() as u32,
        slices_per_mp: spec.slices_per_mp,
        mp_partition,
        sm_enumeration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    #[test]
    fn empty_sweep_is_identity() {
        let spec = GpuSpec::v100().hierarchy;
        let swept = apply_sweep(&spec, &FloorSweep::none()).unwrap();
        assert_eq!(spec, swept);
    }

    #[test]
    fn a100_sku_sweep_recovers_shipping_part() {
        let full = GpuSpec::a100_full();
        let swept = apply_sweep(&full.hierarchy, &FloorSweep::a100_sku()).unwrap();
        // The harvested die is exactly the shipping A100's hierarchy.
        assert_eq!(swept, GpuSpec::a100().hierarchy);
    }

    #[test]
    fn tpc_sweep_decrements_the_right_cpc() {
        let spec = GpuSpec::h100().hierarchy; // 3 CPCs per GPC
        let sweep = FloorSweep {
            disabled_tpcs: vec![(0, 0), (0, 8)], // first CPC and last CPC
            ..FloorSweep::none()
        };
        let swept = apply_sweep(&spec, &sweep).unwrap();
        assert_eq!(swept.gpc_cpc_tpcs[0].iter().sum::<u32>(), 7);
        assert_eq!(swept.gpc_cpc_tpcs[0][0], spec.gpc_cpc_tpcs[0][0] - 1);
    }

    #[test]
    fn whole_gpc_sweep_renumbers_enumeration_order() {
        let spec = GpuSpec::a100().hierarchy;
        let sweep = FloorSweep {
            disabled_gpcs: vec![1],
            ..FloorSweep::none()
        };
        let swept = apply_sweep(&spec, &sweep).unwrap();
        assert_eq!(swept.gpc_cpc_tpcs.len(), 7);
        if let SmEnumeration::RoundRobinTpc { gpc_order } = &swept.sm_enumeration {
            assert_eq!(gpc_order.len(), 7);
            let mut ids: Vec<usize> = gpc_order.iter().map(|g| g.index()).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..7).collect::<Vec<_>>());
        } else {
            panic!("enumeration kind must be preserved");
        }
        // Still buildable.
        crate::Hierarchy::build(swept).unwrap();
    }

    #[test]
    fn out_of_range_and_duplicates_are_rejected() {
        let spec = GpuSpec::v100().hierarchy;
        let bad_gpc = FloorSweep {
            disabled_gpcs: vec![9],
            ..FloorSweep::none()
        };
        assert_eq!(
            apply_sweep(&spec, &bad_gpc),
            Err(SweepError::GpcOutOfRange(9))
        );
        let bad_tpc = FloorSweep {
            disabled_tpcs: vec![(0, 99)],
            ..FloorSweep::none()
        };
        assert_eq!(
            apply_sweep(&spec, &bad_tpc),
            Err(SweepError::TpcOutOfRange { gpc: 0, tpc: 99 })
        );
        let dup = FloorSweep {
            disabled_mps: vec![2, 2],
            ..FloorSweep::none()
        };
        assert_eq!(apply_sweep(&spec, &dup), Err(SweepError::Duplicate("mp")));
    }

    #[test]
    fn stripping_a_partition_is_rejected() {
        let spec = GpuSpec::a100().hierarchy; // MPs 0-4 on partition 0
        let sweep = FloorSweep {
            disabled_mps: vec![0, 1, 2, 3, 4],
            ..FloorSweep::none()
        };
        assert_eq!(
            apply_sweep(&spec, &sweep),
            Err(SweepError::NothingLeft("mps on some die partition"))
        );
    }

    #[test]
    fn sweeping_every_tpc_of_a_gpc_removes_the_gpc() {
        let spec = GpuSpec::v100().hierarchy; // GPC 5 has 6 TPCs
        let sweep = FloorSweep {
            disabled_tpcs: (0..6).map(|t| (5, t)).collect(),
            ..FloorSweep::none()
        };
        let swept = apply_sweep(&spec, &sweep).unwrap();
        assert_eq!(swept.gpc_cpc_tpcs.len(), 5);
        crate::Hierarchy::build(swept).unwrap();
    }
}
