//! Typed identifiers for every level of the GPU hierarchy.
//!
//! The paper's methodology constantly juggles indices of different kinds (SM
//! ids from the `smid` register, L2 slice ids from the profiler, GPC/MP
//! groupings, …). Newtypes keep those index spaces statically distinct so that
//! an [`SmId`] can never be used where a [`SliceId`] is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// ```
            /// # use gnoc_topo::SmId;
            /// let sm = SmId::new(24);
            /// assert_eq!(sm.index(), 24);
            /// ```
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index of this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Iterates over the first `n` ids, `0..n`.
            ///
            /// ```
            /// # use gnoc_topo::GpcId;
            /// let gpcs: Vec<GpcId> = GpcId::range(3).collect();
            /// assert_eq!(gpcs, [GpcId::new(0), GpcId::new(1), GpcId::new(2)]);
            /// ```
            pub fn range(n: usize) -> impl Iterator<Item = Self> + Clone {
                (0..n as u32).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// A streaming multiprocessor (core), as reported by the `smid` register.
    SmId,
    "SM"
);
define_id!(
    /// A texture processing cluster: two SMs sharing a NoC injection port.
    TpcId,
    "TPC"
);
define_id!(
    /// A compute processing cluster — the intermediate hierarchy level between
    /// TPC and GPC that the paper infers on H100 (Observation #5).
    CpcId,
    "CPC"
);
define_id!(
    /// A graphics processing cluster: a group of TPCs sharing GPC NoC ports.
    GpcId,
    "GPC"
);
define_id!(
    /// A GPU "partition": recent large GPUs (A100, H100) are split into a left
    /// and a right half joined by a central interconnect (Section III-C).
    PartitionId,
    "P"
);
define_id!(
    /// An L2 cache slice, as enumerated by the (non-aggregated) profiler.
    SliceId,
    "L2S"
);
define_id!(
    /// A memory partition: a group of L2 slices plus a memory controller.
    MpId,
    "MP"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_hardware_style_tags() {
        assert_eq!(SmId::new(24).to_string(), "SM24");
        assert_eq!(SliceId::new(7).to_string(), "L2S7");
        assert_eq!(MpId::new(3).to_string(), "MP3");
        assert_eq!(PartitionId::new(1).to_string(), "P1");
        assert_eq!(CpcId::new(2).to_string(), "CPC2");
        assert_eq!(TpcId::new(5).to_string(), "TPC5");
        assert_eq!(GpcId::new(0).to_string(), "GPC0");
    }

    #[test]
    fn round_trips_through_u32() {
        let id = GpcId::from(4u32);
        assert_eq!(u32::from(id), 4);
        assert_eq!(id.index(), 4);
    }

    #[test]
    fn range_yields_consecutive_ids() {
        let slices: Vec<SliceId> = SliceId::range(4).collect();
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[3], SliceId::new(3));
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SmId::new(3) < SmId::new(10));
        let mut v = vec![SmId::new(2), SmId::new(0), SmId::new(1)];
        v.sort();
        assert_eq!(v, [SmId::new(0), SmId::new(1), SmId::new(2)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SmId::default(), SmId::new(0));
    }
}
