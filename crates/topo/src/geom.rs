//! Planar geometry used by the floorplan model.
//!
//! All coordinates are in millimetres on the die. The latency model in
//! `gnoc-engine` converts wire distance into cycles, so only *relative*
//! positions matter for reproducing the paper's non-uniformity observations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point on the die, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal position in mm (0 at the left die edge).
    pub x: f64,
    /// Vertical position in mm (0 at the bottom die edge).
    pub y: f64,
}

impl Point {
    /// Creates a point from `x`/`y` millimetre coordinates.
    ///
    /// ```
    /// # use gnoc_topo::Point;
    /// let p = Point::new(3.0, 4.0);
    /// assert_eq!(p.manhattan(Point::new(0.0, 0.0)), 7.0);
    /// ```
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// On-chip wires are routed rectilinearly, so Manhattan distance is the
    /// natural proxy for wire length between two blocks.
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    pub fn euclidean(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// The midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A rectangle on the die, used for block outlines in floorplan rendering.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn new(origin: Point, width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0,
            "rectangle dimensions must be non-negative"
        );
        Self {
            min: origin,
            max: Point::new(origin.x + width, origin.y + height),
        }
    }

    /// The centre of the rectangle.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Width of the rectangle in mm.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle in mm.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (or on the boundary of) the rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -1.0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 6.0);
    }

    #[test]
    fn euclidean_never_exceeds_manhattan() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.euclidean(b) <= a.manhattan(b));
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 6.0));
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn point_arithmetic() {
        let s = Point::new(1.0, 2.0) + Point::new(3.0, 4.0);
        assert_eq!(s, Point::new(4.0, 6.0));
        let d = Point::new(3.0, 4.0) - Point::new(1.0, 2.0);
        assert_eq!(d, Point::new(2.0, 2.0));
    }

    #[test]
    fn rect_center_and_contains() {
        let r = Rect::new(Point::new(1.0, 1.0), 2.0, 4.0);
        assert_eq!(r.center(), Point::new(2.0, 3.0));
        assert!(r.contains(Point::new(2.9, 4.9)));
        assert!(!r.contains(Point::new(3.1, 2.0)));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rect_rejects_negative_size() {
        let _ = Rect::new(Point::new(0.0, 0.0), -1.0, 1.0);
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }
}
