//! # gnoc-topo
//!
//! GPU hierarchy and floorplan geometry for the `gnoc` workspace — the
//! structural substrate of the paper *Uncovering Real GPU NoC Characteristics*
//! (MICRO 2024).
//!
//! A GPU is described in three layers:
//!
//! - [`GpuSpec`] — declarative device description (Table I data) with the
//!   three paper presets: [`GpuSpec::v100`], [`GpuSpec::a100`],
//!   [`GpuSpec::h100`];
//! - [`Hierarchy`] — the resolved SM/TPC/CPC/GPC/partition and
//!   slice/MP/partition containment tables;
//! - [`Floorplan`] — physical block placement on the die, from which the
//!   engine derives non-uniform wire latency.
//!
//! ```
//! use gnoc_topo::{GpuSpec, SmId, SliceId};
//!
//! let gpu = GpuSpec::v100();
//! let hierarchy = gpu.hierarchy();
//! let plan = gpu.floorplan();
//!
//! assert_eq!(hierarchy.num_sms(), 80);
//! // Wire distance between a core and an L2 slice is what makes latency
//! // non-uniform (paper Observation #1).
//! let d = plan.wire_distance(SmId::new(24), SliceId::new(0));
//! assert!(d > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fabric;
mod floorplan;
mod geom;
mod hierarchy;
mod ids;
mod spec;
mod sweep;

pub use fabric::FabricTopology;
pub use floorplan::Floorplan;
pub use geom::{Point, Rect};
pub use hierarchy::{
    BuildHierarchyError, Hierarchy, HierarchySpec, SliceInfo, SmEnumeration, SmInfo,
};
pub use ids::{CpcId, GpcId, MpId, PartitionId, SliceId, SmId, TpcId};
pub use spec::{CachePolicy, Generation, GpuSpec};
pub use sweep::{apply_sweep, FloorSweep, SweepError};
