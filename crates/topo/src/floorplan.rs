//! Approximate logical floorplan of a GPU die (paper Fig. 4).
//!
//! The paper derives its latency observations from the *physical placement* of
//! SMs and L2 slices: GPCs sit in two rows along the top and bottom die edges,
//! the L2 slices and memory partitions occupy a horizontal band across the die
//! middle, and large GPUs are split into left/right partitions joined by a
//! central interconnect. [`Floorplan`] reproduces that arrangement
//! parametrically from a [`Hierarchy`] and exposes the wire distances that the
//! latency model in `gnoc-engine` converts into cycles.

use crate::geom::{Point, Rect};
use crate::hierarchy::Hierarchy;
use crate::ids::{GpcId, MpId, PartitionId, SliceId, SmId};
use serde::{Deserialize, Serialize};

/// Fraction of the die height occupied by the central L2/MP band.
const L2_BAND_FRACTION: f64 = 0.20;
/// Horizontal inset of the inter-partition hub from the partition boundary, mm.
const HUB_INSET_MM: f64 = 0.5;

/// Physical placement of every SM and L2 slice on the die.
///
/// ```
/// use gnoc_topo::GpuSpec;
///
/// let gpu = GpuSpec::v100();
/// let plan = gpu.floorplan();
/// // SMs in the same GPC are physically clustered.
/// let h = gpu.hierarchy();
/// let sms = h.sms_in_gpc(gnoc_topo::GpcId::new(0));
/// let d = plan.sm_pos(sms[0]).manhattan(plan.sm_pos(sms[1]));
/// assert!(d < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    die: Rect,
    sm_pos: Vec<Point>,
    slice_pos: Vec<Point>,
    gpc_rect: Vec<Rect>,
    mp_rect: Vec<Rect>,
    gpc_hub: Vec<Point>,
    partition_hub: Vec<Point>,
    sm_partition: Vec<PartitionId>,
    slice_partition: Vec<PartitionId>,
}

impl Floorplan {
    /// Lays out `hierarchy` on a die of `width_mm` × `height_mm`.
    ///
    /// Die partitions split the die into equal vertical stripes. Within each
    /// stripe, GPCs form two rows (bottom and top edges) and the partition's
    /// MPs/L2 slices form a band across the middle. CPCs are stacked so that
    /// CPC 0 of each GPC sits closest to the die centreline (this is what makes
    /// intra-CPC0 SM-to-SM latency the lowest in Fig. 7b).
    ///
    /// # Panics
    ///
    /// Panics if `width_mm` or `height_mm` is not strictly positive.
    pub fn layout(hierarchy: &Hierarchy, width_mm: f64, height_mm: f64) -> Self {
        assert!(
            width_mm > 0.0 && height_mm > 0.0,
            "die dimensions must be positive"
        );
        let die = Rect::new(Point::new(0.0, 0.0), width_mm, height_mm);
        let np = hierarchy.num_partitions();
        let stripe_w = width_mm / np as f64;
        let band_h = height_mm * L2_BAND_FRACTION;
        let band_y0 = (height_mm - band_h) / 2.0;
        let band_y1 = band_y0 + band_h;

        let mut gpc_rect = vec![Rect::default(); hierarchy.num_gpcs()];
        let mut gpc_hub = vec![Point::default(); hierarchy.num_gpcs()];
        let mut sm_pos = vec![Point::default(); hierarchy.num_sms()];
        let mut mp_rect = vec![Rect::default(); hierarchy.num_mps()];
        let mut slice_pos = vec![Point::default(); hierarchy.num_slices()];
        let mut partition_hub = Vec::with_capacity(np);

        for p in PartitionId::range(np) {
            let x0 = stripe_w * p.index() as f64;

            // Inter-partition hub: at the stripe edge facing the die centre.
            let hub_x = if np == 1 {
                x0 + stripe_w / 2.0
            } else if p.index() < np / 2 {
                x0 + stripe_w - HUB_INSET_MM
            } else {
                x0 + HUB_INSET_MM
            };
            partition_hub.push(Point::new(hub_x, height_mm / 2.0));

            // --- GPCs: two rows, columns left-to-right within the stripe. ---
            let gpcs: Vec<GpcId> = GpcId::range(hierarchy.num_gpcs())
                .filter(|&g| hierarchy.partition_of_gpc(g) == p)
                .collect();
            let ncols = gpcs.len().div_ceil(2).max(1);
            let col_w = stripe_w / ncols as f64;
            for (ip, &g) in gpcs.iter().enumerate() {
                let col = ip / 2;
                let bottom = ip % 2 == 0;
                let gx = x0 + col_w * col as f64;
                let (gy0, gy1) = if bottom {
                    (0.0, band_y0)
                } else {
                    (band_y1, height_mm)
                };
                let rect = Rect::new(Point::new(gx, gy0), col_w, gy1 - gy0);
                gpc_rect[g.index()] = rect;
                // SM-to-SM hub on the edge facing the die centreline.
                let hub_y = if bottom { rect.max.y } else { rect.min.y };
                gpc_hub[g.index()] = Point::new(rect.center().x, hub_y);

                Self::place_sms(hierarchy, g, rect, bottom, &mut sm_pos);
            }

            // --- MPs / L2 slices: central band, left-to-right. ---
            let mps: Vec<MpId> = hierarchy.mps_in_partition(p).to_vec();
            if !mps.is_empty() {
                let mp_w = stripe_w / mps.len() as f64;
                for (im, &mp) in mps.iter().enumerate() {
                    let rect = Rect::new(Point::new(x0 + mp_w * im as f64, band_y0), mp_w, band_h);
                    mp_rect[mp.index()] = rect;
                    // Slices sit in a single row on the band centreline:
                    // their *vertical* position is symmetric between the top
                    // and bottom GPC rows, so within-MP latency ordering is
                    // carried by the MP's internal service chain (see the
                    // engine's `slice_chain_cycles`), not by geometry.
                    let slices = hierarchy.slices_in_mp(mp);
                    let ncols = slices.len().max(1);
                    for (is, &s) in slices.iter().enumerate() {
                        let sx = rect.min.x + mp_w * (is as f64 + 0.5) / ncols as f64;
                        let sy = rect.min.y + band_h / 2.0;
                        slice_pos[s.index()] = Point::new(sx, sy);
                    }
                }
            }
        }

        let sm_partition = hierarchy.sms().iter().map(|i| i.partition).collect();
        let slice_partition = hierarchy.slices().iter().map(|i| i.partition).collect();

        Self {
            die,
            sm_pos,
            slice_pos,
            gpc_rect,
            mp_rect,
            gpc_hub,
            partition_hub,
            sm_partition,
            slice_partition,
        }
    }

    /// Places the SMs of one GPC: CPC slabs stacked away from the die
    /// centreline, TPCs left-to-right inside each slab, two SMs per TPC.
    fn place_sms(
        hierarchy: &Hierarchy,
        gpc: GpcId,
        rect: Rect,
        bottom_row: bool,
        sm_pos: &mut [Point],
    ) {
        let cpcs = hierarchy.cpcs_in_gpc(gpc);
        let slab_h = rect.height() / cpcs.len() as f64;
        for (ci, &cpc) in cpcs.iter().enumerate() {
            // CPC 0 nearest the centreline: top slab for bottom-row GPCs,
            // bottom slab for top-row GPCs.
            let slab_from_center = ci as f64;
            let y_center = if bottom_row {
                rect.max.y - slab_h * (slab_from_center + 0.5)
            } else {
                rect.min.y + slab_h * (slab_from_center + 0.5)
            };
            let sms = hierarchy.sms_in_cpc(cpc);
            let n = sms.len().max(1);
            for (si, &sm) in sms.iter().enumerate() {
                let x = rect.min.x + rect.width() * (si as f64 + 0.5) / n as f64;
                // Nudge the two SMs of a TPC apart vertically so no two SMs
                // are exactly co-located.
                let lane = hierarchy.sm(sm).lane_in_tpc as f64;
                let y = y_center + (lane - 0.5) * slab_h * 0.25;
                sm_pos[sm.index()] = Point::new(x, y);
            }
        }
    }

    /// The die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Position of `sm` on the die.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn sm_pos(&self, sm: SmId) -> Point {
        self.sm_pos[sm.index()]
    }

    /// Position of L2 `slice` on the die.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn slice_pos(&self, slice: SliceId) -> Point {
        self.slice_pos[slice.index()]
    }

    /// Outline of `gpc`.
    pub fn gpc_rect(&self, gpc: GpcId) -> Rect {
        self.gpc_rect[gpc.index()]
    }

    /// Outline of `mp`.
    pub fn mp_rect(&self, mp: MpId) -> Rect {
        self.mp_rect[mp.index()]
    }

    /// The SM-to-SM network hub of `gpc` (H100 distributed shared memory).
    pub fn gpc_hub(&self, gpc: GpcId) -> Point {
        self.gpc_hub[gpc.index()]
    }

    /// The central-interconnect attachment point of die partition `p`.
    pub fn partition_hub(&self, p: PartitionId) -> Point {
        self.partition_hub[p.index()]
    }

    /// One-way wire distance (mm) from `sm` to `slice`.
    ///
    /// Same-partition traffic is routed directly; cross-partition traffic is
    /// routed through both partitions' central-interconnect hubs, which both
    /// lengthens the path and (in the engine) adds crossing cycles.
    pub fn wire_distance(&self, sm: SmId, slice: SliceId) -> f64 {
        let a = self.sm_pos[sm.index()];
        let b = self.slice_pos[slice.index()];
        let pa = self.sm_partition[sm.index()];
        let pb = self.slice_partition[slice.index()];
        if pa == pb {
            a.manhattan(b)
        } else {
            let ha = self.partition_hub[pa.index()];
            let hb = self.partition_hub[pb.index()];
            a.manhattan(ha) + ha.manhattan(hb) + hb.manhattan(b)
        }
    }

    /// One-way wire distance (mm) for SM-to-SM communication through the GPC's
    /// SM-to-SM network hub.
    ///
    /// The H100 distributed-shared-memory network connects the SMs of a GPC
    /// through a shared switch; traffic between any two SMs traverses it.
    pub fn sm_sm_distance(&self, src: SmId, dst: SmId, hub_gpc: GpcId) -> f64 {
        let hub = self.gpc_hub[hub_gpc.index()];
        self.sm_pos[src.index()].manhattan(hub) + hub.manhattan(self.sm_pos[dst.index()])
    }

    /// Renders a coarse ASCII view of the floorplan (used by the Fig. 4
    /// regeneration binary).
    pub fn render_ascii(&self, hierarchy: &Hierarchy, cols: usize, rows: usize) -> String {
        let mut grid = vec![vec![b'.'; cols]; rows];
        let to_cell = |p: Point| {
            let cx = ((p.x / self.die.width()) * (cols as f64 - 1.0)).round() as usize;
            let cy = ((p.y / self.die.height()) * (rows as f64 - 1.0)).round() as usize;
            (cx.min(cols - 1), rows - 1 - cy.min(rows - 1))
        };
        for info in hierarchy.sms() {
            let (x, y) = to_cell(self.sm_pos[info.sm.index()]);
            grid[y][x] = b'0' + (info.gpc.index() % 10) as u8;
        }
        for info in hierarchy.slices() {
            let (x, y) = to_cell(self.slice_pos[info.slice.index()]);
            grid[y][x] = b'#';
        }
        let mut out = String::new();
        out.push_str(&format!(
            "die {:.1} x {:.1} mm — digits: SM (GPC id mod 10), '#': L2 slice\n",
            self.die.width(),
            self.die.height()
        ));
        for row in grid {
            out.push_str(std::str::from_utf8(&row).expect("ascii grid"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{HierarchySpec, SmEnumeration};

    fn small_hierarchy(partitions: u32) -> Hierarchy {
        let gpcs = 4usize;
        let part = |g: usize| {
            if partitions == 1 {
                PartitionId::new(0)
            } else {
                PartitionId::new(if g < gpcs / 2 { 0 } else { 1 })
            }
        };
        Hierarchy::build(HierarchySpec {
            gpc_cpc_tpcs: vec![vec![2, 2]; gpcs],
            sms_per_tpc: 2,
            gpc_partition: (0..gpcs).map(part).collect(),
            num_partitions: partitions,
            num_mps: 4,
            slices_per_mp: 4,
            mp_partition: (0..4)
                .map(|m| {
                    if partitions == 1 {
                        PartitionId::new(0)
                    } else {
                        PartitionId::new(if m < 2 { 0 } else { 1 })
                    }
                })
                .collect(),
            sm_enumeration: SmEnumeration::GpcMajor,
        })
        .unwrap()
    }

    #[test]
    fn all_blocks_are_on_the_die() {
        let h = small_hierarchy(2);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        for sm in SmId::range(h.num_sms()) {
            assert!(f.die().contains(f.sm_pos(sm)), "{sm} off-die");
        }
        for s in SliceId::range(h.num_slices()) {
            assert!(f.die().contains(f.slice_pos(s)), "{s} off-die");
        }
    }

    #[test]
    fn slices_sit_in_the_central_band() {
        let h = small_hierarchy(1);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        for s in SliceId::range(h.num_slices()) {
            let y = f.slice_pos(s).y;
            assert!((y - 12.5).abs() <= 2.5, "slice {s} outside band: y={y}");
        }
    }

    #[test]
    fn cross_partition_distance_exceeds_direct() {
        let h = small_hierarchy(2);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        // SM in partition 0, slice in partition 1: routed through hubs.
        let sm = h.sms_in_partition(PartitionId::new(0))[0];
        let far = h.slices_in_partition(PartitionId::new(1))[0];
        let direct = f.sm_pos(sm).manhattan(f.slice_pos(far));
        assert!(f.wire_distance(sm, far) >= direct);
    }

    #[test]
    fn near_slices_are_closer_than_far_slices_on_average() {
        let h = small_hierarchy(2);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        let sm = h.sms_in_partition(PartitionId::new(0))[0];
        let near: f64 = h
            .slices_in_partition(PartitionId::new(0))
            .iter()
            .map(|&s| f.wire_distance(sm, s))
            .sum::<f64>()
            / 8.0;
        let far: f64 = h
            .slices_in_partition(PartitionId::new(1))
            .iter()
            .map(|&s| f.wire_distance(sm, s))
            .sum::<f64>()
            / 8.0;
        assert!(far > near);
    }

    #[test]
    fn cpc0_is_nearest_the_centreline() {
        let h = small_hierarchy(1);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        let center_y = 12.5f64;
        for g in GpcId::range(h.num_gpcs()) {
            let cpcs = h.cpcs_in_gpc(g);
            let dist = |c: crate::CpcId| {
                let sms = h.sms_in_cpc(c);
                sms.iter()
                    .map(|&s| (f.sm_pos(s).y - center_y).abs())
                    .sum::<f64>()
                    / sms.len() as f64
            };
            assert!(
                dist(cpcs[0]) < dist(cpcs[1]),
                "CPC0 of {g} should be nearest the die centreline"
            );
        }
    }

    #[test]
    fn sm_sm_distance_via_hub_is_triangle() {
        let h = small_hierarchy(1);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        let g = GpcId::new(0);
        let sms = h.sms_in_gpc(g);
        let d = f.sm_sm_distance(sms[0], sms[1], g);
        assert!(d >= f.sm_pos(sms[0]).manhattan(f.sm_pos(sms[1])) - 1e-9);
        // Self-communication still traverses the hub.
        assert!(f.sm_sm_distance(sms[0], sms[0], g) > 0.0);
    }

    #[test]
    fn ascii_render_mentions_die_size() {
        let h = small_hierarchy(2);
        let f = Floorplan::layout(&h, 30.0, 25.0);
        let art = f.render_ascii(&h, 60, 20);
        assert!(art.starts_with("die 30.0 x 25.0 mm"));
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn layout_rejects_zero_die() {
        let h = small_hierarchy(1);
        let _ = Floorplan::layout(&h, 0.0, 25.0);
    }
}
