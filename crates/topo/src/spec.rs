//! Device specifications and the three preset GPUs the paper studies
//! (Table I).
//!
//! A [`GpuSpec`] is pure data: hierarchy shape, die size, clock, memory
//! figures, and capability flags. The presets are calibrated from the paper
//! and the vendor whitepapers it cites; [`GpuSpec::custom`] supports building
//! what-if devices for architectural exploration.

use crate::floorplan::Floorplan;
use crate::hierarchy::{BuildHierarchyError, Hierarchy, HierarchySpec, SmEnumeration};
use crate::ids::{GpcId, PartitionId};
use crate::sweep::{apply_sweep, FloorSweep, SweepError};
use serde::{Deserialize, Serialize};

/// GPU architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// V100-class (single die partition).
    Volta,
    /// A100-class (two partitions, globally shared L2).
    Ampere,
    /// H100-class (two partitions, partition-local L2 caching, CPC level,
    /// SM-to-SM distributed shared memory network).
    Hopper,
    /// A synthetic device built with [`GpuSpec::custom`].
    Custom,
}

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Volta => "Volta",
            Self::Ampere => "Ampere",
            Self::Hopper => "Hopper",
            Self::Custom => "Custom",
        };
        f.write_str(s)
    }
}

/// How the device's L2 cache is organised across die partitions
/// (Section III-C, Observation #6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicy {
    /// One globally shared L2: an address lives in exactly one slice anywhere
    /// on the die (V100, A100). Hits from the far partition pay the crossing.
    GloballyShared,
    /// Each partition's L2 caches data for the SMs directly connected to it
    /// (H100): hit latency is partition-local and uniform, but the *miss*
    /// penalty varies with where the data's home memory partition lives.
    PartitionLocal,
}

/// Complete description of a GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"V100"`.
    pub name: String,
    /// Architecture generation.
    pub generation: Generation,
    /// Compute/memory hierarchy shape.
    pub hierarchy: HierarchySpec,
    /// Die width in millimetres.
    pub die_width_mm: f64,
    /// Die height in millimetres.
    pub die_height_mm: f64,
    /// SM/NoC clock in GHz (used to convert cycles to seconds).
    pub clock_ghz: f64,
    /// Peak off-chip memory bandwidth, GB/s.
    pub mem_peak_gbps: f64,
    /// Total L2 capacity in MiB.
    pub l2_mib: u32,
    /// Off-chip memory capacity in GiB.
    pub mem_gib: u32,
    /// Memory technology label for Table I (e.g. `"HBM2"`).
    pub mem_type: String,
    /// Whether the profiler exposes non-aggregated per-L2-slice counters
    /// (true on V100; removed on A100/H100, see paper footnote 1).
    pub per_slice_counters: bool,
    /// L2 organisation across partitions.
    pub cache_policy: CachePolicy,
    /// Whether the device has the SM-to-SM distributed-shared-memory network
    /// (H100 only).
    pub sm_to_sm_network: bool,
}

impl GpuSpec {
    /// The V100 preset: 80 SMs in 6 GPCs, 32 L2 slices in 8 MPs, one die
    /// partition, 900 GB/s HBM2.
    pub fn v100() -> Self {
        let gpcs = 6;
        Self {
            name: "V100".to_owned(),
            generation: Generation::Volta,
            hierarchy: HierarchySpec {
                gpc_cpc_tpcs: vec![vec![7], vec![7], vec![7], vec![7], vec![6], vec![6]],
                sms_per_tpc: 2,
                gpc_partition: vec![PartitionId::new(0); gpcs],
                num_partitions: 1,
                num_mps: 8,
                slices_per_mp: 4,
                mp_partition: vec![PartitionId::new(0); 8],
                sm_enumeration: SmEnumeration::RoundRobinTpc {
                    gpc_order: GpcId::range(gpcs).collect(),
                },
            },
            die_width_mm: 33.0,
            die_height_mm: 24.7,
            clock_ghz: 1.38,
            mem_peak_gbps: 900.0,
            l2_mib: 6,
            mem_gib: 16,
            mem_type: "HBM2".to_owned(),
            per_slice_counters: true,
            cache_policy: CachePolicy::GloballyShared,
            sm_to_sm_network: false,
        }
    }

    /// The A100 preset: 108 SMs in 8 GPCs across two die partitions, 80 L2
    /// slices in 10 MPs, 1555 GB/s HBM2e.
    pub fn a100() -> Self {
        let gpcs = 8;
        Self {
            name: "A100".to_owned(),
            generation: Generation::Ampere,
            hierarchy: HierarchySpec {
                gpc_cpc_tpcs: vec![
                    vec![7],
                    vec![7],
                    vec![7],
                    vec![7],
                    vec![7],
                    vec![7],
                    vec![6],
                    vec![6],
                ],
                sms_per_tpc: 2,
                gpc_partition: (0..gpcs)
                    .map(|g| PartitionId::new(u32::from(g >= gpcs / 2)))
                    .collect(),
                num_partitions: 2,
                num_mps: 10,
                slices_per_mp: 8,
                mp_partition: (0..10)
                    .map(|m| PartitionId::new(u32::from(m >= 5)))
                    .collect(),
                // smid enumeration interleaves the two partitions, so SM0 and
                // SM2 land on different partitions (paper Fig. 12).
                sm_enumeration: SmEnumeration::RoundRobinTpc {
                    gpc_order: [0u32, 4, 1, 5, 2, 6, 3, 7].map(GpcId::new).to_vec(),
                },
            },
            die_width_mm: 33.0,
            die_height_mm: 25.0,
            clock_ghz: 1.41,
            mem_peak_gbps: 1555.0,
            l2_mib: 40,
            mem_gib: 40,
            mem_type: "HBM2e".to_owned(),
            per_slice_counters: false,
            cache_policy: CachePolicy::GloballyShared,
            sm_to_sm_network: false,
        }
    }

    /// The full GA100 die behind the A100: 128 SMs in 8 GPCs of 8 TPCs, 12
    /// memory partitions with 96 L2 slices (48 MiB). No shipping part enables
    /// all of it; [`GpuSpec::a100_floorswept`] applies the production binning.
    pub fn a100_full() -> Self {
        let mut spec = Self::a100();
        spec.name = "A100-FULL".to_owned();
        spec.hierarchy.gpc_cpc_tpcs = vec![vec![8]; 8];
        spec.hierarchy.num_mps = 12;
        spec.hierarchy.mp_partition = (0..12)
            .map(|m| PartitionId::new(u32::from(m >= 6)))
            .collect();
        spec.l2_mib = 48;
        spec.mem_gib = 48;
        spec.mem_peak_gbps = 1866.0;
        spec
    }

    /// The shipping A100 expressed as the paper's devices really are: a full
    /// GA100 die ([`GpuSpec::a100_full`]) with the production floorsweep
    /// ([`FloorSweep::a100_sku`]) applied. Its hierarchy is exactly that of
    /// [`GpuSpec::a100`] — 108 of 128 SMs, 10 of 12 MPs — so every
    /// paper-calibrated observation carries over unchanged.
    pub fn a100_floorswept() -> Self {
        let mut spec = Self::a100_full()
            .floorswept(&FloorSweep::a100_sku())
            .expect("a100 sku sweep is valid for the full ga100 die");
        spec.name = "A100-FS".to_owned();
        spec
    }

    /// Applies a [`FloorSweep`] to this device, returning the harvested SKU.
    ///
    /// The hierarchy loses the swept units (see [`apply_sweep`]); L2 and DRAM
    /// capacity and peak memory bandwidth scale with the surviving memory
    /// partitions, since each MP owns its share of slices and its memory
    /// controller. Generation, clock, die size and capability flags are
    /// unchanged — a harvested die is the same silicon — so the latency
    /// calibration for the generation still applies. The name gains a `-FS`
    /// suffix unless the sweep is empty.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepError`] for out-of-range, duplicate, or
    /// device-destroying sweeps.
    pub fn floorswept(&self, sweep: &FloorSweep) -> Result<Self, SweepError> {
        let hierarchy = apply_sweep(&self.hierarchy, sweep)?;
        let mut spec = self.clone();
        if !sweep.is_empty() {
            spec.name = format!("{}-FS", self.name);
        }
        let kept = hierarchy.num_mps as f64 / self.hierarchy.num_mps as f64;
        spec.l2_mib = (f64::from(self.l2_mib) * kept).round() as u32;
        spec.mem_gib = (f64::from(self.mem_gib) * kept).round() as u32;
        spec.mem_peak_gbps = self.mem_peak_gbps * kept;
        spec.hierarchy = hierarchy;
        Ok(spec)
    }

    /// The H100 (SXM5) preset: 132 SMs in 8 GPCs (each split into CPCs)
    /// across two die partitions, 80 L2 slices in 8 MPs, partition-local L2
    /// caching, 3352 GB/s HBM3.
    pub fn h100() -> Self {
        let gpcs = 8;
        let cpc = |tpcs: u32| -> Vec<u32> {
            // Split a GPC's TPCs into three CPCs, e.g. 9 -> [3,3,3], 8 -> [3,3,2].
            let base = tpcs / 3;
            let extra = tpcs % 3;
            (0..3).map(|i| base + u32::from(i < extra)).collect()
        };
        Self {
            name: "H100".to_owned(),
            generation: Generation::Hopper,
            hierarchy: HierarchySpec {
                gpc_cpc_tpcs: vec![
                    cpc(9),
                    cpc(9),
                    cpc(8),
                    cpc(8),
                    cpc(8),
                    cpc(8),
                    cpc(8),
                    cpc(8),
                ],
                sms_per_tpc: 2,
                gpc_partition: (0..gpcs)
                    .map(|g| PartitionId::new(u32::from(g >= gpcs / 2)))
                    .collect(),
                num_partitions: 2,
                num_mps: 8,
                slices_per_mp: 10,
                mp_partition: (0..8)
                    .map(|m| PartitionId::new(u32::from(m >= 4)))
                    .collect(),
                sm_enumeration: SmEnumeration::RoundRobinTpc {
                    gpc_order: [0u32, 4, 1, 5, 2, 6, 3, 7].map(GpcId::new).to_vec(),
                },
            },
            die_width_mm: 33.5,
            die_height_mm: 24.3,
            clock_ghz: 1.83,
            mem_peak_gbps: 3352.0,
            l2_mib: 50,
            mem_gib: 80,
            mem_type: "HBM3".to_owned(),
            per_slice_counters: false,
            cache_policy: CachePolicy::PartitionLocal,
            sm_to_sm_network: true,
        }
    }

    /// All three paper presets, in generation order.
    pub fn paper_presets() -> Vec<GpuSpec> {
        vec![Self::v100(), Self::a100(), Self::h100()]
    }

    /// Starts a custom device description from an explicit hierarchy; the
    /// remaining fields default to V100-like values and can be overridden by
    /// mutating the returned spec.
    pub fn custom(name: impl Into<String>, hierarchy: HierarchySpec) -> Self {
        Self {
            name: name.into(),
            generation: Generation::Custom,
            hierarchy,
            ..Self::v100()
        }
    }

    /// Number of SMs described by the hierarchy (without building it).
    pub fn num_sms(&self) -> usize {
        self.hierarchy
            .gpc_cpc_tpcs
            .iter()
            .flatten()
            .map(|&t| t as usize)
            .sum::<usize>()
            * self.hierarchy.sms_per_tpc as usize
    }

    /// Number of L2 slices described by the hierarchy.
    pub fn num_slices(&self) -> usize {
        (self.hierarchy.num_mps * self.hierarchy.slices_per_mp) as usize
    }

    /// Builds and validates the hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildHierarchyError`] for inconsistent custom specs; the
    /// built-in presets never fail.
    pub fn resolve(&self) -> Result<Hierarchy, BuildHierarchyError> {
        Hierarchy::build(self.hierarchy.clone())
    }

    /// Builds the hierarchy, panicking on an invalid spec.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy spec is inconsistent. Prefer
    /// [`GpuSpec::resolve`] for custom specs.
    pub fn hierarchy(&self) -> Hierarchy {
        self.resolve().expect("invalid gpu hierarchy spec")
    }

    /// Lays out the floorplan for this device.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy spec is inconsistent.
    pub fn floorplan(&self) -> Floorplan {
        Floorplan::layout(&self.hierarchy(), self.die_width_mm, self.die_height_mm)
    }

    /// One row of the Table I comparison, as `(label, value)` pairs.
    pub fn table1_row(&self) -> Vec<(&'static str, String)> {
        let h = self.hierarchy();
        vec![
            ("GPU", self.name.clone()),
            ("Architecture", self.generation.to_string()),
            ("SMs", h.num_sms().to_string()),
            ("GPCs", h.num_gpcs().to_string()),
            ("Die partitions", h.num_partitions().to_string()),
            ("L2 slices", h.num_slices().to_string()),
            ("Memory partitions", h.num_mps().to_string()),
            ("L2 capacity (MiB)", self.l2_mib.to_string()),
            ("Memory", format!("{} {} GiB", self.mem_type, self.mem_gib)),
            ("Peak mem BW (GB/s)", format!("{:.0}", self.mem_peak_gbps)),
            ("Clock (GHz)", format!("{:.2}", self.clock_ghz)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SmId;

    #[test]
    fn v100_matches_table1() {
        let v = GpuSpec::v100();
        assert_eq!(v.num_sms(), 80);
        assert_eq!(v.num_slices(), 32);
        let h = v.hierarchy();
        assert_eq!(h.num_gpcs(), 6);
        assert_eq!(h.num_partitions(), 1);
        assert_eq!(h.num_mps(), 8);
        assert!(v.per_slice_counters);
        assert!(!h.has_cpc_level());
    }

    #[test]
    fn a100_matches_table1() {
        let a = GpuSpec::a100();
        assert_eq!(a.num_sms(), 108);
        assert_eq!(a.num_slices(), 80);
        let h = a.hierarchy();
        assert_eq!(h.num_gpcs(), 8);
        assert_eq!(h.num_partitions(), 2);
        assert!(!a.per_slice_counters);
        assert_eq!(a.cache_policy, CachePolicy::GloballyShared);
    }

    #[test]
    fn h100_matches_table1() {
        let hs = GpuSpec::h100();
        assert_eq!(hs.num_sms(), 132);
        assert_eq!(hs.num_slices(), 80);
        let h = hs.hierarchy();
        assert_eq!(h.num_gpcs(), 8);
        assert!(h.has_cpc_level());
        assert_eq!(hs.cache_policy, CachePolicy::PartitionLocal);
        assert!(hs.sm_to_sm_network);
    }

    #[test]
    fn a100_sm0_and_sm2_are_on_different_partitions() {
        // The premise of paper Fig. 12.
        let h = GpuSpec::a100().hierarchy();
        assert_ne!(h.sm(SmId::new(0)).partition, h.sm(SmId::new(2)).partition);
    }

    #[test]
    fn presets_resolve_without_error() {
        for spec in GpuSpec::paper_presets() {
            assert!(spec.resolve().is_ok(), "{} failed to resolve", spec.name);
        }
    }

    #[test]
    fn table1_rows_share_labels() {
        let rows: Vec<_> = GpuSpec::paper_presets()
            .iter()
            .map(|s| s.table1_row())
            .collect();
        let labels: Vec<_> = rows[0].iter().map(|(l, _)| *l).collect();
        for row in &rows {
            let l: Vec<_> = row.iter().map(|(l, _)| *l).collect();
            assert_eq!(l, labels);
        }
    }

    #[test]
    fn custom_spec_inherits_defaults() {
        let custom = GpuSpec::custom("tiny", GpuSpec::v100().hierarchy.clone());
        assert_eq!(custom.generation, Generation::Custom);
        assert_eq!(custom.num_sms(), 80);
        assert_eq!(custom.clock_ghz, GpuSpec::v100().clock_ghz);
    }

    #[test]
    fn generation_display_names() {
        assert_eq!(Generation::Volta.to_string(), "Volta");
        assert_eq!(Generation::Hopper.to_string(), "Hopper");
    }

    #[test]
    fn a100_full_die_has_128_sms_and_96_slices() {
        let full = GpuSpec::a100_full();
        assert_eq!(full.num_sms(), 128);
        assert_eq!(full.num_slices(), 96);
        assert_eq!(full.hierarchy().num_mps(), 12);
        assert!(full.resolve().is_ok());
    }

    #[test]
    fn a100_floorswept_matches_shipping_part() {
        let fs = GpuSpec::a100_floorswept();
        let shipping = GpuSpec::a100();
        // Same silicon, harvested: the hierarchies are identical, and so are
        // the capacity figures the sweep scales down.
        assert_eq!(fs.hierarchy, shipping.hierarchy);
        assert_eq!(fs.num_sms(), 108);
        assert_eq!(fs.num_slices(), 80);
        assert_eq!(fs.l2_mib, shipping.l2_mib);
        assert_eq!(fs.mem_gib, shipping.mem_gib);
        assert!((fs.mem_peak_gbps - shipping.mem_peak_gbps).abs() < 1.0);
        assert_eq!(fs.generation, Generation::Ampere);
        assert_eq!(fs.name, "A100-FS");
    }

    #[test]
    fn empty_sweep_keeps_name_and_capacity() {
        let v = GpuSpec::v100();
        let swept = v.floorswept(&crate::FloorSweep::none()).unwrap();
        assert_eq!(swept, v);
    }

    #[test]
    fn h100_cpc_split_covers_all_tpcs() {
        let hs = GpuSpec::h100();
        for cpcs in &hs.hierarchy.gpc_cpc_tpcs {
            assert_eq!(cpcs.len(), 3);
            assert!(cpcs.iter().sum::<u32>() >= 8);
        }
    }
}
