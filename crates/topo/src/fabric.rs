//! Inter-device fabric topologies.
//!
//! A multi-GPU job couples `D` devices over an NVLink-class fabric. This
//! module describes only the *shape* of that fabric — which inter-device
//! links exist — so that the fault-plan generator (`gnoc-faults`) and the
//! cycle-level fabric simulator (`gnoc-fabric`) agree on one link
//! enumeration without depending on each other.
//!
//! Nodes are numbered `0..devices` for the GPUs themselves; the
//! [`FabricTopology::Switch`] topology adds one switch node with index
//! `devices` (an NVSwitch-style hub every device attaches to). Links are
//! undirected `(low, high)` node pairs in a fixed sorted order, so a link
//! index is stable across runs and processes.

use serde::{Deserialize, Serialize};

/// Shape of the inter-device fabric, runtime-selectable (mirroring the
/// `--topology` flag of multi-GPU interconnect simulators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricTopology {
    /// One direct link between exactly two devices (NVLink bridge).
    PointToPoint,
    /// A chain `0 — 1 — … — D-1`.
    Line,
    /// A chain closed into a cycle (adds `D-1 — 0`).
    Ring,
    /// Every device pair directly linked.
    FullyConnected,
    /// Every device linked to one central switch node (index `D`).
    Switch,
}

impl FabricTopology {
    /// All topologies, for sweeps and tests.
    pub const ALL: [Self; 5] = [
        Self::PointToPoint,
        Self::Line,
        Self::Ring,
        Self::FullyConnected,
        Self::Switch,
    ];

    /// Parses the CLI spelling (case-insensitive): `p2p`, `line`, `ring`,
    /// `fully` / `fullyconnected` / `all-to-all`, `switch`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "p2p" | "pointtopoint" | "point-to-point" => Some(Self::PointToPoint),
            "line" => Some(Self::Line),
            "ring" => Some(Self::Ring),
            "fully" | "fullyconnected" | "fully-connected" | "all-to-all" => {
                Some(Self::FullyConnected)
            }
            "switch" => Some(Self::Switch),
            _ => None,
        }
    }

    /// The canonical CLI spelling (round-trips through [`Self::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::PointToPoint => "p2p",
            Self::Line => "line",
            Self::Ring => "ring",
            Self::FullyConnected => "fully",
            Self::Switch => "switch",
        }
    }

    /// Whether `devices` GPUs can form this topology. Every topology needs
    /// at least two devices; point-to-point is exactly two.
    pub fn supports_devices(self, devices: u32) -> bool {
        match self {
            Self::PointToPoint => devices == 2,
            _ => devices >= 2,
        }
    }

    /// Fabric nodes: the devices plus, for [`Self::Switch`], the hub.
    pub fn node_count(self, devices: u32) -> u32 {
        match self {
            Self::Switch => devices + 1,
            _ => devices,
        }
    }

    /// The switch node index, if this topology has one.
    pub fn switch_node(self, devices: u32) -> Option<u32> {
        match self {
            Self::Switch => Some(devices),
            _ => None,
        }
    }

    /// The undirected links of the fabric as sorted `(low, high)` node
    /// pairs, in a fixed deterministic order. Link *indices* into this list
    /// are the stable identity used by fault plans and health breakers.
    pub fn links(self, devices: u32) -> Vec<(u32, u32)> {
        let mut links = Vec::new();
        match self {
            Self::PointToPoint => {
                if devices == 2 {
                    links.push((0, 1));
                }
            }
            Self::Line => {
                for d in 1..devices {
                    links.push((d - 1, d));
                }
            }
            Self::Ring => {
                for d in 1..devices {
                    links.push((d - 1, d));
                }
                if devices > 2 {
                    links.push((0, devices - 1));
                }
            }
            Self::FullyConnected => {
                for a in 0..devices {
                    for b in (a + 1)..devices {
                        links.push((a, b));
                    }
                }
            }
            Self::Switch => {
                for d in 0..devices {
                    links.push((d, devices));
                }
            }
        }
        links.sort_unstable();
        links
    }
}

impl std::fmt::Display for FabricTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in FabricTopology::ALL {
            assert_eq!(FabricTopology::parse(t.name()), Some(t));
            assert_eq!(FabricTopology::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(FabricTopology::parse("torus"), None);
    }

    #[test]
    fn link_sets_match_the_shapes() {
        assert_eq!(FabricTopology::PointToPoint.links(2), vec![(0, 1)]);
        assert_eq!(FabricTopology::Line.links(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(
            FabricTopology::Ring.links(4),
            vec![(0, 1), (0, 3), (1, 2), (2, 3)]
        );
        // A 2-device ring degenerates to a single edge, not a double edge.
        assert_eq!(FabricTopology::Ring.links(2), vec![(0, 1)]);
        assert_eq!(FabricTopology::FullyConnected.links(4).len(), 6);
        assert_eq!(
            FabricTopology::Switch.links(3),
            vec![(0, 3), (1, 3), (2, 3)]
        );
        assert_eq!(FabricTopology::Switch.node_count(3), 4);
        assert_eq!(FabricTopology::Switch.switch_node(3), Some(3));
        assert_eq!(FabricTopology::Ring.switch_node(4), None);
    }

    #[test]
    fn device_support_bounds() {
        assert!(FabricTopology::PointToPoint.supports_devices(2));
        assert!(!FabricTopology::PointToPoint.supports_devices(3));
        for t in [
            FabricTopology::Line,
            FabricTopology::Ring,
            FabricTopology::FullyConnected,
            FabricTopology::Switch,
        ] {
            assert!(!t.supports_devices(1));
            assert!(t.supports_devices(2));
            assert!(t.supports_devices(8));
        }
    }
}
