//! Crash-safe file persistence, shared by every state writer in the
//! workspace.
//!
//! Three subsystems persist resumable state — campaign checkpoints
//! ([`crate::CheckpointedCampaign`]), chaos soak state
//! (`gnoc_chaos::ChaosState`), and the serve daemon's cache/journal
//! snapshots — and each used to hand-roll its own temp-file dance (two of
//! them without fsync, one with a plain `fs::write` that could tear). This
//! module is the single implementation: write to a `.tmp` sibling, fsync
//! the file, rename over the destination, then fsync the parent directory
//! so the rename itself survives a power cut. A reader can observe either
//! the old bytes or the new bytes, never a mixture and never a truncation.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp file [`atomic_write`] stages before its rename. The
/// `.tmp` suffix is *appended* (`ckpt.json` → `ckpt.json.tmp`) rather than
/// replacing the extension, so two files named `a.json` / `a.bak` can never
/// collide on one temp path.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Removes the orphan temp file a kill between write and rename leaves
/// behind. Call it on every resume path: the temp is by construction an
/// incomplete or superseded snapshot, so deleting it is always safe — the
/// real file (if any) lives at `path` itself.
pub fn remove_orphan_tmp(path: &Path) {
    let _ = std::fs::remove_file(tmp_sibling(path));
}

/// Atomically replaces `path` with `bytes`: temp sibling + fsync + rename +
/// parent-directory fsync. After this returns, the new contents are durable;
/// if the process dies at any point before that, the old contents (or
/// absence) are untouched and at worst an orphan `.tmp` remains.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename. The parent-directory fsync
/// is best-effort (some filesystems refuse to open directories); its failure
/// is not reported because the rename itself already happened.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Ok(dir) = File::open(parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gnoc-fsio-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn tmp_sibling_appends_suffix() {
        assert_eq!(
            tmp_sibling(Path::new("/x/ckpt.json")),
            PathBuf::from("/x/ckpt.json.tmp")
        );
        // Appending (not replacing the extension) keeps distinct files on
        // distinct temp paths.
        assert_ne!(
            tmp_sibling(Path::new("/x/a.json")),
            tmp_sibling(Path::new("/x/a.bak"))
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let path = scratch("replace");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn orphan_tmp_is_removed() {
        let path = scratch("orphan");
        std::fs::write(tmp_sibling(&path), b"garbage from a dead process").unwrap();
        remove_orphan_tmp(&path);
        assert!(!tmp_sibling(&path).exists());
        assert!(!path.exists());
    }
}
