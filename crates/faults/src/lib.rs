//! # gnoc-faults
//!
//! Deterministic, seedable fault-injection plans for the `gnoc` workspace.
//!
//! Real GPUs are harvested silicon (the A100 ships with 108 of 128 SMs and 10
//! of 12 memory partitions enabled) and real interconnects degrade: links
//! die, routers stall, flits are dropped or corrupted in flight. A
//! [`FaultPlan`] captures all of that in one serialisable description:
//!
//! - a [`FloorSweep`] fusing off TPCs/GPCs/MPs (consumed by `gnoc-topo`);
//! - disabled L2 slices, which `gnoc-engine` remaps the address hash around;
//! - [`LinkFault`]s (dead or flaky mesh links) and [`RouterStall`]s with an
//!   onset cycle, consumed by the `gnoc-noc` mesh;
//! - [`TransientFaults`] — die-wide flit drop/corruption probabilities.
//!
//! Plans are plain data: same plan + same seed ⇒ bit-identical simulation.
//! [`FaultPlan::generate`] builds a random plan from a [`FaultGenConfig`]
//! while *guaranteeing the surviving mesh stays connected*, so every
//! generated plan is survivable by reroute + retry rather than a guaranteed
//! partition of the network.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fsio;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;

pub use gnoc_topo::{FabricTopology, FloorSweep, SweepError};

/// A mesh link direction, from the perspective of the source router. The
/// convention matches the `gnoc-noc` mesh: north is towards *higher* row
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards row `y + 1`.
    North,
    /// Towards column `x + 1`.
    East,
    /// Towards row `y - 1`.
    South,
    /// Towards column `x - 1`.
    West,
}

impl Direction {
    /// All four directions, in the mesh's port order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The direction a neighbour uses for the same physical link.
    pub fn opposite(self) -> Self {
        match self {
            Self::North => Self::South,
            Self::East => Self::West,
            Self::South => Self::North,
            Self::West => Self::East,
        }
    }

    /// The router reached by leaving `router` this way on a `width`×`height`
    /// mesh, or `None` at the mesh edge.
    pub fn neighbour(self, router: u32, width: u32, height: u32) -> Option<u32> {
        let (x, y) = (router % width, router / width);
        match self {
            Self::North => (y + 1 < height).then(|| (y + 1) * width + x),
            Self::South => y.checked_sub(1).map(|y| y * width + x),
            Self::West => x.checked_sub(1).map(|x| y * width + x),
            Self::East => (x + 1 < width).then(|| y * width + x + 1),
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::North => "north",
            Self::East => "east",
            Self::South => "south",
            Self::West => "west",
        };
        f.write_str(s)
    }
}

/// What is wrong with a faulted link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link never transfers a flit again after the fault's onset.
    Dead,
    /// The link drops each flit independently with this probability.
    Flaky {
        /// Per-flit drop probability in `[0, 1]`.
        drop_prob: f64,
    },
}

/// A fault on one directed mesh link.
///
/// A physically dead link kills both directions; [`FaultPlan::generate`]
/// emits the two directed entries explicitly so a plan can also model
/// asymmetric (one-way) degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Source router index (`y * width + x`).
    pub router: u32,
    /// Outgoing direction of the faulted link.
    pub dir: Direction,
    /// Dead or flaky.
    pub kind: LinkFaultKind,
    /// Cycle at which the fault manifests (0 = from the start).
    pub onset: u64,
}

/// A correlated regional failure: a cluster of dead links concentrated
/// around one router, the way a localised manufacturing defect or a hot spot
/// kills silicon — neighbouring links fail together, not independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionFault {
    /// Centre router of the damaged region (`y * width + x`).
    pub center: u32,
    /// Manhattan radius around the centre; only edges with both endpoints
    /// inside the region are candidates.
    pub radius: u32,
    /// Fraction of the region's undirected edges to kill (connectivity
    /// permitting, like [`FaultGenConfig::dead_link_fraction`]).
    pub dead_fraction: f64,
}

/// A flaky-link burst: a contiguous cluster of links that all turn flaky at
/// the same cycle — the signature of a marginal power rail or a shared
/// repeater bank degrading, as opposed to independent single-link flakiness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlakyBurst {
    /// Number of directed links in the burst cluster.
    pub links: u32,
    /// Per-flit drop probability of every link in the burst.
    pub drop_prob: f64,
    /// Cycle at which the whole burst manifests at once.
    pub onset: u64,
}

/// A router that stops arbitrating (all its outputs freeze) for a window of
/// cycles — the NoC-level analogue of a hung pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStall {
    /// Stalled router index.
    pub router: u32,
    /// First stalled cycle.
    pub onset: u64,
    /// Number of cycles the stall lasts.
    pub duration: u64,
}

/// Die-wide transient fault rates, applied to every link traversal.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TransientFaults {
    /// Probability a flit is silently dropped on any hop.
    pub drop_prob: f64,
    /// Probability a flit's payload is corrupted on any hop (detected at the
    /// ejection port's CRC check and NACKed).
    pub corrupt_prob: f64,
    /// Cycle at which transient faults begin.
    pub onset: u64,
}

impl TransientFaults {
    /// Whether any transient fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.corrupt_prob > 0.0
    }
}

/// A fault on one undirected inter-device fabric link, named by its sorted
/// `(a, b)` fabric-node pair (devices `0..D`; the switch node is `D` for the
/// [`FabricTopology::Switch`] topology). Fabric links are full-duplex
/// channels that fail as a unit, so there is no per-direction entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricLinkFault {
    /// Lower fabric-node endpoint.
    pub a: u32,
    /// Higher fabric-node endpoint.
    pub b: u32,
    /// Dead or flaky.
    pub kind: LinkFaultKind,
    /// Cycle at which the fault manifests (0 = from the start).
    pub onset: u64,
}

/// Loss of a whole device: its die, its fabric ports, and every transfer it
/// sources or sinks — the multi-GPU analogue of a node dropping out of the
/// job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceFault {
    /// The lost device index.
    pub device: u32,
    /// First cycle the device is gone.
    pub onset: u64,
}

/// The inter-device portion of a [`FaultPlan`]: dead/flaky fabric links, an
/// optional dead switch, and whole-device losses, all with onsets. Empty for
/// single-die plans (and for every plan written before the fabric layer
/// existed — old plan files deserialize with an empty `fabric`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FabricFaults {
    /// Faulted fabric links.
    pub links: Vec<FabricLinkFault>,
    /// Cycle at which the central switch dies (only meaningful for
    /// [`FabricTopology::Switch`]); severs every device at once.
    pub dead_switch: Option<u64>,
    /// Whole-device losses.
    pub devices: Vec<DeviceFault>,
}

impl FabricFaults {
    /// Whether the fabric part injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.dead_switch.is_none() && self.devices.is_empty()
    }

    /// Whether any fabric fault draws from the fault RNG (flaky links).
    pub fn has_probabilistic_faults(&self) -> bool {
        self.links
            .iter()
            .any(|l| matches!(l.kind, LinkFaultKind::Flaky { .. }))
    }

    /// The undirected fabric links dead once every onset has passed.
    pub fn dead_links(&self) -> Vec<(u32, u32)> {
        let mut dead: Vec<(u32, u32)> = self
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
            .map(|l| (l.a.min(l.b), l.a.max(l.b)))
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// The devices lost once every onset has passed.
    pub fn dead_devices(&self) -> Vec<u32> {
        let mut dead: Vec<u32> = self.devices.iter().map(|d| d.device).collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}

/// A complete, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic fault draw (flaky links, transients).
    /// The same plan with the same seed produces bit-identical runs.
    pub seed: u64,
    /// Manufacturing floorsweep applied to the device hierarchy.
    pub sweep: Option<FloorSweep>,
    /// L2 slices fused off; the address hash is remapped around them.
    pub disabled_slices: Vec<u32>,
    /// Faulted mesh links.
    pub links: Vec<LinkFault>,
    /// Stalled routers.
    pub routers: Vec<RouterStall>,
    /// Die-wide transient flit faults.
    pub transient: TransientFaults,
    /// Inter-device fabric faults (empty for single-die plans).
    pub fabric: FabricFaults,
}

// Hand-rolled so plan files written before the fabric layer existed (no
// `fabric` key) still load: every pre-fabric field stays required, `fabric`
// alone defaults to empty.
impl Deserialize for FaultPlan {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            seed: Deserialize::deserialize_value(value.field("seed")?)?,
            sweep: Deserialize::deserialize_value(value.field("sweep")?)?,
            disabled_slices: Deserialize::deserialize_value(value.field("disabled_slices")?)?,
            links: Deserialize::deserialize_value(value.field("links")?)?,
            routers: Deserialize::deserialize_value(value.field("routers")?)?,
            transient: Deserialize::deserialize_value(value.field("transient")?)?,
            fabric: match value.field("fabric") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => FabricFaults::default(),
            },
        })
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Errors validating or loading a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A link or stall names a router outside the mesh.
    RouterOutOfRange {
        /// The offending router index.
        router: u32,
        /// Routers in the mesh.
        num_routers: u32,
    },
    /// A link fault points off the edge of the mesh.
    LinkOffEdge {
        /// Source router.
        router: u32,
        /// Direction with no neighbour.
        dir: Direction,
    },
    /// The same directed link is faulted twice.
    DuplicateLink {
        /// Source router.
        router: u32,
        /// Direction listed twice.
        dir: Direction,
    },
    /// A probability is outside `[0, 1]`.
    BadProbability(f64),
    /// A disabled slice index is out of range for the device.
    SliceOutOfRange {
        /// The offending slice index.
        slice: u32,
        /// Slices on the device.
        num_slices: u32,
    },
    /// The same slice is disabled twice.
    DuplicateSlice(u32),
    /// A generator config field is out of range; the field is named so a
    /// CLI user can see exactly which knob to fix.
    BadGenField {
        /// Name of the offending [`FaultGenConfig`] field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Every slice is disabled — no L2 remains to home addresses.
    AllSlicesDisabled,
    /// The dead links at full onset disconnect the surviving mesh.
    MeshDisconnected,
    /// A fabric fault names a link that is not part of the topology (bad
    /// endpoints or a pair the topology never wires).
    FabricLinkUnknown {
        /// Lower endpoint of the offending pair.
        a: u32,
        /// Higher endpoint of the offending pair.
        b: u32,
    },
    /// The same undirected fabric link is faulted twice.
    FabricDuplicateLink {
        /// Lower endpoint.
        a: u32,
        /// Higher endpoint.
        b: u32,
    },
    /// A device fault names a device outside the job.
    DeviceOutOfRange {
        /// The offending device index.
        device: u32,
        /// Devices in the job.
        num_devices: u32,
    },
    /// A switch fault was given for a topology that has no switch.
    SwitchNotInTopology,
    /// The plan file could not be read or written.
    Io(String),
    /// The plan file is not valid JSON for a plan.
    Parse(String),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RouterOutOfRange {
                router,
                num_routers,
            } => write!(f, "router {router} out of range ({num_routers} routers)"),
            Self::LinkOffEdge { router, dir } => {
                write!(f, "link {dir} of router {router} points off the mesh edge")
            }
            Self::DuplicateLink { router, dir } => {
                write!(f, "link {dir} of router {router} is faulted twice")
            }
            Self::BadProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            Self::SliceOutOfRange { slice, num_slices } => {
                write!(f, "slice {slice} out of range ({num_slices} slices)")
            }
            Self::DuplicateSlice(s) => write!(f, "slice {s} disabled twice"),
            Self::BadGenField { field, value } => {
                write!(f, "generator field `{field}` = {value} is out of range")
            }
            Self::AllSlicesDisabled => write!(f, "plan disables every L2 slice"),
            Self::MeshDisconnected => {
                write!(f, "dead links disconnect the surviving mesh")
            }
            Self::FabricLinkUnknown { a, b } => {
                write!(f, "fabric link {a}\u{2194}{b} is not part of the topology")
            }
            Self::FabricDuplicateLink { a, b } => {
                write!(f, "fabric link {a}\u{2194}{b} is faulted twice")
            }
            Self::DeviceOutOfRange {
                device,
                num_devices,
            } => write!(f, "device {device} out of range ({num_devices} devices)"),
            Self::SwitchNotInTopology => {
                write!(f, "switch fault given for a topology with no switch")
            }
            Self::Io(e) => write!(f, "plan file i/o error: {e}"),
            Self::Parse(e) => write!(f, "plan file parse error: {e}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            sweep: None,
            disabled_slices: Vec::new(),
            links: Vec::new(),
            routers: Vec::new(),
            transient: TransientFaults::default(),
            fabric: FabricFaults::default(),
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_benign(&self) -> bool {
        self.sweep.as_ref().is_none_or(FloorSweep::is_empty)
            && self.disabled_slices.is_empty()
            && self.links.is_empty()
            && self.routers.is_empty()
            && !self.transient.is_active()
            && self.fabric.is_empty()
    }

    /// Whether the plan contains any probabilistic fault (and therefore draws
    /// from the fault RNG during simulation).
    pub fn has_probabilistic_faults(&self) -> bool {
        self.transient.is_active()
            || self
                .links
                .iter()
                .any(|l| matches!(l.kind, LinkFaultKind::Flaky { .. }))
            || self.fabric.has_probabilistic_faults()
    }

    /// Validates the NoC part of the plan against a `width`×`height` mesh:
    /// indices in range, links on the die, probabilities sane, no duplicate
    /// directed link, and the surviving mesh (with every dead link at full
    /// onset removed) still connected.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate_for_mesh(&self, width: u32, height: u32) -> Result<(), FaultPlanError> {
        let num_routers = width * height;
        let mut seen = std::collections::HashSet::new();
        for l in &self.links {
            if l.router >= num_routers {
                return Err(FaultPlanError::RouterOutOfRange {
                    router: l.router,
                    num_routers,
                });
            }
            if l.dir.neighbour(l.router, width, height).is_none() {
                return Err(FaultPlanError::LinkOffEdge {
                    router: l.router,
                    dir: l.dir,
                });
            }
            if !seen.insert((l.router, l.dir)) {
                return Err(FaultPlanError::DuplicateLink {
                    router: l.router,
                    dir: l.dir,
                });
            }
            if let LinkFaultKind::Flaky { drop_prob } = l.kind {
                check_prob(drop_prob)?;
            }
        }
        for r in &self.routers {
            if r.router >= num_routers {
                return Err(FaultPlanError::RouterOutOfRange {
                    router: r.router,
                    num_routers,
                });
            }
        }
        check_prob(self.transient.drop_prob)?;
        check_prob(self.transient.corrupt_prob)?;
        if !mesh_connected(width, height, &self.dead_undirected_edges(width, height)) {
            return Err(FaultPlanError::MeshDisconnected);
        }
        Ok(())
    }

    /// Validates the L2-slice part of the plan against a device with
    /// `num_slices` slices (counted after any floorsweep).
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate_for_slices(&self, num_slices: u32) -> Result<(), FaultPlanError> {
        let mut seen = std::collections::HashSet::new();
        for &s in &self.disabled_slices {
            if s >= num_slices {
                return Err(FaultPlanError::SliceOutOfRange {
                    slice: s,
                    num_slices,
                });
            }
            if !seen.insert(s) {
                return Err(FaultPlanError::DuplicateSlice(s));
            }
        }
        if num_slices > 0 && seen.len() == num_slices as usize {
            return Err(FaultPlanError::AllSlicesDisabled);
        }
        Ok(())
    }

    /// Validates the inter-device part of the plan against a fabric of
    /// `devices` GPUs in `topology`: every faulted link exists in the
    /// topology, no duplicate links, probabilities sane, device indices in
    /// range, and a switch fault only where a switch exists.
    ///
    /// Deliberately does *not* require the surviving fabric to stay
    /// connected: severed devices are a first-class scenario (reported as
    /// [`crate::FaultPlanError`]-free plans whose transfers resolve as
    /// `partitioned`), unlike a disconnected die mesh, which no transfer
    /// accounting survives. Use [`fabric_connected`] to report connectivity.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate_for_fabric(
        &self,
        devices: u32,
        topology: FabricTopology,
    ) -> Result<(), FaultPlanError> {
        let valid: std::collections::HashSet<(u32, u32)> =
            topology.links(devices).into_iter().collect();
        let mut seen = std::collections::HashSet::new();
        for l in &self.fabric.links {
            let pair = (l.a.min(l.b), l.a.max(l.b));
            if !valid.contains(&pair) {
                return Err(FaultPlanError::FabricLinkUnknown {
                    a: pair.0,
                    b: pair.1,
                });
            }
            if !seen.insert(pair) {
                return Err(FaultPlanError::FabricDuplicateLink {
                    a: pair.0,
                    b: pair.1,
                });
            }
            if let LinkFaultKind::Flaky { drop_prob } = l.kind {
                check_prob(drop_prob)?;
            }
        }
        let mut dead_devs = std::collections::HashSet::new();
        for d in &self.fabric.devices {
            if d.device >= devices {
                return Err(FaultPlanError::DeviceOutOfRange {
                    device: d.device,
                    num_devices: devices,
                });
            }
            if !dead_devs.insert(d.device) {
                return Err(FaultPlanError::DeviceOutOfRange {
                    device: d.device,
                    num_devices: devices,
                });
            }
        }
        if self.fabric.dead_switch.is_some() && topology.switch_node(devices).is_none() {
            return Err(FaultPlanError::SwitchNotInTopology);
        }
        Ok(())
    }

    /// The undirected edges `(low_router, high_router)` of a `width`×`height`
    /// mesh that are dead in *both* directions once every onset has passed —
    /// the edges connectivity must survive without. A one-way dead link leaves
    /// its edge usable (the reverse direction still moves flits).
    pub fn dead_undirected_edges(&self, width: u32, height: u32) -> Vec<(u32, u32)> {
        let dead: std::collections::HashSet<(u32, Direction)> = self
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
            .map(|l| (l.router, l.dir))
            .collect();
        let mut edges = Vec::new();
        for &(router, dir) in &dead {
            let Some(nb) = dir.neighbour(router, width, height) else {
                continue;
            };
            if dead.contains(&(nb, dir.opposite())) {
                edges.push((router.min(nb), router.max(nb)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Generates a random plan from `cfg`, deterministically in `cfg.seed`.
    ///
    /// Dead links are chosen so the surviving mesh remains connected: edges
    /// are visited in a seeded random order and an edge whose removal would
    /// disconnect the graph is skipped. The requested `dead_link_fraction` is
    /// therefore an upper bound near the spanning-tree limit.
    pub fn generate(cfg: &FaultGenConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6e6f_635f_6661_756c);
        let (w, h) = (cfg.width, cfg.height);

        // Undirected edges of the mesh, in a fixed base order.
        let mut edges: Vec<(u32, Direction)> = Vec::new();
        for r in 0..w * h {
            for dir in [Direction::East, Direction::North] {
                if dir.neighbour(r, w, h).is_some() {
                    edges.push((r, dir));
                }
            }
        }
        shuffle(&mut edges, &mut rng);

        let target_dead = ((edges.len() as f64) * cfg.dead_link_fraction).round() as usize;
        let mut dead_edges: Vec<(u32, u32)> = Vec::new();
        let mut links: Vec<LinkFault> = Vec::new();
        let mut killed = 0usize;
        for &(r, dir) in &edges {
            if killed >= target_dead {
                break;
            }
            let n = dir.neighbour(r, w, h).expect("edge list is on-die");
            let mut candidate = dead_edges.clone();
            candidate.push((r.min(n), r.max(n)));
            if !mesh_connected(w, h, &candidate) {
                continue; // would partition the mesh; keep this edge alive
            }
            dead_edges = candidate;
            let onset = draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng);
            links.push(LinkFault {
                router: r,
                dir,
                kind: LinkFaultKind::Dead,
                onset,
            });
            links.push(LinkFault {
                router: n,
                dir: dir.opposite(),
                kind: LinkFaultKind::Dead,
                onset,
            });
            killed += 1;
        }

        // Correlated regional failure: concentrate extra dead links inside a
        // Manhattan disc around the region centre, with the same
        // connectivity guarantee as the die-wide pass.
        if let Some(region) = cfg.region {
            let in_region = |r: u32| manhattan(r, region.center.min(w * h - 1), w) <= region.radius;
            let region_edges: Vec<(u32, Direction)> = edges
                .iter()
                .copied()
                .filter(|&(r, dir)| in_region(r) && dir.neighbour(r, w, h).is_some_and(in_region))
                .collect();
            let target = ((region_edges.len() as f64) * region.dead_fraction).round() as usize;
            let mut region_killed = 0usize;
            for &(r, dir) in &region_edges {
                if region_killed >= target {
                    break;
                }
                let n = dir.neighbour(r, w, h).expect("edge list is on-die");
                let edge = (r.min(n), r.max(n));
                if dead_edges.contains(&edge) {
                    continue; // already dead from the die-wide pass
                }
                let mut candidate = dead_edges.clone();
                candidate.push(edge);
                if !mesh_connected(w, h, &candidate) {
                    continue;
                }
                dead_edges = candidate;
                let onset = draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng);
                links.push(LinkFault {
                    router: r,
                    dir,
                    kind: LinkFaultKind::Dead,
                    onset,
                });
                links.push(LinkFault {
                    router: n,
                    dir: dir.opposite(),
                    kind: LinkFaultKind::Dead,
                    onset,
                });
                region_killed += 1;
            }
        }

        // Flaky links on surviving edges.
        let mut flaky_dirs: std::collections::HashSet<(u32, Direction)> =
            std::collections::HashSet::new();
        let mut flaky = 0u32;
        for &(r, dir) in &edges {
            if flaky >= cfg.flaky_links {
                break;
            }
            let n = dir.neighbour(r, w, h).expect("edge list is on-die");
            if dead_edges.contains(&(r.min(n), r.max(n))) {
                continue;
            }
            links.push(LinkFault {
                router: r,
                dir,
                kind: LinkFaultKind::Flaky {
                    drop_prob: cfg.flaky_drop_prob,
                },
                onset: draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng),
            });
            flaky_dirs.insert((r, dir));
            flaky += 1;
        }

        // Flaky-link burst: grow a contiguous cluster of surviving directed
        // links outward from a random router; every link in the cluster
        // shares the burst's drop probability and onset.
        if let Some(burst) = cfg.burst {
            let start = rng.gen_range(0..w * h);
            let mut seen = vec![false; (w * h) as usize];
            let mut frontier = VecDeque::from([start]);
            seen[start as usize] = true;
            let mut emitted = 0u32;
            'grow: while let Some(r) = frontier.pop_front() {
                for dir in Direction::ALL {
                    if emitted >= burst.links {
                        break 'grow;
                    }
                    let Some(n) = dir.neighbour(r, w, h) else {
                        continue;
                    };
                    if !seen[n as usize] {
                        seen[n as usize] = true;
                        frontier.push_back(n);
                    }
                    if dead_edges.contains(&(r.min(n), r.max(n))) || !flaky_dirs.insert((r, dir)) {
                        continue; // dead edge or already flaky: not a new burst member
                    }
                    links.push(LinkFault {
                        router: r,
                        dir,
                        kind: LinkFaultKind::Flaky {
                            drop_prob: burst.drop_prob,
                        },
                        onset: burst.onset,
                    });
                    emitted += 1;
                }
            }
        }

        // Stalled routers (distinct, anywhere on the die).
        let mut routers = Vec::new();
        let mut stalled = std::collections::HashSet::new();
        while (routers.len() as u32) < cfg.stalled_routers.min(w * h) {
            let r = rng.gen_range(0..w * h);
            if stalled.insert(r) {
                routers.push(RouterStall {
                    router: r,
                    onset: draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng),
                    duration: cfg.stall_duration,
                });
            }
        }
        routers.sort_unstable_by_key(|s| s.router);

        // Disabled slices (distinct, never all of them).
        let mut disabled_slices = Vec::new();
        if cfg.num_slices > 1 {
            let max_off = cfg.disabled_slice_count.min(cfg.num_slices - 1);
            let mut off = std::collections::HashSet::new();
            while (disabled_slices.len() as u32) < max_off {
                let s = rng.gen_range(0..cfg.num_slices);
                if off.insert(s) {
                    disabled_slices.push(s);
                }
            }
            disabled_slices.sort_unstable();
        }

        // Inter-device fabric faults. The whole block is skipped (zero RNG
        // draws) for single-die configs, keeping pre-fabric plans
        // bit-identical for old seeds.
        let mut fabric = FabricFaults::default();
        if cfg.devices >= 2 {
            // Dead devices first (device 0 always survives): their fabric
            // ports are gone anyway, so link faults concentrate on the
            // surviving fabric.
            let mut dead_devs: Vec<u32> = Vec::new();
            while (dead_devs.len() as u32) < cfg.dead_devices.min(cfg.devices.saturating_sub(2)) {
                let d = 1 + rng.gen_range(0..cfg.devices - 1);
                if !dead_devs.contains(&d) {
                    dead_devs.push(d);
                }
            }
            dead_devs.sort_unstable();
            for &d in &dead_devs {
                fabric.devices.push(DeviceFault {
                    device: d,
                    onset: draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng),
                });
            }

            // Dead fabric links, keeping the surviving devices connected so
            // generated plans are survivable by failover (explicit
            // partitions are built by hand, not drawn).
            let mut fabric_edges = cfg.fabric_topology.links(cfg.devices);
            shuffle(&mut fabric_edges, &mut rng);
            let mut dead_links: Vec<(u32, u32)> = Vec::new();
            for &(a, b) in &fabric_edges {
                if (dead_links.len() as u32) >= cfg.dead_fabric_links {
                    break;
                }
                let mut candidate = dead_links.clone();
                candidate.push((a, b));
                if !fabric_connected_with(
                    cfg.devices,
                    cfg.fabric_topology,
                    &candidate,
                    cfg.dead_switch,
                    &dead_devs,
                ) {
                    continue; // would sever a surviving device
                }
                dead_links = candidate;
                fabric.links.push(FabricLinkFault {
                    a,
                    b,
                    kind: LinkFaultKind::Dead,
                    onset: draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng),
                });
            }

            // Flaky fabric links on the surviving edges.
            let mut flaky = 0u32;
            for &(a, b) in &fabric_edges {
                if flaky >= cfg.flaky_fabric_links {
                    break;
                }
                if dead_links.contains(&(a, b)) {
                    continue;
                }
                fabric.links.push(FabricLinkFault {
                    a,
                    b,
                    kind: LinkFaultKind::Flaky {
                        drop_prob: cfg.fabric_flaky_drop_prob,
                    },
                    onset: draw_onset(cfg.onset, cfg.onset_storm_span, &mut rng),
                });
                flaky += 1;
            }

            if cfg.dead_switch && cfg.fabric_topology == FabricTopology::Switch {
                fabric.dead_switch = Some(cfg.onset);
            }
        }

        Self {
            seed: cfg.seed,
            sweep: cfg.sweep.clone(),
            disabled_slices,
            links,
            routers,
            transient: TransientFaults {
                drop_prob: cfg.transient_drop_prob,
                corrupt_prob: cfg.transient_corrupt_prob,
                onset: cfg.onset,
            },
            fabric,
        }
    }

    /// Validates `cfg` and then generates, so a bad knob surfaces as a typed
    /// error instead of an invalid (or silently clamped) plan.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] from [`FaultGenConfig::validate`].
    pub fn try_generate(cfg: &FaultGenConfig) -> Result<Self, FaultPlanError> {
        cfg.validate()?;
        Ok(Self::generate(cfg))
    }

    /// Serialises the plan as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Parse`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, FaultPlanError> {
        serde_json::to_string_pretty(self).map_err(|e| FaultPlanError::Parse(e.to_string()))
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Parse`] on malformed input. An empty (or
    /// whitespace-only) document gets its own diagnostic naming the fields a
    /// plan must carry, so `faults check` on a truncated file says what is
    /// missing instead of a bare parser error.
    pub fn from_json(s: &str) -> Result<Self, FaultPlanError> {
        if s.trim().is_empty() {
            return Err(FaultPlanError::Parse(
                "plan file is empty — expected a JSON object with fields `seed`, `sweep`, \
                 `disabled_slices`, `links`, `routers`, `transient`"
                    .to_string(),
            ));
        }
        serde_json::from_str(s).map_err(|e| FaultPlanError::Parse(e.to_string()))
    }

    /// Writes the plan to `path` as JSON, atomically: a crash mid-save
    /// leaves either the old plan or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FaultPlanError> {
        let json = self.to_json()?;
        fsio::atomic_write(path.as_ref(), (json + "\n").as_bytes())
            .map_err(|e| FaultPlanError::Io(e.to_string()))
    }

    /// Reads a plan from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Io`] / [`FaultPlanError::Parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FaultPlanError> {
        let text = std::fs::read_to_string(path).map_err(|e| FaultPlanError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// One-line human summary of what the plan injects.
    pub fn summary(&self) -> String {
        let dead = self
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
            .count();
        let flaky = self.links.len() - dead;
        let mut s = format!(
            "seed={} sweep={} slices_off={} dead_dirs={} flaky_dirs={} stalls={} drop={:.4} corrupt={:.4}",
            self.seed,
            self.sweep.as_ref().map_or(0, FloorSweep::num_disabled),
            self.disabled_slices.len(),
            dead,
            flaky,
            self.routers.len(),
            self.transient.drop_prob,
            self.transient.corrupt_prob,
        );
        if !self.fabric.is_empty() {
            let fdead = self.fabric.dead_links().len();
            s.push_str(&format!(
                " fabric_dead={} fabric_flaky={} dead_devices={} dead_switch={}",
                fdead,
                self.fabric.links.len() - fdead,
                self.fabric.devices.len(),
                if self.fabric.dead_switch.is_some() {
                    "yes"
                } else {
                    "no"
                },
            ));
        }
        s
    }
}

/// Configuration for [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultGenConfig {
    /// Plan seed (drives both generation and later simulation draws).
    pub seed: u64,
    /// Mesh width in routers.
    pub width: u32,
    /// Mesh height in routers.
    pub height: u32,
    /// Fraction of undirected mesh links to kill (connectivity permitting).
    pub dead_link_fraction: f64,
    /// Number of directed links made flaky.
    pub flaky_links: u32,
    /// Drop probability of each flaky link.
    pub flaky_drop_prob: f64,
    /// Number of routers stalled.
    pub stalled_routers: u32,
    /// Stall duration in cycles.
    pub stall_duration: u64,
    /// Die-wide transient drop probability.
    pub transient_drop_prob: f64,
    /// Die-wide transient corruption probability.
    pub transient_corrupt_prob: f64,
    /// Onset cycle for every injected fault.
    pub onset: u64,
    /// Onset storm: when non-zero, each fault's onset is drawn independently
    /// from `onset ..= onset + onset_storm_span` instead of all faults
    /// manifesting at the same cycle — a rolling wave of failures that
    /// forces repeated route-table recomputation mid-traffic. Zero keeps the
    /// legacy shared onset (and bit-identical plans for old configs).
    pub onset_storm_span: u64,
    /// Optional correlated regional failure (a cluster of dead links around
    /// one router) layered on top of the die-wide dead-link fraction.
    pub region: Option<RegionFault>,
    /// Optional flaky-link burst (a contiguous cluster of links that all
    /// turn flaky at one cycle) layered on top of the independent flaky
    /// links.
    pub burst: Option<FlakyBurst>,
    /// L2 slices on the target device (0 = don't disable slices).
    pub num_slices: u32,
    /// Number of slices to disable.
    pub disabled_slice_count: u32,
    /// Optional floorsweep to embed in the plan.
    pub sweep: Option<FloorSweep>,
    /// Devices coupled over the inter-device fabric (0 or 1 = single-die
    /// plan, no fabric faults generated).
    pub devices: u32,
    /// Shape of the inter-device fabric (ignored when `devices < 2`).
    pub fabric_topology: FabricTopology,
    /// Number of fabric links to kill (connectivity among surviving devices
    /// permitting, like [`FaultGenConfig::dead_link_fraction`]).
    pub dead_fabric_links: u32,
    /// Number of fabric links made flaky.
    pub flaky_fabric_links: u32,
    /// Per-crossing drop probability of each flaky fabric link.
    pub fabric_flaky_drop_prob: f64,
    /// Whole devices to lose (device 0 always survives as the traffic
    /// anchor; at least two devices stay alive).
    pub dead_devices: u32,
    /// Kill the central switch (only valid for
    /// [`FabricTopology::Switch`]); severs every device at once.
    pub dead_switch: bool,
}

impl FaultGenConfig {
    /// A benign config for a `width`×`height` mesh: everything off.
    pub fn benign(seed: u64, width: u32, height: u32) -> Self {
        Self {
            seed,
            width,
            height,
            dead_link_fraction: 0.0,
            flaky_links: 0,
            flaky_drop_prob: 0.0,
            stalled_routers: 0,
            stall_duration: 0,
            transient_drop_prob: 0.0,
            transient_corrupt_prob: 0.0,
            onset: 0,
            onset_storm_span: 0,
            region: None,
            burst: None,
            num_slices: 0,
            disabled_slice_count: 0,
            sweep: None,
            devices: 0,
            fabric_topology: FabricTopology::Ring,
            dead_fabric_links: 0,
            flaky_fabric_links: 0,
            fabric_flaky_drop_prob: 0.0,
            dead_devices: 0,
            dead_switch: false,
        }
    }

    /// Validates every generator knob before a plan is built, naming the
    /// offending field: mesh dimensions non-zero, all fractions and
    /// probabilities in `[0, 1]`, region centre on the die, and the slice
    /// request leaving at least one slice alive. `faults gen` runs this so a
    /// typo like `--flaky-prob 1.5` is a hard error instead of a silently
    /// saved invalid plan.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let field = |field: &'static str, value: f64| FaultPlanError::BadGenField { field, value };
        if self.width == 0 || self.height == 0 {
            return Err(field(if self.width == 0 { "width" } else { "height" }, 0.0));
        }
        if !(0.0..=1.0).contains(&self.dead_link_fraction) {
            return Err(field("dead_link_fraction", self.dead_link_fraction));
        }
        if !(0.0..=1.0).contains(&self.flaky_drop_prob) {
            return Err(field("flaky_drop_prob", self.flaky_drop_prob));
        }
        if !(0.0..=1.0).contains(&self.transient_drop_prob) {
            return Err(field("transient_drop_prob", self.transient_drop_prob));
        }
        if !(0.0..=1.0).contains(&self.transient_corrupt_prob) {
            return Err(field("transient_corrupt_prob", self.transient_corrupt_prob));
        }
        if let Some(region) = &self.region {
            if !(0.0..=1.0).contains(&region.dead_fraction) {
                return Err(field("region.dead_fraction", region.dead_fraction));
            }
            if region.center >= self.width * self.height {
                return Err(FaultPlanError::RouterOutOfRange {
                    router: region.center,
                    num_routers: self.width * self.height,
                });
            }
        }
        if let Some(burst) = &self.burst {
            if !(0.0..=1.0).contains(&burst.drop_prob) {
                return Err(field("burst.drop_prob", burst.drop_prob));
            }
        }
        if self.num_slices > 0 && self.disabled_slice_count >= self.num_slices {
            return Err(FaultPlanError::AllSlicesDisabled);
        }
        if !(0.0..=1.0).contains(&self.fabric_flaky_drop_prob) {
            return Err(field("fabric_flaky_drop_prob", self.fabric_flaky_drop_prob));
        }
        if self.devices >= 2 {
            if !self.fabric_topology.supports_devices(self.devices) {
                return Err(field("devices", f64::from(self.devices)));
            }
            // Device 0 anchors traffic and at least two devices must
            // survive, or every cross-device transfer is partitioned by
            // construction.
            if self.dead_devices > self.devices.saturating_sub(2) {
                return Err(field("dead_devices", f64::from(self.dead_devices)));
            }
            if self.dead_switch && self.fabric_topology != FabricTopology::Switch {
                return Err(field("dead_switch", 1.0));
            }
        } else if self.dead_fabric_links > 0
            || self.flaky_fabric_links > 0
            || self.dead_devices > 0
            || self.dead_switch
        {
            return Err(field("devices", f64::from(self.devices)));
        }
        Ok(())
    }
}

/// Per-fault onset draw: the shared onset when no storm is configured,
/// otherwise uniform over the storm window. The `span == 0` fast path makes
/// no RNG draw, keeping legacy configs bit-identical.
fn draw_onset(base: u64, span: u64, rng: &mut StdRng) -> u64 {
    if span == 0 {
        base
    } else {
        base + rng.gen_range(0..=span)
    }
}

/// Manhattan distance between two routers on a `width`-wide mesh.
fn manhattan(a: u32, b: u32, width: u32) -> u32 {
    let (ax, ay) = (a % width, a / width);
    let (bx, by) = (b % width, b / width);
    ax.abs_diff(bx) + ay.abs_diff(by)
}

fn check_prob(p: f64) -> Result<(), FaultPlanError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultPlanError::BadProbability(p));
    }
    Ok(())
}

/// BFS connectivity of the mesh with `dead_edges` (undirected, as
/// `(low, high)` pairs) removed.
pub fn mesh_connected(width: u32, height: u32, dead_edges: &[(u32, u32)]) -> bool {
    let n = (width * height) as usize;
    if n == 0 {
        return true;
    }
    let dead: std::collections::HashSet<(u32, u32)> = dead_edges.iter().copied().collect();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0u32]);
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(r) = queue.pop_front() {
        for dir in Direction::ALL {
            let Some(nb) = dir.neighbour(r, width, height) else {
                continue;
            };
            if dead.contains(&(r.min(nb), r.max(nb))) || seen[nb as usize] {
                continue;
            }
            seen[nb as usize] = true;
            reached += 1;
            queue.push_back(nb);
        }
    }
    reached == n
}

/// BFS connectivity of the surviving inter-device fabric: with `plan`'s dead
/// fabric links, dead switch, and dead devices all at full onset removed,
/// can every *surviving* device still reach every other? A job with zero or
/// one surviving device is vacuously connected. The `faults check` CLI
/// reports this alongside [`mesh_connected`].
pub fn fabric_connected(devices: u32, topology: FabricTopology, plan: &FaultPlan) -> bool {
    fabric_connected_with(
        devices,
        topology,
        &plan.fabric.dead_links(),
        plan.fabric.dead_switch.is_some(),
        &plan.fabric.dead_devices(),
    )
}

/// [`fabric_connected`] over explicit dead-link / dead-switch / dead-device
/// sets (the generator's incremental form).
pub fn fabric_connected_with(
    devices: u32,
    topology: FabricTopology,
    dead_links: &[(u32, u32)],
    dead_switch: bool,
    dead_devices: &[u32],
) -> bool {
    let alive: Vec<u32> = (0..devices).filter(|d| !dead_devices.contains(d)).collect();
    if alive.len() <= 1 {
        return true;
    }
    let dead: std::collections::HashSet<(u32, u32)> = dead_links.iter().copied().collect();
    let node_alive = |n: u32| {
        if Some(n) == topology.switch_node(devices) {
            !dead_switch
        } else {
            !dead_devices.contains(&n)
        }
    };
    let mut adj: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (a, b) in topology.links(devices) {
        if dead.contains(&(a, b)) || !node_alive(a) || !node_alive(b) {
            continue;
        }
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let start = alive[0];
    let mut seen = std::collections::HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &nb in adj.get(&n).into_iter().flatten() {
            if seen.insert(nb) {
                queue.push_back(nb);
            }
        }
    }
    alive.iter().all(|d| seen.contains(d))
}

/// Fisher–Yates shuffle with the shim RNG (the shim has no `SliceRandom`).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degraded_cfg(seed: u64) -> FaultGenConfig {
        FaultGenConfig {
            dead_link_fraction: 0.05,
            flaky_links: 2,
            flaky_drop_prob: 0.01,
            stalled_routers: 1,
            stall_duration: 64,
            transient_drop_prob: 0.001,
            transient_corrupt_prob: 0.0005,
            num_slices: 80,
            disabled_slice_count: 3,
            ..FaultGenConfig::benign(seed, 6, 6)
        }
    }

    #[test]
    fn benign_plan_is_benign() {
        let plan = FaultPlan::none();
        assert!(plan.is_benign());
        assert!(!plan.has_probabilistic_faults());
        plan.validate_for_mesh(6, 6).unwrap();
        plan.validate_for_slices(80).unwrap();
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = FaultPlan::generate(&degraded_cfg(7));
        let b = FaultPlan::generate(&degraded_cfg(7));
        let c = FaultPlan::generate(&degraded_cfg(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_plans_keep_the_mesh_connected() {
        for seed in 0..20 {
            let mut cfg = degraded_cfg(seed);
            cfg.dead_link_fraction = 0.3; // aggressive: forces skips
            let plan = FaultPlan::generate(&cfg);
            plan.validate_for_mesh(6, 6).unwrap();
            assert!(mesh_connected(6, 6, &plan.dead_undirected_edges(6, 6)));
        }
    }

    #[test]
    fn dead_links_are_emitted_in_both_directions() {
        let mut cfg = degraded_cfg(3);
        cfg.flaky_links = 0;
        let plan = FaultPlan::generate(&cfg);
        let dead: Vec<_> = plan
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
            .collect();
        assert!(!dead.is_empty());
        assert_eq!(dead.len() % 2, 0);
        assert_eq!(plan.dead_undirected_edges(6, 6).len(), dead.len() / 2);
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = FaultPlan::generate(&degraded_cfg(11));
        let json = plan.to_json().unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            router: 99,
            dir: Direction::East,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        assert!(matches!(
            plan.validate_for_mesh(6, 6),
            Err(FaultPlanError::RouterOutOfRange { .. })
        ));

        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            router: 5, // east edge of row 0 on a 6-wide mesh
            dir: Direction::East,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        assert!(matches!(
            plan.validate_for_mesh(6, 6),
            Err(FaultPlanError::LinkOffEdge { .. })
        ));

        let mut plan = FaultPlan::none();
        plan.transient.drop_prob = 1.5;
        assert!(matches!(
            plan.validate_for_mesh(6, 6),
            Err(FaultPlanError::BadProbability(_))
        ));

        let mut plan = FaultPlan::none();
        plan.disabled_slices = vec![1, 1];
        assert!(matches!(
            plan.validate_for_slices(4),
            Err(FaultPlanError::DuplicateSlice(1))
        ));
        plan.disabled_slices = vec![0, 1, 2, 3];
        assert!(matches!(
            plan.validate_for_slices(4),
            Err(FaultPlanError::AllSlicesDisabled)
        ));
    }

    #[test]
    fn disconnecting_plan_is_rejected() {
        // Cut router 0 (corner) off entirely: kill both its links.
        let mut plan = FaultPlan::none();
        for (r, dir) in [(0, Direction::East), (0, Direction::North)] {
            let n = dir.neighbour(r, 6, 6).unwrap();
            plan.links.push(LinkFault {
                router: r,
                dir,
                kind: LinkFaultKind::Dead,
                onset: 0,
            });
            plan.links.push(LinkFault {
                router: n,
                dir: dir.opposite(),
                kind: LinkFaultKind::Dead,
                onset: 0,
            });
        }
        assert_eq!(
            plan.validate_for_mesh(6, 6),
            Err(FaultPlanError::MeshDisconnected)
        );
    }

    #[test]
    fn one_way_dead_link_does_not_count_as_a_dead_edge() {
        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            router: 0,
            dir: Direction::East,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        assert!(plan.dead_undirected_edges(6, 6).is_empty());
        plan.validate_for_mesh(6, 6).unwrap();
    }

    #[test]
    fn neighbour_arithmetic_matches_the_grid() {
        assert_eq!(Direction::East.neighbour(0, 6, 6), Some(1));
        assert_eq!(Direction::North.neighbour(0, 6, 6), Some(6));
        assert_eq!(Direction::South.neighbour(0, 6, 6), None);
        assert_eq!(Direction::West.neighbour(0, 6, 6), None);
        assert_eq!(Direction::South.neighbour(6, 6, 6), Some(0));
        for dir in Direction::ALL {
            assert_eq!(dir.opposite().opposite(), dir);
        }
    }

    #[test]
    fn onset_storm_scatters_onsets_within_the_window() {
        let mut cfg = degraded_cfg(5);
        cfg.dead_link_fraction = 0.15;
        cfg.onset = 100;
        cfg.onset_storm_span = 500;
        let plan = FaultPlan::generate(&cfg);
        plan.validate_for_mesh(6, 6).unwrap();
        let onsets: Vec<u64> = plan.links.iter().map(|l| l.onset).collect();
        assert!(onsets.iter().all(|&o| (100..=600).contains(&o)));
        let distinct: std::collections::HashSet<u64> = onsets.iter().copied().collect();
        assert!(distinct.len() > 1, "storm must scatter onsets: {onsets:?}");
        // Both directions of a physically dead edge die at the same cycle.
        for l in plan
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Dead))
        {
            let n = l.dir.neighbour(l.router, 6, 6).unwrap();
            let twin = plan
                .links
                .iter()
                .find(|t| t.router == n && t.dir == l.dir.opposite())
                .expect("dead links come in pairs");
            assert_eq!(l.onset, twin.onset);
        }
    }

    #[test]
    fn regional_failure_concentrates_dead_links_and_stays_connected() {
        let region = RegionFault {
            center: 14, // (2, 2) on a 6-wide mesh
            radius: 2,
            dead_fraction: 0.5,
        };
        let plan = FaultPlan::generate(&FaultGenConfig {
            region: Some(region),
            ..FaultGenConfig::benign(21, 6, 6)
        });
        plan.validate_for_mesh(6, 6).unwrap();
        let dead = plan.dead_undirected_edges(6, 6);
        assert!(!dead.is_empty(), "a half-dead region must kill something");
        for &(a, b) in &dead {
            assert!(manhattan(a, 14, 6) <= 2 && manhattan(b, 14, 6) <= 2);
        }
        assert!(mesh_connected(6, 6, &dead));
    }

    #[test]
    fn flaky_burst_is_contiguous_and_shares_the_onset() {
        let burst = FlakyBurst {
            links: 5,
            drop_prob: 0.4,
            onset: 77,
        };
        let plan = FaultPlan::generate(&FaultGenConfig {
            burst: Some(burst),
            ..FaultGenConfig::benign(9, 6, 6)
        });
        plan.validate_for_mesh(6, 6).unwrap();
        let flaky: Vec<_> = plan
            .links
            .iter()
            .filter(|l| matches!(l.kind, LinkFaultKind::Flaky { .. }))
            .collect();
        assert_eq!(flaky.len(), 5);
        assert!(flaky.iter().all(|l| l.onset == 77));
        // Contiguity: the routers touched by the burst form one connected
        // patch of the mesh.
        let mut touched: Vec<u32> = flaky.iter().map(|l| l.router).collect();
        touched.sort_unstable();
        touched.dedup();
        for window in touched.windows(2) {
            assert!(
                touched
                    .iter()
                    .any(|&o| o != window[1] && manhattan(o, window[1], 6) <= 1),
                "burst routers must be adjacent: {touched:?}"
            );
        }
    }

    #[test]
    fn widened_fields_default_benign_and_keep_old_plans_identical() {
        // A config that never touches the new knobs must produce the same
        // plan it did before they existed (no extra RNG draws).
        let plan = FaultPlan::generate(&degraded_cfg(7));
        let again = FaultPlan::generate(&degraded_cfg(7));
        assert_eq!(plan, again);
        assert_eq!(FaultGenConfig::benign(1, 4, 4).onset_storm_span, 0);
        assert!(FaultGenConfig::benign(1, 4, 4).region.is_none());
        assert!(FaultGenConfig::benign(1, 4, 4).burst.is_none());
    }

    #[test]
    fn generator_validation_names_the_offending_field() {
        let mut cfg = FaultGenConfig::benign(1, 6, 6);
        cfg.flaky_drop_prob = 1.5;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(
            err,
            FaultPlanError::BadGenField {
                field: "flaky_drop_prob",
                ..
            }
        ));
        assert!(err.to_string().contains("flaky_drop_prob"));
        assert!(FaultPlan::try_generate(&cfg).is_err());

        let mut cfg = FaultGenConfig::benign(1, 6, 6);
        cfg.region = Some(RegionFault {
            center: 99,
            radius: 1,
            dead_fraction: 0.1,
        });
        assert!(matches!(
            cfg.validate(),
            Err(FaultPlanError::RouterOutOfRange { router: 99, .. })
        ));

        let mut cfg = FaultGenConfig::benign(1, 6, 6);
        cfg.num_slices = 4;
        cfg.disabled_slice_count = 4;
        assert_eq!(cfg.validate(), Err(FaultPlanError::AllSlicesDisabled));

        assert!(FaultGenConfig::benign(1, 6, 6).validate().is_ok());
        assert!(FaultPlan::try_generate(&degraded_cfg(3)).is_ok());
    }

    #[test]
    fn empty_plan_file_gets_a_named_field_diagnostic() {
        let err = FaultPlan::from_json("").unwrap_err();
        assert!(err.to_string().contains("plan file is empty"));
        assert!(err.to_string().contains("`seed`"));
        let err = FaultPlan::from_json("   \n\t ").unwrap_err();
        assert!(err.to_string().contains("plan file is empty"));
        // Non-empty but wrong JSON still names the first missing field.
        let err = FaultPlan::from_json("{}").unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
    }

    #[test]
    fn gen_config_round_trips_through_json() {
        let cfg = FaultGenConfig {
            onset_storm_span: 64,
            region: Some(RegionFault {
                center: 7,
                radius: 2,
                dead_fraction: 0.3,
            }),
            burst: Some(FlakyBurst {
                links: 4,
                drop_prob: 0.2,
                onset: 10,
            }),
            ..degraded_cfg(13)
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultGenConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn plan_with_sweep_summarises_it() {
        let mut plan = FaultPlan::none();
        plan.sweep = Some(FloorSweep::a100_sku());
        assert!(!plan.is_benign());
        assert!(plan.summary().contains("sweep=12"));
    }

    fn fabric_cfg(seed: u64) -> FaultGenConfig {
        FaultGenConfig {
            devices: 4,
            fabric_topology: FabricTopology::Ring,
            dead_fabric_links: 1,
            flaky_fabric_links: 1,
            fabric_flaky_drop_prob: 0.05,
            ..FaultGenConfig::benign(seed, 4, 4)
        }
    }

    #[test]
    fn pre_fabric_plan_json_still_loads() {
        // A plan file written before the fabric layer existed has no
        // `fabric` key; it must load with an empty fabric section.
        let plan = FaultPlan::generate(&degraded_cfg(3));
        let value: serde::Value = serde_json::from_str(&plan.to_json().unwrap()).unwrap();
        let serde::Value::Object(fields) = value else {
            panic!("plan JSON is an object");
        };
        let legacy = serde_json::to_string(&serde::Value::Object(
            fields.into_iter().filter(|(k, _)| k != "fabric").collect(),
        ))
        .unwrap();
        let reloaded = FaultPlan::from_json(&legacy)
            .unwrap_or_else(|e| panic!("legacy plan rejected: {e}\n{legacy}"));
        assert!(reloaded.fabric.is_empty());
        assert_eq!(reloaded.links, plan.links);
    }

    #[test]
    fn fabric_plan_round_trips_through_json() {
        let plan = FaultPlan::generate(&fabric_cfg(11));
        assert!(!plan.fabric.is_empty());
        let back = FaultPlan::from_json(&plan.to_json().unwrap()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn fabric_generation_is_deterministic_and_connected() {
        for seed in 0..16 {
            let a = FaultPlan::generate(&fabric_cfg(seed));
            let b = FaultPlan::generate(&fabric_cfg(seed));
            assert_eq!(a, b);
            a.validate_for_fabric(4, FabricTopology::Ring).unwrap();
            assert!(
                fabric_connected(4, FabricTopology::Ring, &a),
                "generated fabric plan severs a surviving device (seed {seed})"
            );
        }
    }

    #[test]
    fn fabric_generation_leaves_single_die_plans_unchanged() {
        // Same seed, fabric knobs off: the single-die part of the plan must
        // be bit-identical to a pre-fabric generation (no extra RNG draws).
        let single = FaultPlan::generate(&degraded_cfg(9));
        let multi = FaultPlan::generate(&FaultGenConfig {
            devices: 4,
            ..degraded_cfg(9)
        });
        assert_eq!(single.links, multi.links);
        assert_eq!(single.routers, multi.routers);
        assert_eq!(single.disabled_slices, multi.disabled_slices);
    }

    #[test]
    fn fabric_validation_rejects_bad_plans() {
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(FabricLinkFault {
            a: 0,
            b: 2,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        // 0↔2 is not a ring edge on 4 devices.
        assert_eq!(
            plan.validate_for_fabric(4, FabricTopology::Ring),
            Err(FaultPlanError::FabricLinkUnknown { a: 0, b: 2 })
        );
        // ... but it is a fully-connected edge.
        plan.validate_for_fabric(4, FabricTopology::FullyConnected)
            .unwrap();

        let mut dup = FaultPlan::none();
        for _ in 0..2 {
            dup.fabric.links.push(FabricLinkFault {
                a: 0,
                b: 1,
                kind: LinkFaultKind::Dead,
                onset: 0,
            });
        }
        assert_eq!(
            dup.validate_for_fabric(4, FabricTopology::Ring),
            Err(FaultPlanError::FabricDuplicateLink { a: 0, b: 1 })
        );

        let mut dev = FaultPlan::none();
        dev.fabric.devices.push(DeviceFault {
            device: 9,
            onset: 0,
        });
        assert_eq!(
            dev.validate_for_fabric(4, FabricTopology::Ring),
            Err(FaultPlanError::DeviceOutOfRange {
                device: 9,
                num_devices: 4
            })
        );

        let mut sw = FaultPlan::none();
        sw.fabric.dead_switch = Some(0);
        assert_eq!(
            sw.validate_for_fabric(4, FabricTopology::Ring),
            Err(FaultPlanError::SwitchNotInTopology)
        );
        sw.validate_for_fabric(4, FabricTopology::Switch).unwrap();
    }

    #[test]
    fn fabric_connectivity_reporting() {
        // Ring with one dead link: still connected the long way.
        let mut plan = FaultPlan::none();
        plan.fabric.links.push(FabricLinkFault {
            a: 0,
            b: 1,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        assert!(fabric_connected(4, FabricTopology::Ring, &plan));
        // Two dead ring links partition it.
        plan.fabric.links.push(FabricLinkFault {
            a: 2,
            b: 3,
            kind: LinkFaultKind::Dead,
            onset: 0,
        });
        assert!(!fabric_connected(4, FabricTopology::Ring, &plan));
        // A dead switch severs everything.
        let mut sw = FaultPlan::none();
        sw.fabric.dead_switch = Some(100);
        assert!(!fabric_connected(4, FabricTopology::Switch, &sw));
        // A dead device is excluded, not counted as a partition.
        let mut dev = FaultPlan::none();
        dev.fabric.devices.push(DeviceFault {
            device: 2,
            onset: 0,
        });
        assert!(fabric_connected(4, FabricTopology::FullyConnected, &dev));
    }

    #[test]
    fn fabric_gen_knobs_are_validated() {
        let mut bad = fabric_cfg(1);
        bad.fabric_flaky_drop_prob = 1.5;
        assert!(bad.validate().is_err());
        let mut p2p = fabric_cfg(1);
        p2p.devices = 4;
        p2p.fabric_topology = FabricTopology::PointToPoint;
        assert!(p2p.validate().is_err());
        let mut too_dead = fabric_cfg(1);
        too_dead.dead_devices = 3;
        assert!(too_dead.validate().is_err());
        let mut sw = fabric_cfg(1);
        sw.dead_switch = true;
        assert!(sw.validate().is_err(), "dead switch without a switch");
        sw.fabric_topology = FabricTopology::Switch;
        sw.validate().unwrap();
        let mut orphan = FaultGenConfig::benign(1, 4, 4);
        orphan.dead_fabric_links = 1;
        assert!(orphan.validate().is_err(), "fabric knobs without devices");
    }
}
