//! Deterministic parallel campaign execution.
//!
//! The serial [`LatencyCampaign::run`] sweeps one shared device, so its rows
//! depend on measurement order and cannot be parallelised without changing
//! the result. [`LatencyCampaign::run_par`] instead uses the checkpoint
//! module's row-seeding scheme — every SM row is measured on a *fresh*
//! device seeded from [`row_seed`]`(seed, sm)` — which makes each row a pure
//! function of the campaign parameters and the SM index. Rows can then be
//! computed on any worker in any order and reassembled in index order,
//! bit-identical to the serial
//! [`CheckpointedCampaign::run_to_completion`](crate::CheckpointedCampaign::run_to_completion)
//! for any worker count.

use crate::campaign::LatencyCampaign;
use crate::checkpoint::{device_for_preset, row_seed, CheckpointError};
use gnoc_analysis::{correlation_matrix_par, Summary};
use gnoc_faults::FaultPlan;
use gnoc_microbench::LatencyProbe;
use gnoc_par::WorkerPool;
use gnoc_topo::SmId;

impl LatencyCampaign {
    /// Runs a full row-seeded latency campaign on preset `device`, fanning
    /// per-SM rows across `pool`'s workers.
    ///
    /// The result is bit-identical to the serial checkpointed run of the
    /// same `(device, seed, probe, plan)` — see the module docs — so `--jobs`
    /// is purely a wall-clock knob, never an accuracy knob.
    pub fn run_par(
        device: &str,
        seed: u64,
        probe: &LatencyProbe,
        plan: Option<&FaultPlan>,
        pool: &WorkerPool,
    ) -> Result<Self, CheckpointError> {
        // Probe the preset once for the SM count (and to fail fast on a bad
        // device name or plan before spawning workers).
        let num_sms = device_for_preset(device, seed, plan)?.hierarchy().num_sms();
        let sms: Vec<usize> = (0..num_sms).collect();
        let rows = pool.par_map(&sms, |&sm| -> Result<Vec<f64>, CheckpointError> {
            let mut dev = device_for_preset(device, row_seed(seed, sm), plan)?;
            dev.set_telemetry(pool.telemetry().clone());
            Ok(probe.sm_profile(&mut dev, SmId::new(sm as u32)))
        });
        let matrix = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
        let sm_summaries = matrix.iter().map(|row| Summary::of(row)).collect();
        let correlation = correlation_matrix_par(&matrix, pool);
        Ok(Self {
            matrix,
            sm_summaries,
            correlation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointedCampaign;

    fn quick_probe() -> LatencyProbe {
        LatencyProbe {
            working_set_lines: 2,
            samples: 2,
        }
    }

    #[test]
    fn run_par_matches_serial_checkpointed_run_for_any_job_count() {
        let mut serial = CheckpointedCampaign::new("v100", 7, quick_probe(), None).unwrap();
        let reference = serial.run_to_completion(None).unwrap();
        for jobs in [1, 2, 7] {
            let pool = WorkerPool::new(jobs);
            let par = LatencyCampaign::run_par("v100", 7, &quick_probe(), None, &pool).unwrap();
            assert_eq!(par, reference, "jobs={jobs} must be bit-identical");
        }
    }

    #[test]
    fn run_par_rejects_unknown_devices() {
        let pool = WorkerPool::serial();
        assert!(matches!(
            LatencyCampaign::run_par("b200", 0, &quick_probe(), None, &pool),
            Err(CheckpointError::UnknownDevice(_))
        ));
    }
}
