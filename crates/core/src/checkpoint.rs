//! Checkpointed (killable and resumable) measurement campaigns.
//!
//! A full latency campaign on a large device sweeps every (SM, slice) pair
//! and can run for a long time; a crash near the end loses everything. This
//! module runs the sweep row by row (one SM profile at a time), persisting a
//! JSON checkpoint after each completed row so an interrupted campaign
//! resumes from the last finished SM.
//!
//! **Determinism.** Each row is measured on a *fresh* device seeded from
//! `mix(seed, sm)`, so a row's result depends only on the campaign
//! parameters and the SM index — never on how many rows ran before it or in
//! which process. Killing a checkpointed campaign at any point and resuming
//! therefore reproduces the uninterrupted result bit for bit.
//!
//! ## Checkpoint file format (version 2)
//!
//! ```json
//! {
//!   "version": 2,
//!   "device": "a100fs",
//!   "seed": 42,
//!   "probe": { "working_set_lines": 8, "samples": 12 },
//!   "plan": { ... FaultPlan ... } | null,
//!   "quarantined_sms": [3, 17],
//!   "rows": [[...row 0...], [...row 1...]]
//! }
//! ```
//!
//! `rows[i]` is SM *i*'s completed latency profile; a quarantined SM's row
//! is recorded as an explicit empty placeholder. Resuming validates that
//! `device`, `seed`, `probe`, and `plan` match the requested campaign and
//! continues at row `rows.len()`; version-1 files (which had no quarantine
//! set) are rejected with [`CheckpointError::Version`] rather than guessed
//! at.
//!
//! ## Degraded mode
//!
//! When the health layer has quarantined SMs (their router or slice path is
//! fenced off), [`CheckpointedCampaign::set_quarantined_sms`] removes them
//! from the schedulable set: their rows are skipped with explicit
//! placeholders, and [`CheckpointedCampaign::finish_partial`] salvages a
//! [`LatencyCampaign`] over the measured rows plus a [`CoverageReport`]
//! stating exactly what was not covered. [`CheckpointedCampaign::run_degraded`]
//! adds a per-run deadline budget (a deterministic *row count*, not
//! wall-clock, so runs stay replayable) and salvages whatever was measured
//! when the budget runs out.

use crate::campaign::LatencyCampaign;
// Checkpoint persistence goes through the shared crash-safe writer in
// `crate::fsio` (temp sibling + fsync + rename + directory fsync); the
// resume paths call its `remove_orphan_tmp` to clean up after a kill
// between write and rename.
use crate::fsio::remove_orphan_tmp;
use gnoc_analysis::{correlation_matrix, Summary};
use gnoc_engine::GpuDevice;
use gnoc_faults::FaultPlan;
use gnoc_microbench::LatencyProbe;
use gnoc_telemetry::{TelemetryHandle, TraceEvent, SUBSYSTEM_CAMPAIGN};
use gnoc_topo::{GpuSpec, SmId};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint file version.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Errors from checkpointed campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The preset name is not one of the known devices.
    UnknownDevice(String),
    /// Device construction failed (bad fault plan, sweep, ...).
    Device(String),
    /// Reading or writing the checkpoint file failed.
    Io(String),
    /// The checkpoint file is not valid JSON for this format.
    Parse(String),
    /// The checkpoint file was written by a different format version.
    Version(u32),
    /// The checkpoint's campaign parameters differ from the requested ones;
    /// the field name that differs is included.
    Mismatch(&'static str),
    /// The checkpoint holds more rows than the device has SMs.
    TooManyRows {
        /// Rows found in the checkpoint.
        rows: usize,
        /// SMs on the device.
        sms: usize,
    },
    /// [`CheckpointedCampaign::finish`] was called before every row was
    /// measured.
    Incomplete {
        /// Rows measured so far.
        done: usize,
        /// Rows the campaign needs.
        total: usize,
    },
    /// A quarantined SM index does not exist on the device.
    QuarantinedSm {
        /// The offending SM index.
        sm: u32,
        /// SMs on the device.
        sms: usize,
    },
    /// Every SM is quarantined; the campaign has nothing to measure.
    AllQuarantined,
    /// [`CheckpointedCampaign::finish`] was called on a degraded campaign;
    /// full results do not exist, only the salvageable partial ones.
    Degraded {
        /// Rows actually measured.
        measured: usize,
        /// SMs skipped as quarantined.
        quarantined: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownDevice(name) => write!(
                f,
                "unknown device preset {name:?} (try v100, a100, a100full, a100fs, h100)"
            ),
            Self::Device(e) => write!(f, "device construction failed: {e}"),
            Self::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            Self::Parse(e) => write!(f, "checkpoint parse failed: {e}"),
            Self::Version(v) => write!(
                f,
                "checkpoint version {v} is not supported (expected {CHECKPOINT_VERSION})"
            ),
            Self::Mismatch(field) => write!(
                f,
                "checkpoint was taken with a different campaign parameter: {field}"
            ),
            Self::TooManyRows { rows, sms } => {
                write!(f, "checkpoint has {rows} rows but the device has {sms} SMs")
            }
            Self::Incomplete { done, total } => {
                write!(f, "campaign has unmeasured rows ({done} of {total} done)")
            }
            Self::QuarantinedSm { sm, sms } => {
                write!(
                    f,
                    "quarantined SM {sm} is out of range for a device with {sms} SMs"
                )
            }
            Self::AllQuarantined => write!(f, "every SM is quarantined; nothing to measure"),
            Self::Degraded {
                measured,
                quarantined,
            } => write!(
                f,
                "campaign ran degraded ({measured} rows measured, {quarantined} SMs \
                 quarantined); use finish_partial for the salvaged result"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The spec a device-preset name denotes.
pub fn spec_for_preset(name: &str) -> Result<GpuSpec, CheckpointError> {
    match name {
        "v100" => Ok(GpuSpec::v100()),
        "a100" => Ok(GpuSpec::a100()),
        "a100full" => Ok(GpuSpec::a100_full()),
        "a100fs" => Ok(GpuSpec::a100_floorswept()),
        "h100" => Ok(GpuSpec::h100()),
        other => Err(CheckpointError::UnknownDevice(other.to_string())),
    }
}

/// Builds a preset device with `seed`, applying `plan` when given (its
/// floorsweep, disabled slices, and calibration rescaling included).
pub fn device_for_preset(
    name: &str,
    seed: u64,
    plan: Option<&FaultPlan>,
) -> Result<GpuDevice, CheckpointError> {
    let spec = spec_for_preset(name)?;
    match plan {
        Some(plan) => GpuDevice::with_faults(spec, plan, seed)
            .map_err(|e| CheckpointError::Device(e.to_string())),
        None => {
            GpuDevice::with_seed(spec, seed).map_err(|e| CheckpointError::Device(e.to_string()))
        }
    }
}

/// splitmix64-style row seed: depends only on the campaign seed and the SM
/// index, making every row measurement order-independent — the property that
/// lets [`CheckpointedCampaign`] resume bit-identically and lets the parallel
/// runners compute rows on any worker in any order with identical results.
pub fn row_seed(seed: u64, sm: usize) -> u64 {
    let mut z = seed ^ (sm as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Just the version field — parsed first so that files written by older
/// format versions are rejected with [`CheckpointError::Version`] instead of
/// a confusing missing-field parse error.
#[derive(Debug, Deserialize)]
struct VersionProbe {
    version: u32,
}

/// On-disk checkpoint contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointFile {
    version: u32,
    device: String,
    seed: u64,
    probe: LatencyProbe,
    plan: Option<FaultPlan>,
    quarantined_sms: Vec<u32>,
    rows: Vec<Vec<f64>>,
}

/// Explicit statement of what a (possibly degraded) campaign covered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Rows the full campaign would have (SMs on the device).
    pub total: usize,
    /// Rows actually measured.
    pub measured: usize,
    /// SMs skipped because the health layer quarantined them.
    pub quarantined: Vec<u32>,
    /// Rows never reached (deadline budget ran out before them).
    pub unreached: usize,
}

impl CoverageReport {
    /// Fraction of the device actually measured, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.measured as f64 / self.total as f64
        }
    }

    /// Whether the campaign covered every SM.
    pub fn is_full(&self) -> bool {
        self.measured == self.total
    }
}

/// A latency campaign that runs one SM row at a time and can checkpoint and
/// resume between rows.
#[derive(Debug, Clone)]
pub struct CheckpointedCampaign {
    device: String,
    seed: u64,
    probe: LatencyProbe,
    plan: Option<FaultPlan>,
    /// SMs the health layer has fenced off; their rows are skipped with
    /// explicit empty placeholders. Sorted, deduplicated.
    quarantined_sms: Vec<u32>,
    rows: Vec<Vec<f64>>,
    num_sms: usize,
    telemetry: TelemetryHandle,
}

impl CheckpointedCampaign {
    /// Starts a fresh campaign on preset `device`.
    pub fn new(
        device: &str,
        seed: u64,
        probe: LatencyProbe,
        plan: Option<FaultPlan>,
    ) -> Result<Self, CheckpointError> {
        let dev = device_for_preset(device, seed, plan.as_ref())?;
        Ok(Self {
            device: device.to_string(),
            seed,
            probe,
            plan,
            quarantined_sms: Vec::new(),
            rows: Vec::new(),
            num_sms: dev.hierarchy().num_sms(),
            telemetry: TelemetryHandle::disabled(),
        })
    }

    /// Loads a checkpoint and validates it against the requested campaign
    /// parameters; completed rows carry over.
    pub fn resume(
        path: &Path,
        device: &str,
        seed: u64,
        probe: LatencyProbe,
        plan: Option<FaultPlan>,
    ) -> Result<Self, CheckpointError> {
        remove_orphan_tmp(path);
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let probe_version: VersionProbe =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        if probe_version.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(probe_version.version));
        }
        let file: CheckpointFile =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        if file.device != device {
            return Err(CheckpointError::Mismatch("device"));
        }
        if file.seed != seed {
            return Err(CheckpointError::Mismatch("seed"));
        }
        if file.probe != probe {
            return Err(CheckpointError::Mismatch("probe"));
        }
        if file.plan != plan {
            return Err(CheckpointError::Mismatch("plan"));
        }
        let mut campaign = Self::new(device, seed, probe, plan)?;
        if file.rows.len() > campaign.num_sms {
            return Err(CheckpointError::TooManyRows {
                rows: file.rows.len(),
                sms: campaign.num_sms,
            });
        }
        campaign.set_quarantined_sms(file.quarantined_sms)?;
        campaign.rows = file.rows;
        Ok(campaign)
    }

    /// Resumes from `path` when it exists, otherwise starts fresh.
    pub fn resume_or_new(
        path: &Path,
        device: &str,
        seed: u64,
        probe: LatencyProbe,
        plan: Option<FaultPlan>,
    ) -> Result<Self, CheckpointError> {
        remove_orphan_tmp(path);
        if path.exists() {
            Self::resume(path, device, seed, probe, plan)
        } else {
            Self::new(device, seed, probe, plan)
        }
    }

    /// Attaches telemetry; each row device inherits it, and a
    /// `campaign.checkpoint_rows` counter tracks resumable progress.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Removes `sms` from the schedulable set (their rows will be skipped
    /// with explicit placeholders). The set is sorted and deduplicated.
    ///
    /// A campaign that has already recorded rows is pinned to its quarantine
    /// set: the schedulable set decides *which* SMs the recorded positions
    /// mean, so changing it mid-campaign (or on resume) would silently
    /// reinterpret history. Such a change is rejected with
    /// [`CheckpointError::Mismatch`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::QuarantinedSm`] for an out-of-range SM,
    /// [`CheckpointError::AllQuarantined`] when nothing would remain
    /// schedulable, [`CheckpointError::Mismatch`] when rows exist and the
    /// set differs from the one they were recorded under.
    pub fn set_quarantined_sms(&mut self, sms: Vec<u32>) -> Result<(), CheckpointError> {
        let mut sms = sms;
        sms.sort_unstable();
        sms.dedup();
        if let Some(&sm) = sms.iter().find(|&&sm| sm as usize >= self.num_sms) {
            return Err(CheckpointError::QuarantinedSm {
                sm,
                sms: self.num_sms,
            });
        }
        if sms.len() >= self.num_sms {
            return Err(CheckpointError::AllQuarantined);
        }
        if !self.rows.is_empty() && sms != self.quarantined_sms {
            return Err(CheckpointError::Mismatch("quarantined_sms"));
        }
        self.quarantined_sms = sms;
        Ok(())
    }

    /// The quarantined (skipped) SMs, ascending.
    pub fn quarantined_sms(&self) -> &[u32] {
        &self.quarantined_sms
    }

    /// Whether `sm` is quarantined.
    pub fn is_quarantined(&self, sm: usize) -> bool {
        self.quarantined_sms.binary_search(&(sm as u32)).is_ok()
    }

    /// Rows completed so far.
    pub fn completed_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total rows (SMs on the device).
    pub fn num_sms(&self) -> usize {
        self.num_sms
    }

    /// Whether every row has been measured.
    pub fn is_complete(&self) -> bool {
        self.rows.len() >= self.num_sms
    }

    /// Measures the next SM row on a fresh, row-seeded device; a quarantined
    /// SM's row is recorded as an explicit empty placeholder instead of
    /// being measured. Returns `false` when the campaign was already
    /// complete.
    pub fn step_row(&mut self) -> Result<bool, CheckpointError> {
        let sm = self.rows.len();
        if sm >= self.num_sms {
            return Ok(false);
        }
        if self.is_quarantined(sm) {
            self.rows.push(Vec::new());
            self.telemetry.with(|t| {
                t.registry.counter_add("campaign.skipped_rows", 1);
            });
            self.telemetry.emit_with(|| {
                TraceEvent::new(0, SUBSYSTEM_CAMPAIGN, "row_skipped_quarantined").with("sm", sm)
            });
            return Ok(true);
        }
        let mut dev = device_for_preset(&self.device, row_seed(self.seed, sm), self.plan.as_ref())?;
        dev.set_telemetry(self.telemetry.clone());
        let row = self.probe.sm_profile(&mut dev, SmId::new(sm as u32));
        self.rows.push(row);
        self.telemetry.with(|t| {
            t.registry.counter_add("campaign.checkpoint_rows", 1);
        });
        Ok(true)
    }

    /// Writes the checkpoint (atomically: temp file + rename) to `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let file = CheckpointFile {
            version: CHECKPOINT_VERSION,
            device: self.device.clone(),
            seed: self.seed,
            probe: self.probe,
            plan: self.plan.clone(),
            quarantined_sms: self.quarantined_sms.clone(),
            rows: self.rows.clone(),
        };
        let text = serde_json::to_string_pretty(&file)
            .map_err(|e| CheckpointError::Parse(e.to_string()))?;
        crate::fsio::atomic_write(path, text.as_bytes())
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(())
    }

    /// Runs every remaining row; when `checkpoint` is given, the file is
    /// rewritten after each row so a kill at any point loses at most the row
    /// in progress.
    pub fn run_to_completion(
        &mut self,
        checkpoint: Option<&Path>,
    ) -> Result<LatencyCampaign, CheckpointError> {
        while self.step_row()? {
            if let Some(path) = checkpoint {
                self.save(path)?;
            }
            let done = self.rows.len();
            self.telemetry.emit_with(|| {
                TraceEvent::new(0, SUBSYSTEM_CAMPAIGN, "checkpoint_row")
                    .with("sm", done - 1)
                    .with("of", self.num_sms)
            });
        }
        self.finish()
    }

    /// Parallel [`run_to_completion`](Self::run_to_completion): remaining
    /// rows are measured in batches across `pool`'s workers, each on its own
    /// fresh row-seeded device. Because every row depends only on
    /// `row_seed(seed, sm)`, the result is bit-identical to the serial run
    /// for any worker count. Checkpoints are written after each completed
    /// batch (a kill loses at most one batch instead of one row); with
    /// `jobs() <= 1` this delegates to the serial path, preserving its exact
    /// per-row save cadence.
    pub fn run_to_completion_par(
        &mut self,
        checkpoint: Option<&Path>,
        pool: &gnoc_par::WorkerPool,
    ) -> Result<LatencyCampaign, CheckpointError> {
        if pool.jobs() <= 1 {
            return self.run_to_completion(checkpoint);
        }
        let batch = pool.jobs() * 2;
        while !self.is_complete() {
            let start = self.rows.len();
            let end = (start + batch).min(self.num_sms);
            // Quarantined SMs in the batch get placeholders, not workers.
            let sms: Vec<usize> = (start..end)
                .filter(|&sm| !self.is_quarantined(sm))
                .collect();
            let device = self.device.as_str();
            let probe = self.probe;
            let seed = self.seed;
            let plan = self.plan.as_ref();
            let telemetry = self.telemetry.clone();
            let measured = pool.par_map(&sms, |&sm| -> Result<Vec<f64>, CheckpointError> {
                let mut dev = device_for_preset(device, row_seed(seed, sm), plan)?;
                dev.set_telemetry(telemetry.clone());
                Ok(probe.sm_profile(&mut dev, SmId::new(sm as u32)))
            });
            let mut measured = measured.into_iter();
            for sm in start..end {
                if self.is_quarantined(sm) {
                    self.rows.push(Vec::new());
                    self.telemetry.with(|t| {
                        t.registry.counter_add("campaign.skipped_rows", 1);
                    });
                    continue;
                }
                let row = measured.next().expect("one result per scheduled SM");
                self.rows.push(row?);
                self.telemetry.with(|t| {
                    t.registry.counter_add("campaign.checkpoint_rows", 1);
                });
            }
            if let Some(path) = checkpoint {
                self.save(path)?;
            }
            let done = self.rows.len();
            self.telemetry.emit_with(|| {
                TraceEvent::new(0, SUBSYSTEM_CAMPAIGN, "checkpoint_batch")
                    .with("rows", done)
                    .with("of", self.num_sms)
            });
        }
        self.finish_par(pool)
    }

    /// What the campaign has covered so far.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport {
            total: self.num_sms,
            measured: self.rows.iter().filter(|r| !r.is_empty()).count(),
            quarantined: self.quarantined_sms.clone(),
            unreached: self.num_sms - self.rows.len(),
        }
    }

    /// Degraded-mode driver: runs rows (skipping quarantined SMs) until the
    /// campaign completes or `deadline_rows` *measured* rows have been spent
    /// this run, then salvages whatever exists. The budget is a row count —
    /// deterministic and replay-safe, unlike a wall-clock deadline — and
    /// placeholder rows do not consume it. Checkpoints after every row when
    /// `checkpoint` is given.
    ///
    /// # Errors
    ///
    /// Propagates row-measurement and save errors;
    /// [`CheckpointError::Incomplete`] when the budget expired before a
    /// single row was measured (nothing to salvage).
    pub fn run_degraded(
        &mut self,
        checkpoint: Option<&Path>,
        deadline_rows: Option<usize>,
    ) -> Result<(LatencyCampaign, CoverageReport), CheckpointError> {
        let mut spent = 0usize;
        while !self.is_complete() {
            if deadline_rows.is_some_and(|d| spent >= d) {
                self.telemetry.emit_with(|| {
                    TraceEvent::new(0, SUBSYSTEM_CAMPAIGN, "deadline_exhausted")
                        .with("measured_this_run", spent)
                        .with("rows_done", self.rows.len())
                });
                break;
            }
            let at = self.rows.len();
            if !self.step_row()? {
                break;
            }
            if !self.rows[at].is_empty() {
                spent += 1;
            }
            if let Some(path) = checkpoint {
                self.save(path)?;
            }
        }
        self.finish_partial()
    }

    /// Salvages a [`LatencyCampaign`] from the measured rows only, together
    /// with an explicit [`CoverageReport`] of what is missing. The campaign
    /// matrix then has one row per *measured* SM, in SM order.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incomplete`] when no row has been
    /// measured at all.
    pub fn finish_partial(&self) -> Result<(LatencyCampaign, CoverageReport), CheckpointError> {
        let coverage = self.coverage();
        if coverage.measured == 0 {
            return Err(CheckpointError::Incomplete {
                done: 0,
                total: self.num_sms,
            });
        }
        let matrix: Vec<Vec<f64>> = self
            .rows
            .iter()
            .filter(|r| !r.is_empty())
            .cloned()
            .collect();
        let sm_summaries = matrix.iter().map(|row| Summary::of(row)).collect();
        let correlation = correlation_matrix(&matrix);
        Ok((
            LatencyCampaign {
                matrix,
                sm_summaries,
                correlation,
            },
            coverage,
        ))
    }

    /// Assembles the completed matrix into a [`LatencyCampaign`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incomplete`] when rows are still
    /// unmeasured, or [`CheckpointError::Degraded`] when quarantined SMs
    /// left placeholder rows (use [`CheckpointedCampaign::finish_partial`])
    /// — typed errors rather than panics, so a fuzzer driving campaigns
    /// through arbitrary schedules can never abort the process.
    pub fn finish(&self) -> Result<LatencyCampaign, CheckpointError> {
        self.finish_with(correlation_matrix)
    }

    /// [`finish`](Self::finish) with the correlation matrix fanned out
    /// across `pool`'s workers; bit-identical to the serial assembly.
    pub fn finish_par(
        &self,
        pool: &gnoc_par::WorkerPool,
    ) -> Result<LatencyCampaign, CheckpointError> {
        self.finish_with(|matrix| gnoc_analysis::correlation_matrix_par(matrix, pool))
    }

    fn finish_with(
        &self,
        correlate: impl FnOnce(&[Vec<f64>]) -> Vec<Vec<f64>>,
    ) -> Result<LatencyCampaign, CheckpointError> {
        if !self.is_complete() {
            return Err(CheckpointError::Incomplete {
                done: self.rows.len(),
                total: self.num_sms,
            });
        }
        if !self.quarantined_sms.is_empty() || self.rows.iter().any(|r| r.is_empty()) {
            let coverage = self.coverage();
            return Err(CheckpointError::Degraded {
                measured: coverage.measured,
                quarantined: coverage.quarantined.len(),
            });
        }
        let matrix = self.rows.clone();
        let sm_summaries = matrix.iter().map(|row| Summary::of(row)).collect();
        let correlation = correlate(&matrix);
        Ok(LatencyCampaign {
            matrix,
            sm_summaries,
            correlation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_probe() -> LatencyProbe {
        LatencyProbe {
            working_set_lines: 2,
            samples: 2,
        }
    }

    fn tmp_path_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gnoc-ckpt-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn checkpointed_run_matches_itself_and_row_count() {
        let mut c = CheckpointedCampaign::new("v100", 3, quick_probe(), None).unwrap();
        let result = c.run_to_completion(None).unwrap();
        assert_eq!(result.matrix.len(), 80);
        let mut c2 = CheckpointedCampaign::new("v100", 3, quick_probe(), None).unwrap();
        assert_eq!(c2.run_to_completion(None).unwrap(), result);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let path = tmp_path_file("resume");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference run.
        let mut full = CheckpointedCampaign::new("v100", 9, quick_probe(), None).unwrap();
        let reference = full.run_to_completion(None).unwrap();

        // Run 13 rows, checkpointing, then "die".
        let mut first = CheckpointedCampaign::new("v100", 9, quick_probe(), None).unwrap();
        for _ in 0..13 {
            assert!(first.step_row().unwrap());
        }
        first.save(&path).unwrap();
        drop(first);

        // Resume in a "new process" and finish.
        let mut resumed =
            CheckpointedCampaign::resume(&path, "v100", 9, quick_probe(), None).unwrap();
        assert_eq!(resumed.completed_rows(), 13);
        let result = resumed.run_to_completion(Some(&path)).unwrap();
        assert_eq!(result, reference, "resume must be bit-identical");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_parameters() {
        let path = tmp_path_file("mismatch");
        let _ = std::fs::remove_file(&path);
        let mut c = CheckpointedCampaign::new("v100", 4, quick_probe(), None).unwrap();
        c.step_row().unwrap();
        c.save(&path).unwrap();

        let err = CheckpointedCampaign::resume(&path, "v100", 5, quick_probe(), None).unwrap_err();
        assert_eq!(err, CheckpointError::Mismatch("seed"));
        let err = CheckpointedCampaign::resume(&path, "a100", 4, quick_probe(), None).unwrap_err();
        assert_eq!(err, CheckpointError::Mismatch("device"));
        let other_probe = LatencyProbe {
            working_set_lines: 3,
            samples: 2,
        };
        let err = CheckpointedCampaign::resume(&path, "v100", 4, other_probe, None).unwrap_err();
        assert_eq!(err, CheckpointError::Mismatch("probe"));
        let err =
            CheckpointedCampaign::resume(&path, "v100", 4, quick_probe(), Some(FaultPlan::none()))
                .unwrap_err();
        assert_eq!(err, CheckpointError::Mismatch("plan"));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn floorswept_preset_campaign_runs_in_paper_band() {
        let mut c = CheckpointedCampaign::new("a100fs", 1, quick_probe(), None).unwrap();
        assert_eq!(c.num_sms(), 108, "floor-swept A100 has 108 SMs");
        let result = c.run_to_completion(None).unwrap();
        // The A100 mixes near (~212) and far (~400) partition crossings
        // (paper Fig. 8b), so the all-pairs grand mean sits near 300.
        let mean = result.grand_mean();
        assert!(
            (280.0..320.0).contains(&mean),
            "floor-swept A100 grand mean {mean} outside the calibrated band"
        );
    }

    #[test]
    fn corrupt_or_truncated_checkpoint_is_rejected_not_silently_restarted() {
        let path = tmp_path_file("corrupt");
        let _ = std::fs::remove_file(&path);

        // Corrupt: not JSON at all.
        std::fs::write(&path, "{ this is not json").unwrap();
        let err = CheckpointedCampaign::resume(&path, "v100", 1, quick_probe(), None).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err:?}");
        // resume_or_new must propagate the error, not restart from row 0.
        let err =
            CheckpointedCampaign::resume_or_new(&path, "v100", 1, quick_probe(), None).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err:?}");

        // Truncated: a valid prefix of a real checkpoint.
        let mut c = CheckpointedCampaign::new("v100", 1, quick_probe(), None).unwrap();
        c.step_row().unwrap();
        c.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = CheckpointedCampaign::resume(&path, "v100", 1, quick_probe(), None).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err:?}");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn orphan_tmp_file_is_cleaned_on_resume_and_named_after_the_full_file() {
        let path = tmp_path_file("orphan");
        let _ = std::fs::remove_file(&path);

        let mut c = CheckpointedCampaign::new("v100", 2, quick_probe(), None).unwrap();
        c.step_row().unwrap();
        c.save(&path).unwrap();
        // The temp suffix is appended, so the temp of "x.json" is
        // "x.json.tmp" — never colliding with another campaign's "x.tmp".
        let tmp = crate::fsio::tmp_sibling(&path);
        assert_eq!(
            tmp.file_name().unwrap().to_string_lossy(),
            format!("{}.tmp", path.file_name().unwrap().to_string_lossy())
        );
        assert!(!tmp.exists(), "save must rename the temp away");

        // Simulate a kill between write and rename: an orphan temp remains.
        std::fs::write(&tmp, "partial garbage from a dead process").unwrap();
        let resumed = CheckpointedCampaign::resume(&path, "v100", 2, quick_probe(), None).unwrap();
        assert_eq!(resumed.completed_rows(), 1);
        assert!(!tmp.exists(), "resume must clean the orphan temp");

        // resume_or_new with no real checkpoint also cleans the orphan.
        let _ = std::fs::remove_file(&path);
        std::fs::write(&tmp, "orphan with no checkpoint").unwrap();
        let fresh =
            CheckpointedCampaign::resume_or_new(&path, "v100", 2, quick_probe(), None).unwrap();
        assert_eq!(fresh.completed_rows(), 0);
        assert!(!tmp.exists());
    }

    #[test]
    fn finish_on_an_incomplete_campaign_is_a_typed_error() {
        let mut c = CheckpointedCampaign::new("v100", 1, quick_probe(), None).unwrap();
        c.step_row().unwrap();
        let err = c.finish().unwrap_err();
        assert_eq!(err, CheckpointError::Incomplete { done: 1, total: 80 });
        assert!(err.to_string().contains("1 of 80"));
    }

    #[test]
    fn version_1_checkpoint_is_rejected_with_pinned_message() {
        let path = tmp_path_file("v1");
        let _ = std::fs::remove_file(&path);
        // A syntactically valid version-1 file (no quarantined_sms field).
        std::fs::write(
            &path,
            r#"{"version":1,"device":"v100","seed":1,
               "probe":{"working_set_lines":2,"samples":2},
               "plan":null,"rows":[]}"#,
        )
        .unwrap();
        let err = CheckpointedCampaign::resume(&path, "v100", 1, quick_probe(), None).unwrap_err();
        // The version gate must fire before any field comparison, and its
        // message is pinned: scripts grep for it.
        assert_eq!(err, CheckpointError::Version(1));
        assert_eq!(
            err.to_string(),
            "checkpoint version 1 is not supported (expected 2)"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatch_message_is_pinned() {
        assert_eq!(
            CheckpointError::Mismatch("seed").to_string(),
            "checkpoint was taken with a different campaign parameter: seed"
        );
    }

    #[test]
    fn quarantine_set_validates() {
        let mut c = CheckpointedCampaign::new("v100", 1, quick_probe(), None).unwrap();
        assert_eq!(
            c.set_quarantined_sms(vec![200]).unwrap_err(),
            CheckpointError::QuarantinedSm { sm: 200, sms: 80 }
        );
        assert_eq!(
            c.set_quarantined_sms((0..80).collect()).unwrap_err(),
            CheckpointError::AllQuarantined
        );
        c.set_quarantined_sms(vec![5, 3, 5]).unwrap();
        assert_eq!(c.quarantined_sms(), &[3, 5]);
        assert!(c.is_quarantined(3) && c.is_quarantined(5) && !c.is_quarantined(4));
    }

    #[test]
    fn degraded_campaign_skips_quarantined_sms_and_salvages_partial() {
        let mut c = CheckpointedCampaign::new("v100", 6, quick_probe(), None).unwrap();
        c.set_quarantined_sms(vec![0, 7]).unwrap();
        let (campaign, coverage) = c.run_degraded(None, None).unwrap();
        assert_eq!(coverage.total, 80);
        assert_eq!(coverage.measured, 78);
        assert_eq!(coverage.quarantined, vec![0, 7]);
        assert_eq!(coverage.unreached, 0);
        assert!(!coverage.is_full());
        assert!((coverage.fraction() - 78.0 / 80.0).abs() < 1e-12);
        assert_eq!(campaign.matrix.len(), 78, "matrix holds measured rows only");
        // A degraded campaign refuses the full-result path with a typed
        // error naming the salvage route.
        let err = c.finish().unwrap_err();
        assert_eq!(
            err,
            CheckpointError::Degraded {
                measured: 78,
                quarantined: 2
            }
        );
        assert!(err.to_string().contains("finish_partial"));
        // Measured rows are bit-identical to the same rows of an
        // unquarantined campaign: skipping never perturbs other rows.
        let mut full = CheckpointedCampaign::new("v100", 6, quick_probe(), None).unwrap();
        let reference = full.run_to_completion(None).unwrap();
        let kept: Vec<&Vec<f64>> = reference
            .matrix
            .iter()
            .enumerate()
            .filter(|(sm, _)| *sm != 0 && *sm != 7)
            .map(|(_, r)| r)
            .collect();
        for (got, want) in campaign.matrix.iter().zip(kept) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn deadline_budget_salvages_partial_results() {
        let mut c = CheckpointedCampaign::new("v100", 2, quick_probe(), None).unwrap();
        let (campaign, coverage) = c.run_degraded(None, Some(10)).unwrap();
        assert_eq!(coverage.measured, 10);
        assert_eq!(coverage.unreached, 70);
        assert_eq!(campaign.matrix.len(), 10);
        // A second run with a fresh budget continues where the first ended.
        let (campaign, coverage) = c.run_degraded(None, Some(10)).unwrap();
        assert_eq!(coverage.measured, 20);
        assert_eq!(campaign.matrix.len(), 20);
        // An exhausted budget with nothing measured yet is a typed error.
        let mut empty = CheckpointedCampaign::new("v100", 2, quick_probe(), None).unwrap();
        assert_eq!(
            empty.run_degraded(None, Some(0)).unwrap_err(),
            CheckpointError::Incomplete { done: 0, total: 80 }
        );
    }

    #[test]
    fn resume_after_quarantine_change_is_rejected() {
        let path = tmp_path_file("quarantine-resume");
        let _ = std::fs::remove_file(&path);

        let mut c = CheckpointedCampaign::new("v100", 8, quick_probe(), None).unwrap();
        c.set_quarantined_sms(vec![1]).unwrap();
        for _ in 0..4 {
            c.step_row().unwrap();
        }
        c.save(&path).unwrap();

        // Resume restores the recorded quarantine set...
        let mut resumed =
            CheckpointedCampaign::resume(&path, "v100", 8, quick_probe(), None).unwrap();
        assert_eq!(resumed.quarantined_sms(), &[1]);
        assert_eq!(resumed.completed_rows(), 4);
        // ...re-pinning the same set is fine...
        resumed.set_quarantined_sms(vec![1]).unwrap();
        // ...but changing the schedulable SM set under recorded rows is not:
        // positions would silently change meaning.
        assert_eq!(
            resumed.set_quarantined_sms(vec![2]).unwrap_err(),
            CheckpointError::Mismatch("quarantined_sms")
        );
        // The salvaged result is bit-identical to an uninterrupted degraded
        // run with the same quarantine set.
        let (salvaged, _) = resumed.run_degraded(Some(&path), None).unwrap();
        let mut reference = CheckpointedCampaign::new("v100", 8, quick_probe(), None).unwrap();
        reference.set_quarantined_sms(vec![1]).unwrap();
        let (want, _) = reference.run_degraded(None, None).unwrap();
        assert_eq!(salvaged, want);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_preset_is_rejected() {
        assert!(matches!(
            CheckpointedCampaign::new("b200", 0, quick_probe(), None),
            Err(CheckpointError::UnknownDevice(_))
        ));
    }
}
