//! High-level measurement campaigns combining the microbenchmarks with the
//! analysis toolkit — the workflows a user of the artifact actually runs.

use gnoc_analysis::{correlation_clusters, correlation_matrix, pearson, rand_index, Summary};
use gnoc_engine::GpuDevice;
use gnoc_microbench::LatencyProbe;
use gnoc_telemetry::{SpanTimer, TelemetryHandle, TraceEvent, SUBSYSTEM_CAMPAIGN};
use gnoc_topo::{GpcId, SmId};
use serde::{Deserialize, Serialize};

/// A full latency characterisation of one device: the per-(SM, slice) latency
/// matrix plus derived statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCampaign {
    /// Mean hit latency `[sm][visible slice]`, cycles.
    pub matrix: Vec<Vec<f64>>,
    /// Per-SM summary over that SM's latency profile.
    pub sm_summaries: Vec<Summary>,
    /// Pearson correlation between every pair of SM latency profiles
    /// (the Fig. 6 heatmap).
    pub correlation: Vec<Vec<f64>>,
}

impl LatencyCampaign {
    /// Runs Algorithm 1 over every (SM, visible slice) pair and computes the
    /// derived statistics.
    pub fn run(dev: &mut GpuDevice, probe: &LatencyProbe) -> Self {
        let matrix = probe.matrix(dev);
        let sm_summaries = matrix.iter().map(|row| Summary::of(row)).collect();
        let correlation = correlation_matrix(&matrix);
        Self {
            matrix,
            sm_summaries,
            correlation,
        }
    }

    /// Runs the campaign with telemetry: attaches `telemetry` to the device
    /// (leaving it attached, so later work on the same device keeps
    /// reporting), records per-SM progress events via the probe layer, and
    /// finishes a `span.campaign.latency` wall-clock timer plus
    /// `campaign.virtual_cycles` (the device's accumulated model time) into
    /// the registry — the dual clocks of the paper's methodology: host-side
    /// wall time around the launch, device-side `clock()` cycles inside it.
    pub fn run_traced(
        dev: &mut GpuDevice,
        probe: &LatencyProbe,
        telemetry: &TelemetryHandle,
    ) -> Self {
        dev.set_telemetry(telemetry.clone());
        let timer = SpanTimer::start("campaign.latency");
        let start_cycle = dev.virtual_cycle();
        let result = Self::run(dev, probe);
        let virtual_cycles = dev.virtual_cycle() - start_cycle;
        telemetry.with(|t| {
            t.registry
                .counter_add("campaign.virtual_cycles", virtual_cycles);
            t.registry
                .gauge_set("campaign.grand_mean_cycles", result.grand_mean());
            timer.finish(&mut t.registry);
        });
        telemetry.emit_with(|| {
            TraceEvent::new(dev.virtual_cycle(), SUBSYSTEM_CAMPAIGN, "latency_campaign")
                .with("sms", result.matrix.len())
                .with("virtual_cycles", virtual_cycles)
        });
        result
    }

    /// Grand mean latency over all pairs; 0.0 for an empty matrix (the 0/0
    /// division used to yield NaN, which poisoned downstream gauges and JSON).
    pub fn grand_mean(&self) -> f64 {
        let total: f64 = self.sm_summaries.iter().map(|s| s.mean * s.n as f64).sum();
        let n: usize = self.sm_summaries.iter().map(|s| s.n).sum();
        if n == 0 {
            return 0.0;
        }
        total / n as f64
    }

    /// Mean latency profile of each GPC (rows averaged over the GPC's SMs).
    /// Only meaningful when all SMs see the same slice set (every preset
    /// does within a partition).
    pub fn gpc_mean_profiles(&self, dev: &GpuDevice) -> Vec<Vec<f64>> {
        let h = dev.hierarchy();
        GpcId::range(h.num_gpcs())
            .map(|g| {
                let sms = h.sms_in_gpc(g);
                let width = self.matrix[sms[0].index()].len();
                let mut mean = vec![0.0; width];
                for &sm in sms {
                    for (m, v) in mean.iter_mut().zip(&self.matrix[sm.index()]) {
                        *m += v / sms.len() as f64;
                    }
                }
                mean
            })
            .collect()
    }
}

/// Result of placement reverse engineering (paper Implication #1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// How well pairwise profile correlation tracks physical proximity:
    /// Pearson correlation between `corr(sm_a, sm_b)` and the *negated*
    /// horizontal die distance of the two SMs. Near 1 means latency profiles
    /// reveal where each SM sits on the die.
    pub position_recovery_r: f64,
    /// Inferred column-group label per GPC, from clustering GPC mean
    /// profiles.
    pub gpc_labels: Vec<usize>,
    /// Ground-truth (partition, column) group per GPC from the floorplan.
    pub gpc_truth: Vec<usize>,
    /// Rand index between the two (1.0 = exact column recovery).
    pub gpc_rand_index: f64,
}

/// Ground-truth physical column group of each GPC, from the floorplan: GPCs
/// sharing a partition and a horizontal die position form one group (the
/// paper likewise finds vertically stacked neighbours, e.g. GPC0 & GPC1,
/// share a latency signature).
fn column_truth(dev: &GpuDevice) -> Vec<usize> {
    use std::collections::HashMap;
    let h = dev.hierarchy();
    let fp = dev.floorplan();
    let mut group_of: HashMap<(usize, i64), usize> = HashMap::new();
    GpcId::range(h.num_gpcs())
        .map(|g| {
            let key = (
                h.partition_of_gpc(g).index(),
                (fp.gpc_rect(g).center().x * 16.0).round() as i64,
            );
            let next = group_of.len();
            *group_of.entry(key).or_insert(next)
        })
        .collect()
}

/// Reverse engineers SM placement from a latency campaign (Implication #1).
///
/// Two complementary results:
///
/// 1. **Continuous position recovery** — pairwise profile correlation is
///    compared against physical proximity. Nearby SMs (even across a GPC
///    boundary) have near-identical profiles, so correlation is a proxy for
///    die position.
/// 2. **Column clustering** — averaging profiles per GPC and merging GPCs
///    whose local sub-profiles agree to within `gpc_merge_cycles` (mean
///    absolute per-slice difference) recovers the (partition, column) groups
///    exactly, reproducing the block structure of Fig. 6.
pub fn infer_placement(
    campaign: &LatencyCampaign,
    dev: &GpuDevice,
    gpc_merge_cycles: f64,
) -> PlacementReport {
    let h = dev.hierarchy();
    let fp = dev.floorplan();

    // (1) correlation-vs-proximity over same-partition SM pairs.
    let mut rs = Vec::new();
    let mut neg_dist = Vec::new();
    let n = h.num_sms();
    for a in 0..n {
        for b in (a + 1)..n {
            let (sa, sb) = (SmId::new(a as u32), SmId::new(b as u32));
            if h.sm(sa).partition != h.sm(sb).partition {
                continue;
            }
            rs.push(campaign.correlation[a][b]);
            neg_dist.push(-(fp.sm_pos(sa).x - fp.sm_pos(sb).x).abs());
        }
    }
    let position_recovery_r = pearson(&rs, &neg_dist);

    // (2) GPC-level column clustering over *local-partition* sub-profiles.
    // On partitioned GPUs the ±crossing offset dominates whole-profile
    // correlation and only resolves the partition (the paper's Fig. 6b
    // finding); restricting each GPC's profile to its own partition's slices
    // removes that offset and restores column resolution.
    let profiles = campaign.gpc_mean_profiles(dev);
    let local_profiles: Vec<Vec<f64>> = GpcId::range(h.num_gpcs())
        .map(|g| {
            let p = h.partition_of_gpc(g);
            match dev.spec().cache_policy {
                // Rows already cover only local slices.
                gnoc_topo::CachePolicy::PartitionLocal => profiles[g.index()].clone(),
                gnoc_topo::CachePolicy::GloballyShared => h
                    .slices_in_partition(p)
                    .iter()
                    .map(|s| profiles[g.index()][s.index()])
                    .collect(),
            }
        })
        .collect();
    // Two GPCs are co-located when their local sub-profiles agree slice by
    // slice to within measurement noise. A *distance* criterion (mean
    // absolute per-slice difference, in cycles) is robust where correlation
    // is not: slice-intrinsic structure shared by every SM (e.g. the
    // MP-internal service chain) inflates correlations but cancels out of
    // differences. Cross-partition sub-profiles cover different physical
    // slices and are never merged.
    let n_gpcs = h.num_gpcs();
    let mut similarity = vec![vec![0.0f64; n_gpcs]; n_gpcs];
    for i in 0..n_gpcs {
        for j in 0..n_gpcs {
            let pi = h.partition_of_gpc(GpcId::new(i as u32));
            let pj = h.partition_of_gpc(GpcId::new(j as u32));
            if pi != pj {
                similarity[i][j] = f64::NEG_INFINITY;
                continue;
            }
            let dist = local_profiles[i]
                .iter()
                .zip(&local_profiles[j])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / local_profiles[i].len() as f64;
            // Negated distance so the shared threshold clustering applies.
            similarity[i][j] = -dist;
        }
    }
    let gpc_labels = correlation_clusters(&similarity, -gpc_merge_cycles);
    let gpc_truth = column_truth(dev);
    let gpc_rand_index = rand_index(&gpc_labels, &gpc_truth);

    PlacementReport {
        position_recovery_r,
        gpc_labels,
        gpc_truth,
        gpc_rand_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_probe() -> LatencyProbe {
        LatencyProbe {
            working_set_lines: 2,
            samples: 4,
        }
    }

    #[test]
    fn campaign_dimensions_match_device() {
        let mut dev = GpuDevice::v100(0);
        let c = LatencyCampaign::run(&mut dev, &quick_probe());
        assert_eq!(c.matrix.len(), 80);
        assert_eq!(c.correlation.len(), 80);
        assert!(
            (190.0..230.0).contains(&c.grand_mean()),
            "{}",
            c.grand_mean()
        );
    }

    #[test]
    fn grand_mean_of_empty_matrix_is_zero_not_nan() {
        let empty = LatencyCampaign {
            matrix: Vec::new(),
            sm_summaries: Vec::new(),
            correlation: Vec::new(),
        };
        let gm = empty.grand_mean();
        assert_eq!(gm, 0.0, "empty campaign grand mean must be 0.0, got {gm}");
        assert!(!gm.is_nan());
    }

    #[test]
    fn same_gpc_sms_correlate_strongly() {
        // Observation #4: SMs of the same GPC have near-identical profiles.
        let mut dev = GpuDevice::v100(1);
        let c = LatencyCampaign::run(&mut dev, &quick_probe());
        let h = dev.hierarchy();
        let gpc0 = h.sms_in_gpc(GpcId::new(0));
        let r = c.correlation[gpc0[0].index()][gpc0[1].index()];
        assert!(r > 0.9, "intra-GPC correlation {r}");
    }

    #[test]
    fn placement_inference_recovers_structure() {
        let mut dev = GpuDevice::v100(2);
        let c = LatencyCampaign::run(&mut dev, &quick_probe());
        let report = infer_placement(&c, &dev, 2.5);
        assert!(
            report.position_recovery_r > 0.75,
            "position recovery r {}",
            report.position_recovery_r
        );
        assert_eq!(
            report.gpc_rand_index, 1.0,
            "labels {:?} truth {:?}",
            report.gpc_labels, report.gpc_truth
        );
    }

    #[test]
    fn traced_campaign_reports_all_three_clocks() {
        use gnoc_telemetry::{MemorySink, Telemetry};

        let sink = MemorySink::new();
        let telemetry = TelemetryHandle::attach(Telemetry::with_sink(Box::new(sink.clone())));
        let mut dev = GpuDevice::v100(0);
        let c = LatencyCampaign::run_traced(&mut dev, &quick_probe(), &telemetry);

        let reg = telemetry.snapshot_registry().unwrap();
        assert!(reg.counter("campaign.virtual_cycles") > 0);
        assert_eq!(reg.counter("campaign.sm_profiles"), 80);
        assert_eq!(reg.counter("span.campaign.latency.calls"), 1);
        assert!((reg.gauge("campaign.grand_mean_cycles").unwrap() - c.grand_mean()).abs() < 1e-9);
        // The device-layer instrumentation fed the same registry.
        assert!(reg.counter("engine.reads") > 0);

        let events = sink.snapshot();
        assert_eq!(
            events.iter().filter(|e| e.event == "sm_profile").count(),
            80
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.event == "latency_campaign")
                .count(),
            1
        );
    }

    #[test]
    fn gpc_mean_profiles_have_one_row_per_gpc() {
        let mut dev = GpuDevice::v100(0);
        let c = LatencyCampaign::run(&mut dev, &quick_probe());
        let p = c.gpc_mean_profiles(&dev);
        assert_eq!(p.len(), 6);
        assert!(p.iter().all(|row| row.len() == 32));
    }
}
