//! # gnoc
//!
//! A full Rust reproduction of *Uncovering Real GPU NoC Characteristics:
//! Implications on Interconnect Architecture* (MICRO 2024), built against a
//! mechanistic virtual-GPU substrate (no GPU hardware required).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Area | Crate | Entry points |
//! |---|---|---|
//! | Device structure | [`topo`] | [`GpuSpec`], [`Hierarchy`], [`Floorplan`] |
//! | Virtual device | [`engine`] | [`GpuDevice`], [`FabricModel`], [`CtaScheduler`] |
//! | Paper methodology | [`microbench`] | [`LatencyProbe`], [`input_speedups`] |
//! | Statistics | [`analysis`] | [`pearson`], [`Histogram`], [`LinearFit`] |
//! | Side channels | [`sidechannel`] | [`run_aes_attack`], [`run_rsa_attack`] |
//! | Cycle-level NoC | [`noc`] | [`Mesh`], [`run_fairness`], [`run_memsim`] |
//! | Workloads | [`workloads`] | BFS / Gaussian / streaming traces |
//! | Observability | [`telemetry`] | [`TelemetryHandle`], [`MetricRegistry`], [`JsonlWriter`] |
//! | Parallel execution | [`par`] | [`WorkerPool`], [`resolve_jobs`], [`LatencyCampaign::run_par`] |
//! | Self-healing | [`health`] | [`SelfHealingMesh`], [`CircuitBreaker`], [`HealthConfig`] |
//! | Multi-GPU fabric | [`fabric`] | [`FabricSim`], [`FabricTopology`], [`FabricHealthMonitor`] |
//!
//! Quick start (the paper's Observation #1 in five lines):
//!
//! ```
//! use gnoc_core::{GpuDevice, LatencyProbe, SliceId, SmId};
//!
//! let mut gpu = GpuDevice::v100(0);
//! let probe = LatencyProbe::default();
//! let near = probe.measure_pair(&mut gpu, SmId::new(24), SliceId::new(0));
//! let profile = probe.sm_profile(&mut gpu, SmId::new(24));
//! let spread = profile.iter().cloned().fold(0.0, f64::max)
//!     - profile.iter().cloned().fold(f64::INFINITY, f64::min);
//! assert!(spread > 30.0); // non-uniform latency
//! assert!(near > 170.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod checkpoint;
mod parallel;
pub mod trace_digest;

/// Crash-safe file primitives, re-exported from `gnoc-faults` (the lowest
/// crate that persists artifacts) so every layer shares one implementation.
pub mod fsio {
    pub use gnoc_faults::fsio::{atomic_write, remove_orphan_tmp, tmp_sibling};
}

pub use campaign::{infer_placement, LatencyCampaign, PlacementReport};
pub use checkpoint::{
    device_for_preset, row_seed, spec_for_preset, CheckpointError, CheckpointedCampaign,
    CoverageReport, CHECKPOINT_VERSION,
};
pub use gnoc_faults::fsio::{atomic_write, remove_orphan_tmp, tmp_sibling};

pub use gnoc_analysis as analysis;
pub use gnoc_engine as engine;
pub use gnoc_fabric as fabric;
pub use gnoc_faults as faults;
pub use gnoc_health as health;
pub use gnoc_microbench as microbench;
pub use gnoc_noc as noc;
pub use gnoc_par as par;
pub use gnoc_sidechannel as sidechannel;
pub use gnoc_telemetry as telemetry;
pub use gnoc_topo as topo;
pub use gnoc_trace as trace;
pub use gnoc_workloads as workloads;

// Flat re-exports of the most-used types.
pub use gnoc_analysis::profile::ProfileReport;
pub use gnoc_analysis::{
    correlation_matrix, pearson, render_heatmap, Histogram, LinearFit, Summary,
};
pub use gnoc_engine::{
    AccessKind, AddressMap, Calibration, CtaScheduler, FabricModel, FlowSpec, GpuDevice,
};
pub use gnoc_fabric::{
    FabricConfig, FabricHealthMonitor, FabricHealthReport, FabricSim, FabricStats, FabricTransferId,
};
pub use gnoc_faults::{
    fabric_connected, mesh_connected, FabricFaults, FaultGenConfig, FaultPlan, FaultPlanError,
    FlakyBurst, FloorSweep, RegionFault, SweepError,
};
pub use gnoc_health::{
    BreakerConfig, BreakerState, CircuitBreaker, FabricHealthConfig, HealthConfig, HealthReport,
    SelfHealingMesh,
};
pub use gnoc_microbench::{input_speedups, LatencyProbe, SpeedupReport};
pub use gnoc_noc::{
    run_fairness, run_memsim, ArbiterKind, FairnessConfig, LossReason, MemSimConfig, Mesh,
    MeshConfig, NocError, ReliableMesh, RetryConfig, TransferOutcome,
};
pub use gnoc_par::{resolve_jobs, PoolPanic, WorkerPool};
pub use gnoc_sidechannel::{
    run_aes_attack, run_rsa_attack, Aes128, AesAttackConfig, RsaAttackConfig,
};
pub use gnoc_telemetry::{
    FlightRecorder, JsonlWriter, LogHistogram, MetricRegistry, StallKind, Telemetry,
    TelemetryHandle, TraceEvent,
};
pub use gnoc_topo::{
    CachePolicy, CpcId, FabricTopology, Floorplan, Generation, GpcId, GpuSpec, Hierarchy, MpId,
    PartitionId, SliceId, SmId, TpcId,
};
