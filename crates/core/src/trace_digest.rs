//! Canonical stats lines and digests for trace record/replay.
//!
//! A trace's footer seals an FNV-1a 64 digest of the recorded run's final
//! state; a replay recomputes the same digest and compares. Both sides —
//! the `gnoc trace` subcommands and the daemon's `replay` job — must build
//! the line byte-identically, so the builders live here, in the one crate
//! both depend on. Lines are single-line JSON assembled with fixed
//! `format!` strings (field order and float formatting never depend on a
//! serializer), mirroring the daemon's payload convention.

use crate::LatencyCampaign;
use gnoc_fabric::FabricSim;
use gnoc_faults::FaultPlan;
use gnoc_noc::ReliableMesh;
use gnoc_trace::fnv1a64;

/// FNV-1a 64 of a fault plan's canonical JSON: the identity a trace header
/// pins via `plan_fnv`. `None` (no `--faults` flag) digests to 0, so a
/// plan-free recording replays only plan-free.
#[must_use]
pub fn plan_digest(plan: Option<&FaultPlan>) -> u64 {
    plan.map_or(0, |p| p.to_json().map_or(0, |j| fnv1a64(j.as_bytes())))
}

/// Canonical stats line for a finished reliable-mesh soak.
///
/// # Errors
///
/// Propagates stats serialization failure (practically unreachable).
pub fn mesh_stats_line(rm: &ReliableMesh) -> Result<String, String> {
    let stats = serde_json::to_string(rm.stats()).map_err(|e| e.to_string())?;
    Ok(format!(
        "{{\"kind\":\"mesh\",\"cycle\":{},\"stats\":{stats}}}\n",
        rm.mesh().cycle()
    ))
}

/// Canonical stats line for a finished multi-device fabric soak.
///
/// # Errors
///
/// Propagates stats serialization failure (practically unreachable).
pub fn fabric_stats_line(sim: &FabricSim) -> Result<String, String> {
    let stats = serde_json::to_string(sim.stats()).map_err(|e| e.to_string())?;
    Ok(format!(
        "{{\"kind\":\"fabric\",\"cycle\":{},\"stats\":{stats}}}\n",
        sim.cycle()
    ))
}

/// FNV-1a 64 over the raw bit patterns of every matrix cell, row-major —
/// the same digest the daemon's campaign payload reports as `matrix_fnv`.
#[must_use]
pub fn campaign_matrix_fnv(matrix: &[Vec<f64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in matrix {
        for v in row {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Canonical stats line for a finished latency campaign.
#[must_use]
pub fn campaign_stats_line(device: &str, result: &LatencyCampaign) -> String {
    let rows = result.matrix.len();
    let cols = result.matrix.first().map_or(0, Vec::len);
    format!(
        "{{\"kind\":\"campaign\",\"device\":\"{device}\",\"rows\":{rows},\"cols\":{cols},\"grand_mean\":{:.6},\"matrix_fnv\":\"{:016x}\"}}\n",
        result.grand_mean(),
        campaign_matrix_fnv(&result.matrix)
    )
}

/// The digest a trace footer seals: FNV-1a 64 of the canonical stats line.
#[must_use]
pub fn line_digest(line: &str) -> u64 {
    fnv1a64(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_noc::{ArbiterKind, MeshConfig, RetryConfig};

    #[test]
    fn plan_digest_is_stable_and_none_is_zero() {
        assert_eq!(plan_digest(None), 0);
        let plan = FaultPlan::none();
        let a = plan_digest(Some(&plan));
        let b = plan_digest(Some(&plan));
        assert_ne!(a, 0, "a real plan digests to a nonzero identity");
        assert_eq!(a, b);
    }

    #[test]
    fn mesh_stats_line_is_deterministic_and_single_line() {
        let cfg = MeshConfig::paper_6x6(ArbiterKind::RoundRobin);
        let plan = FaultPlan::none();
        let run = || {
            let mut rm = ReliableMesh::with_faults(cfg, &plan, RetryConfig::default()).unwrap();
            rm.submit(
                gnoc_noc::NodeId(0),
                gnoc_noc::NodeId(7),
                1,
                gnoc_noc::PacketClass::Request,
            );
            rm.run_until_quiescent(10_000);
            mesh_stats_line(&rm).unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.ends_with('\n') && !a.trim_end().contains('\n'));
        assert_eq!(line_digest(&a), fnv1a64(a.as_bytes()));
    }

    #[test]
    fn campaign_line_embeds_matrix_digest() {
        let result = LatencyCampaign {
            matrix: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            sm_summaries: Vec::new(),
            correlation: Vec::new(),
        };
        let line = campaign_stats_line("v100", &result);
        let fnv = campaign_matrix_fnv(&result.matrix);
        assert!(line.contains(&format!("{fnv:016x}")));
        assert!(line.contains("\"rows\":2"));
    }
}
