//! Self-healing drivers: patrol traffic, window-paced monitoring, and the
//! serializable health report.
//!
//! [`SelfHealingMesh`] owns a [`ReliableMesh`] in self-healing mode (the
//! fault plan is physically applied but routing is *not* told about it) plus
//! a [`LinkHealthMonitor`]. It keeps a round of patrol transfers in flight —
//! one transfer per adjacent router pair, so every directed link carries
//! traffic — and polls the monitor every [`HealthConfig::window_cycles`]
//! cycles. Detection therefore emerges purely from observed drop counters.

use crate::monitor::{
    Detection, HealthConfig, LinkHealthMonitor, SliceHealthMonitor, TransitionRecord,
};
use gnoc_engine::{DeviceError, GpuDevice};
use gnoc_faults::{Direction, FaultPlan};
use gnoc_noc::{Mesh, MeshConfig, NocError, NodeId, PacketClass, ReliableMesh, RetryConfig};
use gnoc_topo::{GpuSpec, SmId};
use serde::{Deserialize, Serialize};

/// Deterministic patrol pairs: one `(src, dst)` per directed adjacent link,
/// in router-major, port order. Under dimension-ordered routing each pair's
/// packet crosses exactly the link connecting it, so a full round exercises
/// every directed link in the mesh.
pub fn patrol_pairs(width: usize, height: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for r in 0..(width * height) as u32 {
        for dir in Direction::ALL {
            if let Some(n) = dir.neighbour(r, width as u32, height as u32) {
                pairs.push((NodeId::new(r), NodeId::new(n)));
            }
        }
    }
    pairs
}

/// Everything a detection run learned, serializable for reports and the
/// chaos oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Mesh cycles simulated.
    pub cycles: u64,
    /// Health windows completed.
    pub windows: u64,
    /// Patrol rounds submitted.
    pub patrol_rounds: u64,
    /// Resources whose breaker opened at least once.
    pub detections: Vec<Detection>,
    /// Every breaker transition, in order.
    pub transitions: Vec<TransitionRecord>,
    /// Resources quarantined at the end of the run.
    pub quarantined_now: Vec<String>,
    /// Quarantines refused because they would disconnect or empty the
    /// resource pool.
    pub refused: Vec<String>,
    /// Patrol transfers delivered.
    pub delivered: u64,
    /// Patrol transfers lost (all causes).
    pub lost: u64,
    /// Retransmissions spent — part of the recovery cost.
    pub retries: u64,
    /// Route-table rebuilds — the other part of the recovery cost.
    pub reroutes: u64,
}

/// A [`ReliableMesh`] under online health monitoring, with the fault plan
/// hidden from the routing layer.
#[derive(Debug)]
pub struct SelfHealingMesh {
    rm: ReliableMesh,
    monitor: LinkHealthMonitor,
    cfg: HealthConfig,
    next_window: u64,
    patrol: Vec<(NodeId, NodeId)>,
    patrol_rounds: u64,
}

impl SelfHealingMesh {
    /// Builds a mesh in self-healing mode and applies `plan` to it. Faults
    /// physically happen (packets die on dead links) but the route tables
    /// are never recomputed from the plan — only from quarantine decisions
    /// the monitor makes.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] if the mesh config or plan is invalid.
    pub fn new(
        mesh_cfg: MeshConfig,
        plan: &FaultPlan,
        retry: RetryConfig,
        health: HealthConfig,
    ) -> Result<Self, NocError> {
        let mut mesh = Mesh::try_new(mesh_cfg)?;
        mesh.set_self_healing(true);
        mesh.apply_fault_plan(plan)?;
        let num_routers = mesh_cfg.width * mesh_cfg.height;
        Ok(Self {
            rm: ReliableMesh::new(mesh, retry),
            monitor: LinkHealthMonitor::new(num_routers, health),
            cfg: health,
            next_window: health.window_cycles.max(1),
            patrol: patrol_pairs(mesh_cfg.width, mesh_cfg.height),
            patrol_rounds: 0,
        })
    }

    /// The monitored reliable mesh.
    pub fn rm(&self) -> &ReliableMesh {
        &self.rm
    }

    /// Mutable access (telemetry attachment etc.).
    pub fn rm_mut(&mut self) -> &mut ReliableMesh {
        &mut self.rm
    }

    /// The link monitor.
    pub fn monitor(&self) -> &LinkHealthMonitor {
        &self.monitor
    }

    /// Consumes the healer, returning the underlying reliable mesh with its
    /// quarantines (and self-healing mode) still in force — for handing
    /// detected-and-healed fabric to ordinary traffic.
    pub fn into_mesh(self) -> ReliableMesh {
        self.rm
    }

    /// One simulation step; polls the monitor at window boundaries.
    ///
    /// # Errors
    ///
    /// Propagates monitor reconfiguration errors.
    pub fn step(&mut self) -> Result<(), NocError> {
        self.rm.step();
        if self.rm.mesh().cycle() >= self.next_window {
            let seen = self.monitor.transitions().len();
            self.monitor.poll(&mut self.rm)?;
            // Breaker transitions land on the flight-recorder timeline, so a
            // profiled healing episode shows quarantine decisions alongside
            // the per-message stalls they cause and cure.
            if self.rm.mesh().flight_recorder().is_some() {
                let new: Vec<gnoc_telemetry::TraceEvent> = self.monitor.transitions()[seen..]
                    .iter()
                    .map(|t| {
                        gnoc_telemetry::TraceEvent::new(t.at, "health", "breaker_transition")
                            .with("resource", t.resource.clone())
                            .with("from", format!("{:?}", t.from))
                            .with("to", format!("{:?}", t.to))
                    })
                    .collect();
                if let Some(rec) = self.rm.mesh_mut().flight_recorder_mut() {
                    for e in new {
                        rec.note(e);
                    }
                }
            }
            self.next_window = self.rm.mesh().cycle() + self.cfg.window_cycles.max(1);
        }
        Ok(())
    }

    /// Runs until `run_cycles` mesh cycles have elapsed, keeping patrol
    /// traffic in flight: whenever the previous round fully resolves, the
    /// next round (one transfer per directed adjacent pair) is submitted.
    ///
    /// # Errors
    ///
    /// Propagates monitor reconfiguration errors.
    pub fn run_detection(&mut self, run_cycles: u64) -> Result<(), NocError> {
        while self.rm.mesh().cycle() < run_cycles {
            if self.rm.outstanding() == 0 {
                for &(src, dst) in &self.patrol {
                    self.rm.submit(src, dst, 1, PacketClass::Request);
                }
                self.patrol_rounds += 1;
            }
            self.step()?;
            if self.rm.outstanding() > 0 {
                // Event-engine skip across protocol-quiet spans. Capped one
                // cycle short of the monitor window so the step whose
                // post-cycle hits `next_window` still runs (and polls) live,
                // exactly as under cycle-exact stepping.
                self.rm
                    .skip_quiet(run_cycles.min(self.next_window.saturating_sub(1)));
            }
        }
        Ok(())
    }

    /// The run's health report.
    pub fn report(&self) -> HealthReport {
        let stats = self.rm.stats();
        HealthReport {
            cycles: self.rm.mesh().cycle(),
            windows: self.monitor.windows(),
            patrol_rounds: self.patrol_rounds,
            detections: self.monitor.detections(),
            transitions: self.monitor.transitions().to_vec(),
            quarantined_now: self
                .rm
                .mesh()
                .quarantined_links()
                .into_iter()
                .map(|(r, d)| format!("link {r}:{d:?}"))
                .collect(),
            refused: self
                .monitor
                .refused()
                .iter()
                .map(|(r, d)| format!("link {r}:{d:?}"))
                .collect(),
            delivered: stats.delivered,
            lost: stats.lost_total(),
            retries: stats.retries,
            reroutes: self.rm.mesh().stats().reroutes,
        }
    }

    /// Links whose breaker first opened, as `(router, dir, cycle)` triples.
    pub fn detected_links(&self) -> Vec<(u32, Direction, u64)> {
        self.monitor.detected_links()
    }
}

/// Runs `windows` health windows of slice probing against a device built
/// with latent faults ([`GpuDevice::with_latent_faults`]) and returns the
/// monitor plus per-window report data.
///
/// # Errors
///
/// Propagates [`DeviceError`] from release remaps.
pub fn run_slice_detection(
    dev: &mut GpuDevice,
    cfg: HealthConfig,
    windows: u64,
) -> Result<SliceHealthMonitor, DeviceError> {
    let sm = SmId::new(0);
    let mut monitor = SliceHealthMonitor::new(dev.hierarchy().num_slices(), sm, cfg);
    for _ in 0..windows {
        monitor.poll(dev)?;
    }
    Ok(monitor)
}

/// Convenience wrapper: build a latent-fault device for `spec`, run slice
/// detection, and return `(device, monitor)`.
///
/// # Errors
///
/// Propagates device construction and monitor errors.
pub fn run_slice_detection_for_spec(
    spec: GpuSpec,
    plan: &FaultPlan,
    seed: u64,
    cfg: HealthConfig,
    windows: u64,
) -> Result<(GpuDevice, SliceHealthMonitor), DeviceError> {
    let mut dev = GpuDevice::with_latent_faults(spec, plan, seed)?;
    let monitor = run_slice_detection(&mut dev, cfg, windows)?;
    Ok((dev, monitor))
}
