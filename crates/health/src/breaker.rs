//! Three-state circuit breaker with hysteresis.
//!
//! `Closed → Open → HalfOpen → {Closed, Open}` — the classic pattern, tuned
//! for deterministic simulation: every transition is a pure function of the
//! observed window verdicts and probe results, so two runs that feed a
//! breaker the same observations produce bit-identical state histories.

use serde::{Deserialize, Serialize};

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures are being counted.
    Closed,
    /// Tripped: the resource is quarantined; a cooldown is ticking.
    Open,
    /// Probation: probe traffic is testing the resource; real traffic still
    /// avoids it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half-open",
        })
    }
}

/// Breaker tuning. The defaults are justified against the paper's
/// calibration bands in DESIGN.md: two failing windows separate a real
/// fault from a one-off blip, and the doubling cooldown keeps a permanently
/// dead resource from consuming more than a logarithmic number of probes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Failure score (leaky bucket) that trips `Closed → Open`. Failing
    /// windows add one, clean windows drain one, so isolated blips never
    /// trip but a persistent fault always does.
    pub failure_windows: u32,
    /// Windows spent `Open` before the first `HalfOpen` probation.
    pub cooldown_windows: u32,
    /// Consecutive clean probes that close a `HalfOpen` breaker.
    pub probe_successes: u32,
    /// Cap on the doubling cooldown — the flap-prevention hysteresis: each
    /// failed probation doubles the next cooldown up to this bound.
    pub max_cooldown_windows: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_windows: 2,
            cooldown_windows: 8,
            probe_successes: 3,
            max_cooldown_windows: 64,
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// A deterministic three-state circuit breaker for one resource.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Leaky-bucket failure score while `Closed`.
    failures: u32,
    /// Windows left before `Open` moves to probation.
    cooldown_left: u32,
    /// Current cooldown length (doubles on each failed probation).
    cooldown: u32,
    /// Consecutive clean probes while `HalfOpen`.
    probe_streak: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            failures: 0,
            cooldown_left: 0,
            cooldown: cfg.cooldown_windows.max(1),
            probe_streak: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the resource should currently be quarantined (any state but
    /// `Closed`: `HalfOpen` still keeps real traffic away, only probes go).
    pub fn is_quarantining(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// Advances one health window. `failing` is the window's verdict for the
    /// resource (ignored outside `Closed`). Returns the transition taken, if
    /// any: `Closed → Open` when the failure bucket fills, `Open → HalfOpen`
    /// when the cooldown expires.
    pub fn on_window(&mut self, failing: bool) -> Option<Transition> {
        match self.state {
            BreakerState::Closed => {
                if failing {
                    self.failures += 1;
                    if self.failures >= self.cfg.failure_windows.max(1) {
                        self.state = BreakerState::Open;
                        self.cooldown_left = self.cooldown;
                        return Some(Transition {
                            from: BreakerState::Closed,
                            to: BreakerState::Open,
                        });
                    }
                } else {
                    self.failures = self.failures.saturating_sub(1);
                }
                None
            }
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.probe_streak = 0;
                    return Some(Transition {
                        from: BreakerState::Open,
                        to: BreakerState::HalfOpen,
                    });
                }
                None
            }
            BreakerState::HalfOpen => None,
        }
    }

    /// Feeds one `HalfOpen` probe result. A clean streak closes the breaker
    /// (resetting the cooldown to its base); any failure re-opens it and
    /// doubles the next cooldown, so a flaky resource flaps at most
    /// logarithmically before settling Open. Ignored outside `HalfOpen`.
    pub fn on_probe(&mut self, ok: bool) -> Option<Transition> {
        if self.state != BreakerState::HalfOpen {
            return None;
        }
        if ok {
            self.probe_streak += 1;
            if self.probe_streak >= self.cfg.probe_successes.max(1) {
                self.state = BreakerState::Closed;
                self.failures = 0;
                self.cooldown = self.cfg.cooldown_windows.max(1);
                return Some(Transition {
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed,
                });
            }
            None
        } else {
            self.state = BreakerState::Open;
            self.cooldown = (self.cooldown * 2).min(self.cfg.max_cooldown_windows.max(1));
            self.cooldown_left = self.cooldown;
            Some(Transition {
                from: BreakerState::HalfOpen,
                to: BreakerState::Open,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::default())
    }

    #[test]
    fn trips_after_persistent_failures_not_blips() {
        let mut b = breaker();
        // One blip drains away.
        assert!(b.on_window(true).is_none());
        assert!(b.on_window(false).is_none());
        assert!(b.on_window(false).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
        // Persistent failure trips.
        assert!(b.on_window(true).is_none());
        let t = b.on_window(true).unwrap();
        assert_eq!(t.to, BreakerState::Open);
        assert!(b.is_quarantining());
    }

    #[test]
    fn cooldown_leads_to_probation_and_recovery() {
        let mut b = breaker();
        b.on_window(true);
        b.on_window(true);
        // Cooldown: 8 windows.
        for _ in 0..7 {
            assert!(b.on_window(false).is_none());
        }
        assert_eq!(b.on_window(false).unwrap().to, BreakerState::HalfOpen);
        // Probation still quarantines.
        assert!(b.is_quarantining());
        b.on_probe(true);
        b.on_probe(true);
        assert_eq!(b.on_probe(true).unwrap().to, BreakerState::Closed);
        assert!(!b.is_quarantining());
    }

    #[test]
    fn failed_probe_doubles_cooldown() {
        let mut b = breaker();
        b.on_window(true);
        b.on_window(true);
        for _ in 0..8 {
            b.on_window(false);
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.on_probe(false).unwrap().to, BreakerState::Open);
        // Second cooldown is 16 windows, not 8 — hysteresis against flap.
        for _ in 0..15 {
            assert!(b.on_window(false).is_none(), "cooldown must have doubled");
        }
        assert_eq!(b.on_window(false).unwrap().to, BreakerState::HalfOpen);
    }

    #[test]
    fn probe_ignored_when_not_half_open() {
        let mut b = breaker();
        assert!(b.on_probe(false).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
