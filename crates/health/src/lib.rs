//! # gnoc-health
//!
//! Online fault detection and self-healing for the gnoc stack.
//!
//! The fault-injection layer (`gnoc-faults`) tells the simulator where the
//! faults *are*; this crate is the other side of that contract — a device
//! under test that must *infer* them from behavior alone:
//!
//! - **[`CircuitBreaker`]** — a deterministic three-state breaker
//!   (Closed → Open → HalfOpen) with leaky-bucket trip logic and doubling
//!   cooldowns so a dead resource cannot cause flapping;
//! - **[`LinkHealthMonitor`]** — watches per-link drop counters
//!   ([`gnoc_noc::MeshStats::link_drops`]) and quarantines links via the
//!   incremental up*/down* reroute in `gnoc-noc`;
//! - **[`SliceHealthMonitor`]** — watches timed probe reads against the
//!   calibrated per-slice hit latency and quarantines L2 slices via the
//!   address-hash remap in `gnoc-engine`;
//! - **[`SelfHealingMesh`]** — drives patrol traffic (every directed link
//!   exercised each round) and window-paced monitoring, producing a
//!   serializable [`HealthReport`].
//!
//! Everything is deterministic: same seed and config → bit-identical breaker
//! transition logs, which the chaos harness's `detection` oracle and the
//! replay machinery rely on.
//!
//! ```
//! use gnoc_faults::{Direction, FaultPlan, LinkFault, LinkFaultKind};
//! use gnoc_health::{HealthConfig, SelfHealingMesh};
//! use gnoc_noc::{ArbiterKind, MeshConfig, RetryConfig};
//!
//! let mut plan = FaultPlan::none();
//! plan.links.push(LinkFault {
//!     router: 7,
//!     dir: Direction::East,
//!     kind: LinkFaultKind::Dead,
//!     onset: 0,
//! });
//! let mut healer = SelfHealingMesh::new(
//!     MeshConfig::paper_6x6(ArbiterKind::RoundRobin),
//!     &plan,
//!     RetryConfig::default(),
//!     HealthConfig::default(),
//! )
//! .unwrap();
//! healer.run_detection(6_000).unwrap();
//! // The dead link was found without ever reading the plan.
//! assert!(healer
//!     .detected_links()
//!     .iter()
//!     .any(|&(r, d, _)| r == 7 && d == Direction::East));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod breaker;
mod heal;
mod monitor;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use heal::{
    patrol_pairs, run_slice_detection, run_slice_detection_for_spec, HealthReport, SelfHealingMesh,
};
pub use monitor::{
    Detection, FabricHealthConfig, HealthConfig, LinkHealthMonitor, SliceHealthMonitor,
    TransitionRecord,
};
