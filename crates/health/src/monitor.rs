//! Per-link and per-slice health monitors.
//!
//! Monitors consume only *behavioral* telemetry — per-link drop counters
//! ([`MeshStats::link_drops`]) and timed probe reads — never the ground-truth
//! [`gnoc_faults::FaultPlan`]. Each monitored resource gets its own
//! [`CircuitBreaker`]; an Open breaker quarantines the resource (incremental
//! reroute for links, address-hash remap for slices) and HalfOpen probation
//! tests recovery.
//!
//! [`MeshStats::link_drops`]: gnoc_noc::MeshStats

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use gnoc_engine::{DeviceError, GpuDevice};
use gnoc_faults::Direction;
use gnoc_noc::{NocError, ReliableMesh, NUM_PORTS};
use gnoc_topo::{SliceId, SmId};
use serde::{Deserialize, Serialize};

/// Health-layer tuning shared by the link and slice monitors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Cycles between monitor polls (one breaker window).
    pub window_cycles: u64,
    /// Packet drops within one window that mark a link's window as failing.
    pub link_drop_threshold: u64,
    /// Breaker state-machine tuning.
    pub breaker: BreakerConfig,
    /// Cycles above the calibrated per-slice hit latency that mark a slice
    /// probe as failing. Must sit well above measurement jitter and well
    /// below the latent-fault penalty; see DESIGN.md.
    pub slice_margin_cycles: f64,
    /// EWMA smoothing factor for slice probe latencies (weight of the newest
    /// observation).
    pub slice_ewma_alpha: f64,
    /// Timed probe reads per slice per window.
    pub slice_probe_reads: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            window_cycles: 256,
            link_drop_threshold: 1,
            breaker: BreakerConfig::default(),
            slice_margin_cycles: 300.0,
            slice_ewma_alpha: 0.5,
            slice_probe_reads: 2,
        }
    }
}

/// Health-layer tuning for inter-device fabric links, consumed by
/// `gnoc-fabric`'s per-fabric-link monitor. Kept here, next to the die-level
/// [`HealthConfig`], so the two detection policies are tuned side by side.
///
/// Fabric links differ from mesh links in two ways that shape the defaults
/// (justified in DESIGN.md): crossings are much rarer than per-cycle flit
/// hops, so one window sees few chances to fail and the drop threshold must
/// stay at 1; and a fabric retransmission is far more expensive than a mesh
/// retry, so the breaker uses the same hysteresis but the fabric layer sizes
/// its retry budget to outlive `failure_windows` full windows of drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricHealthConfig {
    /// Cycles between fabric monitor polls (one breaker window).
    pub window_cycles: u64,
    /// Crossing drops within one window that mark a fabric link's window as
    /// failing.
    pub link_drop_threshold: u64,
    /// Breaker state-machine tuning (shared hysteresis discipline with the
    /// die-level monitors).
    pub breaker: BreakerConfig,
}

impl Default for FabricHealthConfig {
    fn default() -> Self {
        Self {
            window_cycles: 256,
            link_drop_threshold: 1,
            breaker: BreakerConfig::default(),
        }
    }
}

/// One breaker transition, stamped with when and for which resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionRecord {
    /// Mesh cycle (links) or window index (slices) of the transition.
    pub at: u64,
    /// Human-readable resource name, e.g. `link 7:East` or `slice 12`.
    pub resource: String,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// A resource whose breaker has opened at least once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Resource name, matching [`TransitionRecord::resource`].
    pub resource: String,
    /// When the breaker first opened (mesh cycle for links, window index for
    /// slices).
    pub first_open_at: u64,
    /// Breaker state at the end of the run.
    pub state: BreakerState,
}

fn dir_of_port(port: usize) -> Option<Direction> {
    match port {
        1 => Some(Direction::North),
        2 => Some(Direction::East),
        3 => Some(Direction::South),
        4 => Some(Direction::West),
        _ => None,
    }
}

/// Watches every directed mesh link through its drop counter and drives one
/// breaker per link.
#[derive(Debug)]
pub struct LinkHealthMonitor {
    cfg: HealthConfig,
    /// One breaker per `router * NUM_PORTS + port` slot (LOCAL slots idle).
    breakers: Vec<CircuitBreaker>,
    last_drops: Vec<u64>,
    windows: u64,
    transitions: Vec<TransitionRecord>,
    first_open: Vec<Option<u64>>,
    /// Links whose quarantine was refused because it would disconnect the
    /// mesh — detected but left in service.
    refused: Vec<(u32, Direction)>,
}

impl LinkHealthMonitor {
    /// A monitor for a mesh with `num_routers` routers.
    pub fn new(num_routers: usize, cfg: HealthConfig) -> Self {
        let n = num_routers * NUM_PORTS;
        Self {
            cfg,
            breakers: vec![CircuitBreaker::new(cfg.breaker); n],
            last_drops: vec![0; n],
            windows: 0,
            transitions: Vec::new(),
            first_open: vec![None; n],
            refused: Vec::new(),
        }
    }

    /// Runs one health window: reads drop deltas, advances every breaker,
    /// and applies quarantine / probe / release actions on the mesh.
    ///
    /// # Errors
    ///
    /// Propagates [`NocError`] from mesh reconfiguration, except
    /// [`NocError::QuarantineWouldDisconnect`], which is recorded as a
    /// refusal and leaves the link in service.
    pub fn poll(&mut self, rm: &mut ReliableMesh) -> Result<(), NocError> {
        let cycle = rm.mesh().cycle();
        let drops = rm.mesh().stats().link_drops.clone();
        debug_assert_eq!(drops.len(), self.breakers.len());
        #[allow(clippy::needless_range_loop)] // idx addresses four parallel arrays
        for idx in 0..self.breakers.len() {
            let Some(dir) = dir_of_port(idx % NUM_PORTS) else {
                continue;
            };
            let router = (idx / NUM_PORTS) as u32;
            let delta = drops[idx].saturating_sub(self.last_drops[idx]);
            let breaker = &mut self.breakers[idx];
            match breaker.state() {
                BreakerState::Closed | BreakerState::Open => {
                    let failing = delta >= self.cfg.link_drop_threshold.max(1);
                    if let Some(t) = breaker.on_window(failing) {
                        self.transitions.push(TransitionRecord {
                            at: cycle,
                            resource: link_name(router, dir),
                            from: t.from,
                            to: t.to,
                        });
                        if t.to == BreakerState::Open {
                            self.first_open[idx].get_or_insert(cycle);
                            match rm.mesh_mut().quarantine_link(router, dir) {
                                Ok(()) => {}
                                Err(NocError::QuarantineWouldDisconnect { .. }) => {
                                    self.refused.push((router, dir));
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                BreakerState::HalfOpen => {
                    let ok = rm.mesh_mut().probe_link(router, dir)?;
                    if let Some(t) = self.breakers[idx].on_probe(ok) {
                        self.transitions.push(TransitionRecord {
                            at: cycle,
                            resource: link_name(router, dir),
                            from: t.from,
                            to: t.to,
                        });
                        if t.to == BreakerState::Closed {
                            rm.mesh_mut().release_link(router, dir)?;
                        }
                    }
                }
            }
        }
        self.last_drops = drops;
        self.windows += 1;
        Ok(())
    }

    /// Every breaker transition so far, in poll order.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// Links whose breaker has ever opened, with first-open cycle.
    pub fn detections(&self) -> Vec<Detection> {
        self.first_open
            .iter()
            .enumerate()
            .filter_map(|(idx, at)| {
                let at = (*at)?;
                let dir = dir_of_port(idx % NUM_PORTS)?;
                Some(Detection {
                    resource: link_name((idx / NUM_PORTS) as u32, dir),
                    first_open_at: at,
                    state: self.breakers[idx].state(),
                })
            })
            .collect()
    }

    /// Links whose breaker first opened, as `(router, dir, cycle)` triples.
    pub fn detected_links(&self) -> Vec<(u32, Direction, u64)> {
        self.first_open
            .iter()
            .enumerate()
            .filter_map(|(idx, at)| {
                let at = (*at)?;
                let dir = dir_of_port(idx % NUM_PORTS)?;
                Some(((idx / NUM_PORTS) as u32, dir, at))
            })
            .collect()
    }

    /// Quarantine refusals (would disconnect the mesh).
    pub fn refused(&self) -> &[(u32, Direction)] {
        &self.refused
    }

    /// Completed health windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

fn link_name(router: u32, dir: Direction) -> String {
    format!("link {router}:{dir:?}")
}

/// Watches every L2 slice through timed probe reads and drives one breaker
/// per slice. The failing criterion is a latency EWMA sitting more than
/// [`HealthConfig::slice_margin_cycles`] above the device's calibrated hit
/// latency for that (SM, slice) pair.
#[derive(Debug)]
pub struct SliceHealthMonitor {
    cfg: HealthConfig,
    /// The SM issuing probe reads.
    sm: SmId,
    breakers: Vec<CircuitBreaker>,
    ewma: Vec<Option<f64>>,
    windows: u64,
    transitions: Vec<TransitionRecord>,
    first_open: Vec<Option<u64>>,
    /// Slices whose quarantine was refused (would empty the L2 or a
    /// partition) — detected but left in service.
    refused: Vec<u32>,
}

impl SliceHealthMonitor {
    /// A monitor probing from `sm` over `num_slices` slices.
    pub fn new(num_slices: usize, sm: SmId, cfg: HealthConfig) -> Self {
        Self {
            cfg,
            sm,
            breakers: vec![CircuitBreaker::new(cfg.breaker); num_slices],
            ewma: vec![None; num_slices],
            windows: 0,
            transitions: Vec::new(),
            first_open: vec![None; num_slices],
            refused: Vec::new(),
        }
    }

    /// Runs one health window of probe reads against `dev`.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError`] from the release remap; quarantine
    /// refusals ([`DeviceError`] from the disable remap) are recorded and
    /// leave the slice in service.
    pub fn poll(&mut self, dev: &mut GpuDevice) -> Result<(), DeviceError> {
        let window = self.windows;
        for idx in 0..self.breakers.len() {
            let slice = SliceId::new(idx as u32);
            let expected = dev.hit_cycles_mean(self.sm, slice);
            let limit = expected + self.cfg.slice_margin_cycles;
            match self.breakers[idx].state() {
                BreakerState::Closed => {
                    let reads = self.cfg.slice_probe_reads.max(1);
                    let mut sum = 0u64;
                    for _ in 0..reads {
                        sum += dev.probe_slice_latency(self.sm, slice);
                    }
                    let obs = sum as f64 / f64::from(reads);
                    let alpha = self.cfg.slice_ewma_alpha.clamp(0.0, 1.0);
                    let ewma = match self.ewma[idx] {
                        Some(prev) => alpha * obs + (1.0 - alpha) * prev,
                        None => obs,
                    };
                    self.ewma[idx] = Some(ewma);
                    let failing = ewma > limit;
                    if let Some(t) = self.breakers[idx].on_window(failing) {
                        self.transitions.push(TransitionRecord {
                            at: window,
                            resource: slice_name(idx),
                            from: t.from,
                            to: t.to,
                        });
                        self.first_open[idx].get_or_insert(window);
                        if dev.quarantine_slice(slice).is_err() {
                            self.refused.push(idx as u32);
                        }
                    }
                }
                BreakerState::Open => {
                    if let Some(t) = self.breakers[idx].on_window(false) {
                        self.transitions.push(TransitionRecord {
                            at: window,
                            resource: slice_name(idx),
                            from: t.from,
                            to: t.to,
                        });
                    }
                }
                BreakerState::HalfOpen => {
                    let obs = dev.probe_slice_latency(self.sm, slice) as f64;
                    let ok = obs <= limit;
                    if let Some(t) = self.breakers[idx].on_probe(ok) {
                        self.transitions.push(TransitionRecord {
                            at: window,
                            resource: slice_name(idx),
                            from: t.from,
                            to: t.to,
                        });
                        if t.to == BreakerState::Closed {
                            dev.release_slice(slice)?;
                            self.ewma[idx] = None;
                        }
                    }
                }
            }
        }
        self.windows += 1;
        Ok(())
    }

    /// Every breaker transition so far, in poll order.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// Slices whose breaker has ever opened, with first-open window.
    pub fn detections(&self) -> Vec<Detection> {
        self.first_open
            .iter()
            .enumerate()
            .filter_map(|(idx, at)| {
                Some(Detection {
                    resource: slice_name(idx),
                    first_open_at: (*at)?,
                    state: self.breakers[idx].state(),
                })
            })
            .collect()
    }

    /// Slices whose breaker first opened, as `(slice, window)` pairs.
    pub fn detected_slices(&self) -> Vec<(u32, u64)> {
        self.first_open
            .iter()
            .enumerate()
            .filter_map(|(idx, at)| Some((idx as u32, (*at)?)))
            .collect()
    }

    /// Quarantine refusals (remap rejected).
    pub fn refused(&self) -> &[u32] {
        &self.refused
    }

    /// Completed health windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

fn slice_name(idx: usize) -> String {
    format!("slice {idx}")
}
