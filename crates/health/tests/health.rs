//! End-to-end detection tests: the device under test never reads the fault
//! plan; everything is inferred from drop counters and probe latencies.

use gnoc_faults::{Direction, FaultPlan, LinkFault, LinkFaultKind};
use gnoc_health::{BreakerState, HealthConfig, SelfHealingMesh};
use gnoc_noc::{ArbiterKind, MeshConfig, RetryConfig};
use gnoc_topo::GpuSpec;

fn mesh_cfg() -> MeshConfig {
    MeshConfig::paper_6x6(ArbiterKind::RoundRobin)
}

fn healer(plan: &FaultPlan) -> SelfHealingMesh {
    SelfHealingMesh::new(
        mesh_cfg(),
        plan,
        RetryConfig::default(),
        HealthConfig::default(),
    )
    .unwrap()
}

#[test]
fn benign_mesh_has_no_detections() {
    let mut h = healer(&FaultPlan::none());
    h.run_detection(8_000).unwrap();
    let report = h.report();
    assert!(
        report.detections.is_empty(),
        "false positives on a benign mesh: {:?}",
        report.detections
    );
    assert!(report.quarantined_now.is_empty());
    assert_eq!(report.lost, 0);
    assert!(report.delivered > 0, "patrol traffic must flow");
}

#[test]
fn dead_link_is_detected_and_quarantined() {
    let mut plan = FaultPlan::none();
    plan.links.push(LinkFault {
        router: 14,
        dir: Direction::North,
        kind: LinkFaultKind::Dead,
        onset: 0,
    });
    let mut h = healer(&plan);
    h.run_detection(8_000).unwrap();
    let detected = h.detected_links();
    assert_eq!(
        detected.len(),
        1,
        "exactly the dead link must open: {detected:?}"
    );
    assert_eq!(detected[0].0, 14);
    assert_eq!(detected[0].1, Direction::North);
    // Once quarantined, routing avoids the link, so it stays out of service
    // (probes against a dead link fail, re-opening the breaker).
    let report = h.report();
    assert!(report
        .quarantined_now
        .contains(&"link 14:North".to_string()));
    assert!(report.reroutes >= 1);
}

#[test]
fn onset_fault_detection_latency_is_bounded() {
    const ONSET: u64 = 3_000;
    let mut plan = FaultPlan::none();
    plan.links.push(LinkFault {
        router: 8,
        dir: Direction::East,
        kind: LinkFaultKind::Dead,
        onset: ONSET,
    });
    let mut h = healer(&plan);
    h.run_detection(ONSET + 8_000).unwrap();
    let detected = h.detected_links();
    assert_eq!(detected.len(), 1, "{detected:?}");
    let (_, _, cycle) = detected[0];
    assert!(cycle >= ONSET, "cannot detect before the fault exists");
    assert!(
        cycle <= ONSET + 6_000,
        "detection latency {} exceeds bound",
        cycle - ONSET
    );
}

#[test]
fn very_flaky_link_trips_its_breaker() {
    let mut plan = FaultPlan::none();
    plan.seed = 9;
    plan.links.push(LinkFault {
        router: 20,
        dir: Direction::West,
        kind: LinkFaultKind::Flaky { drop_prob: 0.9 },
        onset: 0,
    });
    let mut h = healer(&plan);
    h.run_detection(10_000).unwrap();
    let detected = h.detected_links();
    assert!(
        detected
            .iter()
            .any(|&(r, d, _)| r == 20 && d == Direction::West),
        "flaky link not detected: {detected:?}"
    );
    // No healthy link may be blamed.
    assert!(
        detected
            .iter()
            .all(|&(r, d, _)| r == 20 && d == Direction::West),
        "healthy links blamed: {detected:?}"
    );
}

#[test]
fn detection_is_deterministic() {
    let mut plan = FaultPlan::none();
    plan.seed = 5;
    plan.links.push(LinkFault {
        router: 9,
        dir: Direction::South,
        kind: LinkFaultKind::Dead,
        onset: 1_000,
    });
    plan.links.push(LinkFault {
        router: 27,
        dir: Direction::East,
        kind: LinkFaultKind::Flaky { drop_prob: 0.5 },
        onset: 0,
    });
    let run = |_: u32| {
        let mut h = healer(&plan);
        h.run_detection(12_000).unwrap();
        serde_json::to_string(&h.report()).unwrap()
    };
    assert_eq!(run(0), run(1), "breaker history must be bit-identical");
}

#[test]
fn health_report_round_trips_through_json() {
    let mut plan = FaultPlan::none();
    plan.links.push(LinkFault {
        router: 14,
        dir: Direction::North,
        kind: LinkFaultKind::Dead,
        onset: 0,
    });
    let mut h = healer(&plan);
    h.run_detection(6_000).unwrap();
    let report = h.report();
    let json = serde_json::to_string(&report).unwrap();
    let back: gnoc_health::HealthReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn latent_faulty_slices_are_detected_and_quarantined() {
    let mut plan = FaultPlan::none();
    plan.disabled_slices = vec![3, 17];
    let (dev, monitor) = gnoc_health::run_slice_detection_for_spec(
        GpuSpec::v100(),
        &plan,
        42,
        HealthConfig::default(),
        20,
    )
    .unwrap();
    let detected: Vec<u32> = monitor.detected_slices().iter().map(|&(s, _)| s).collect();
    assert_eq!(detected, vec![3, 17], "exactly the faulty slices must open");
    assert_eq!(dev.quarantined_slices(), &[3, 17]);
    // Probes against a still-faulty slice keep failing, so no breaker may
    // have closed again.
    for d in monitor.detections() {
        assert_ne!(d.state, BreakerState::Closed, "{d:?}");
    }
    // Detection latency: the penalty dwarfs the margin, so the leaky bucket
    // fills in the first two windows.
    for &(_, window) in &monitor.detected_slices() {
        assert!(window <= 2, "slice detection too slow: window {window}");
    }
}

#[test]
fn healthy_device_has_no_slice_detections() {
    let (dev, monitor) = gnoc_health::run_slice_detection_for_spec(
        GpuSpec::v100(),
        &FaultPlan::none(),
        7,
        HealthConfig::default(),
        25,
    )
    .unwrap();
    assert!(monitor.detected_slices().is_empty());
    assert!(dev.quarantined_slices().is_empty());
}

#[test]
fn quarantine_restores_patrol_delivery() {
    // After the dead link is fenced off, later patrol rounds route around it
    // and stop losing transfers: losses must plateau.
    let mut plan = FaultPlan::none();
    plan.links.push(LinkFault {
        router: 14,
        dir: Direction::North,
        kind: LinkFaultKind::Dead,
        onset: 0,
    });
    let mut h = healer(&plan);
    h.run_detection(8_000).unwrap();
    let lost_at_detect = h.report().lost;
    h.run_detection(30_000).unwrap();
    let report = h.report();
    assert_eq!(
        report.lost, lost_at_detect,
        "losses must stop once the link is quarantined"
    );
    assert!(report.delivered > 0);
}
