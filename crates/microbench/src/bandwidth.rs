//! Bandwidth microbenchmarks — the paper's Algorithm 2.
//!
//! All threads of many blocks stream L1-bypassing accesses whose addresses
//! are pre-selected (via the `M[s]` tables) to hit chosen L2 slices;
//! bandwidth is bytes moved over elapsed time. The model resolves the
//! steady-state rates through the engine's max-min fair fabric solver and
//! adds small measurement jitter.

use gnoc_engine::{AccessKind, FlowSpec, GpuDevice};
use gnoc_topo::{CachePolicy, SliceId, SmId};

/// Builds one flow per `(sm, slice)` pair.
pub fn cross_flows(sms: &[SmId], slices: &[SliceId], kind: AccessKind) -> Vec<FlowSpec> {
    sms.iter()
        .flat_map(|&sm| {
            slices
                .iter()
                .map(move |&slice| FlowSpec { sm, slice, kind })
        })
        .collect()
}

/// The slices an SM's L2 traffic can target on this device: every slice on
/// globally-shared devices, the local partition's slices on H100-style
/// partition-local devices.
pub fn reachable_slices(dev: &GpuDevice, sm: SmId) -> Vec<SliceId> {
    let h = dev.hierarchy();
    match dev.spec().cache_policy {
        CachePolicy::GloballyShared => SliceId::range(h.num_slices()).collect(),
        CachePolicy::PartitionLocal => h.slices_in_partition(h.sm(sm).partition).to_vec(),
    }
}

/// Measured bandwidth (GB/s, with jitter) of `sms` streaming reads that hit
/// in `slice`.
pub fn sms_to_slice_gbps(dev: &mut GpuDevice, sms: &[SmId], slice: SliceId) -> f64 {
    let flows = cross_flows(sms, &[slice], AccessKind::ReadHit);
    let total = dev.solve_bandwidth(&flows).total_gbps;
    (total + dev.bandwidth_jitter(bw_sigma(sms.len()))).max(0.0)
}

/// Measured bandwidth of `sms` streaming reads spread over `slices`.
pub fn sms_to_slices_gbps(dev: &mut GpuDevice, sms: &[SmId], slices: &[SliceId]) -> f64 {
    let flows = cross_flows(sms, slices, AccessKind::ReadHit);
    let total = dev.solve_bandwidth(&flows).total_gbps;
    (total + dev.bandwidth_jitter(bw_sigma(sms.len()))).max(0.0)
}

/// Per-slice bandwidth profile of a single SM (paper Fig. 12): one
/// measurement per reachable slice, each with the slice as sole target.
pub fn sm_slice_profile_gbps(dev: &mut GpuDevice, sm: SmId) -> Vec<f64> {
    let slices = reachable_slices(dev, sm);
    slices
        .into_iter()
        .map(|slice| sms_to_slice_gbps(dev, &[sm], slice))
        .collect()
}

/// Aggregate L2 *fabric* bandwidth: every SM streams L2-hitting reads across
/// every reachable slice (paper Fig. 9a, "L2" bars).
pub fn aggregate_fabric_gbps(dev: &mut GpuDevice) -> f64 {
    aggregate_gbps(dev, AccessKind::ReadHit)
}

/// Aggregate *global memory* bandwidth: every SM streams L2-missing reads
/// (paper Fig. 9a, "memory" bars).
pub fn aggregate_memory_gbps(dev: &mut GpuDevice) -> f64 {
    aggregate_gbps(dev, AccessKind::ReadMiss)
}

fn aggregate_gbps(dev: &mut GpuDevice, kind: AccessKind) -> f64 {
    let num_sms = dev.hierarchy().num_sms();
    let mut flows = Vec::new();
    for sm in SmId::range(num_sms) {
        let slices = reachable_slices(dev, sm);
        flows.extend(cross_flows(&[sm], &slices, kind));
    }
    let total = dev.solve_bandwidth(&flows).total_gbps;
    (total + dev.bandwidth_jitter(2.0)).max(0.0)
}

/// Measurement noise grows mildly with the number of co-operating SMs; a
/// single-SM run matches the paper's σ ≈ 0.15 GB/s (Fig. 9b), a full-GPC run
/// its σ ≈ 0.06 GB/s relative tightness (Fig. 9c).
fn bw_sigma(num_sms: usize) -> f64 {
    if num_sms <= 1 {
        0.15
    } else {
        0.06
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_analysis::{Histogram, Summary};
    use gnoc_topo::{GpcId, PartitionId};

    #[test]
    fn single_sm_to_slice_is_34_gbps_on_v100() {
        // Fig. 9b: mean ≈ 34 GB/s, tight distribution.
        let mut dev = GpuDevice::v100(0);
        let samples: Vec<f64> = (0..40)
            .map(|i| sms_to_slice_gbps(&mut dev, &[SmId::new(i % 80)], SliceId::new((i * 7) % 32)))
            .collect();
        let s = Summary::of(&samples);
        assert!((32.0..36.0).contains(&s.mean), "{s}");
        assert!(s.stddev < 0.5, "distribution should be tight: {s}");
    }

    #[test]
    fn gpc_to_slice_saturates_near_85_on_v100() {
        // Fig. 9c.
        let mut dev = GpuDevice::v100(1);
        let sms = dev.hierarchy().sms_in_gpc(GpcId::new(2)).to_vec();
        let bw = sms_to_slice_gbps(&mut dev, &sms, SliceId::new(9));
        assert!((78.0..90.0).contains(&bw), "{bw}");
    }

    #[test]
    fn a100_profile_is_bimodal() {
        // Fig. 12/13a: near slices ≈ 39.5, far ≈ 26–30 GB/s.
        let mut dev = GpuDevice::a100(0);
        let profile = sm_slice_profile_gbps(&mut dev, SmId::new(0));
        assert_eq!(profile.len(), 80);
        let near = Summary::of(&profile[..40]);
        let far = Summary::of(&profile[40..]);
        assert!((37.0..42.0).contains(&near.mean), "near {near}");
        assert!((23.0..32.0).contains(&far.mean), "far {far}");
        let h = Histogram::new(&profile, 20.0, 45.0, 25);
        assert_eq!(h.peak_count(0.2), 2, "{}", h.render_ascii(40));
    }

    #[test]
    fn a100_sm0_and_sm2_mirror_each_other() {
        // Fig. 12: SM0 and SM2 sit on opposite partitions, so their near/far
        // slice ranges swap.
        let mut dev = GpuDevice::a100(0);
        let p0 = sm_slice_profile_gbps(&mut dev, SmId::new(0));
        let p2 = sm_slice_profile_gbps(&mut dev, SmId::new(2));
        let near0 = Summary::of(&p0[..40]).mean;
        let far0 = Summary::of(&p0[40..]).mean;
        let near2 = Summary::of(&p2[40..]).mean;
        let far2 = Summary::of(&p2[..40]).mean;
        assert!(near0 > far0 + 5.0);
        assert!(near2 > far2 + 5.0);
    }

    #[test]
    fn h100_profile_is_unimodal() {
        // Fig. 13b: partition-local caching leaves a single peak.
        let mut dev = GpuDevice::h100(0);
        let profile = sm_slice_profile_gbps(&mut dev, SmId::new(0));
        assert_eq!(profile.len(), 40);
        // Same axis style as Fig. 13: a fixed bandwidth range.
        let h = Histogram::new(&profile, 20.0, 70.0, 25);
        assert_eq!(h.peak_count(0.25), 1, "{}", h.render_ascii(40));
    }

    #[test]
    fn fabric_exceeds_memory_bandwidth_on_all_presets() {
        // Observation #7 via the microbench layer.
        for (name, mut dev) in [
            ("V100", GpuDevice::v100(0)),
            ("A100", GpuDevice::a100(0)),
            ("H100", GpuDevice::h100(0)),
        ] {
            let fabric = aggregate_fabric_gbps(&mut dev);
            let mem = aggregate_memory_gbps(&mut dev);
            let ratio = fabric / mem;
            assert!(
                (2.0..4.0).contains(&ratio),
                "{name}: fabric {fabric:.0} / mem {mem:.0} = {ratio:.2}"
            );
        }
    }

    #[test]
    fn partition_traffic_respects_cache_policy() {
        let dev = GpuDevice::h100(0);
        let sm = SmId::new(0);
        let slices = reachable_slices(&dev, sm);
        let p = dev.hierarchy().sm(sm).partition;
        assert!(slices
            .iter()
            .all(|&s| dev.hierarchy().slice(s).partition == p));
        assert_eq!(
            reachable_slices(&GpuDevice::v100(0), SmId::new(0)).len(),
            32
        );
        let _ = PartitionId::new(0);
    }
}
