//! Latency under load.
//!
//! Algorithm 1 measures *unloaded* latency (one thread, no contention). A
//! complete interconnect characterisation also needs the latency–bandwidth
//! curve: how round-trip latency inflates as background traffic pushes the
//! fabric towards saturation. The engine's fixed-point solver already
//! computes per-flow effective latencies; this probe exposes them the way a
//! measurement campaign would.
//!
//! Note on saturation: the solver models *equilibrium* queueing (utilisation
//! is capped at capacity), so past the fabric's saturation point the reported
//! latency reflects the throttled steady state rather than the unbounded
//! queue growth of an open-loop network — compare the cycle-level `gnoc-noc`
//! load curves, which do blow up.

use crate::bandwidth::{cross_flows, reachable_slices};
use gnoc_engine::{AccessKind, FlowSpec, GpuDevice};
use gnoc_topo::{SliceId, SmId};
use serde::{Deserialize, Serialize};

/// One point of a latency-under-load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadedPoint {
    /// Number of background SMs streaming.
    pub background_sms: usize,
    /// Aggregate background bandwidth achieved, GB/s.
    pub background_gbps: f64,
    /// The probe flow's effective round-trip latency, cycles.
    pub probe_latency: f64,
}

/// Measures the probe's `(sm → slice)` effective latency while `background`
/// SMs stream to every reachable slice.
pub fn loaded_latency(
    dev: &GpuDevice,
    probe_sm: SmId,
    probe_slice: SliceId,
    background: &[SmId],
) -> LoadedPoint {
    let mut flows = vec![FlowSpec {
        sm: probe_sm,
        slice: probe_slice,
        kind: AccessKind::ReadHit,
    }];
    for &sm in background {
        let slices = reachable_slices(dev, sm);
        flows.extend(cross_flows(&[sm], &slices, AccessKind::ReadHit));
    }
    let sol = dev.solve_bandwidth(&flows);
    LoadedPoint {
        background_sms: background.len(),
        background_gbps: sol.total_gbps - sol.rates_gbps[0],
        probe_latency: sol.latencies_cycles[0],
    }
}

/// Sweeps the background intensity: `counts[i]` background SMs (excluding the
/// probe SM) each streaming to all slices.
pub fn latency_bandwidth_curve(
    dev: &GpuDevice,
    probe_sm: SmId,
    probe_slice: SliceId,
    counts: &[usize],
) -> Vec<LoadedPoint> {
    let h = dev.hierarchy();
    let others: Vec<SmId> = SmId::range(h.num_sms())
        .filter(|&sm| sm != probe_sm)
        .collect();
    counts
        .iter()
        .map(|&n| loaded_latency(dev, probe_sm, probe_slice, &others[..n.min(others.len())]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_inflates_with_load() {
        let dev = GpuDevice::v100(0);
        let curve = latency_bandwidth_curve(&dev, SmId::new(0), SliceId::new(0), &[0, 8, 24]);
        // With no background the probe pays only its own modest queueing on
        // top of the unloaded model mean; fully loaded is visibly higher.
        let base = dev.hit_cycles_mean(SmId::new(0), SliceId::new(0));
        assert!(
            curve[0].probe_latency >= base && curve[0].probe_latency < base + 20.0,
            "unloaded {} vs model {base}",
            curve[0].probe_latency
        );
        let last = curve.last().unwrap();
        assert!(
            last.probe_latency > base + 30.0,
            "loaded latency should inflate: {} vs {base}",
            last.probe_latency
        );
        // Latency grows monotonically up to saturation.
        for w in curve.windows(2) {
            assert!(w[1].probe_latency >= w[0].probe_latency - 1.0, "{curve:?}");
        }
    }

    #[test]
    fn background_bandwidth_grows_then_saturates() {
        let dev = GpuDevice::v100(0);
        let curve = latency_bandwidth_curve(&dev, SmId::new(0), SliceId::new(0), &[8, 24, 79]);
        assert!(curve[1].background_gbps > curve[0].background_gbps);
        // Near the aggregate fabric limit with all SMs on.
        assert!(
            curve[2].background_gbps > 1_500.0,
            "{}",
            curve[2].background_gbps
        );
    }
}
