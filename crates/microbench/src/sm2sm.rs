//! SM-to-SM (distributed shared memory) latency probe — paper Fig. 7.
//!
//! H100 lets a thread load from the shared memory of another SM in the same
//! GPC through an SM-to-SM network. Probing every (source CPC, destination
//! CPC) pair reveals the CPC hierarchy: intra-CPC0 traffic is fastest, CPC2
//! slowest, because of their distance from the network switch.

use gnoc_engine::GpuDevice;
use gnoc_topo::GpcId;

/// Mean SM-to-SM latency for every `(src CPC, dst CPC)` pair within `gpc`,
/// or `None` when the device has no SM-to-SM network.
///
/// Result is indexed `[src_cpc_in_gpc][dst_cpc_in_gpc]` and averages over all
/// SM pairs (excluding an SM loading from itself).
pub fn cpc_latency_matrix(
    dev: &mut GpuDevice,
    gpc: GpcId,
    samples: usize,
) -> Option<Vec<Vec<f64>>> {
    if !dev.spec().sm_to_sm_network {
        return None;
    }
    let cpcs = dev.hierarchy().cpcs_in_gpc(gpc).to_vec();
    let cpc_sms: Vec<Vec<_>> = cpcs
        .iter()
        .map(|&c| dev.hierarchy().sms_in_cpc(c).to_vec())
        .collect();
    let mut matrix = vec![vec![0.0; cpcs.len()]; cpcs.len()];
    for (i, src_sms) in cpc_sms.iter().enumerate() {
        for (j, dst_sms) in cpc_sms.iter().enumerate() {
            let mut acc = 0.0;
            let mut n = 0.0;
            for &src in src_sms {
                for &dst in dst_sms {
                    if src == dst {
                        continue;
                    }
                    for _ in 0..samples.max(1) {
                        acc += dev
                            .timed_sm2sm_read(src, dst)
                            .expect("same-GPC pair on an SM-to-SM device")
                            as f64;
                        n += 1.0;
                    }
                }
            }
            matrix[i][j] = acc / n;
        }
    }
    Some(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_has_no_sm2sm_network() {
        let mut dev = GpuDevice::v100(0);
        assert!(cpc_latency_matrix(&mut dev, GpcId::new(0), 1).is_none());
    }

    #[test]
    fn h100_matrix_matches_fig7_structure() {
        let mut dev = GpuDevice::h100(0);
        let m = cpc_latency_matrix(&mut dev, GpcId::new(0), 2).unwrap();
        assert_eq!(m.len(), 3);
        // Intra-CPC0 is the fastest pairing, intra-CPC2 the slowest.
        let min = m.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
        let max = m.iter().flatten().cloned().fold(0.0, f64::max);
        assert_eq!(m[0][0], min.max(m[0][0]).min(m[0][0]));
        assert!(
            (m[0][0] - min).abs() < 3.0,
            "CPC0-CPC0 {} vs min {min}",
            m[0][0]
        );
        assert!(
            (m[2][2] - max).abs() < 3.0,
            "CPC2-CPC2 {} vs max {max}",
            m[2][2]
        );
        // Paper range: ≈ 196 to ≈ 213 cycles.
        assert!((188.0..204.0).contains(&m[0][0]), "{}", m[0][0]);
        assert!((202.0..225.0).contains(&m[2][2]), "{}", m[2][2]);
        // Symmetry of the average (request path is symmetric in the model).
        assert!((m[0][2] - m[2][0]).abs() < 3.0);
    }

    #[test]
    fn latency_grows_with_cpc_distance() {
        let mut dev = GpuDevice::h100(1);
        let m = cpc_latency_matrix(&mut dev, GpcId::new(3), 2).unwrap();
        assert!(m[0][1] < m[0][2], "{} vs {}", m[0][1], m[0][2]);
    }
}
