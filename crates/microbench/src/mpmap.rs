//! Memory-partition structure inference from bandwidth contention.
//!
//! The latency side of the paper recovers *core* placement (Observation #4);
//! this probe recovers the *memory-side* grouping: which L2 slices share a
//! memory partition. Two slices in the same MP share the MP input port and
//! the GPC↔MP ports, so driving both at once yields less than the sum of
//! driving each alone — while slices in different MPs scale almost
//! additively (near-ideal L2 input speedup, Fig. 15a). Clustering the
//! pairwise sub-additivity recovers the MP map, which the paper notes is the
//! knowledge needed for a covert channel at the NoC *output*.

use crate::bandwidth::cross_flows;
use gnoc_engine::{AccessKind, GpuDevice};
use gnoc_topo::{GpcId, SliceId, SmId};

/// How sub-additive a slice pair is: `1 - together / (solo_a + solo_b)`.
/// Near 0 = independent resources; larger = shared bottleneck.
///
/// The probe uses the SMs of a *single* GPC, split between the two slices:
/// the GPC owns one port per memory partition, so if both slices live in one
/// MP the two halves fight over that port (the "speedup in space" of
/// Fig. 15c in reverse), while slices of different MPs engage two ports and
/// scale additively.
pub fn pair_subadditivity(dev: &GpuDevice, a: SliceId, b: SliceId) -> f64 {
    let h = dev.hierarchy();
    // A GPC on the slice-pair's side of the die (partition-local devices can
    // only drive local slices).
    let gpc = gnoc_topo::GpcId::range(h.num_gpcs())
        .find(|&g| h.partition_of_gpc(g) == h.slice(a).partition)
        .unwrap_or(GpcId::new(0));
    let sms: Vec<SmId> = h.sms_in_gpc(gpc).to_vec();
    let half = sms.len() / 2;
    let bw = |targets: &[(SliceId, &[SmId])]| -> f64 {
        let mut flows = Vec::new();
        for &(slice, group) in targets {
            flows.extend(cross_flows(group, &[slice], AccessKind::ReadHit));
        }
        dev.solve_bandwidth(&flows).total_gbps
    };
    let solo_a = bw(&[(a, &sms[..half])]);
    let solo_b = bw(&[(b, &sms[half..])]);
    let together = bw(&[(a, &sms[..half]), (b, &sms[half..])]);
    (1.0 - together / (solo_a + solo_b)).max(0.0)
}

/// Infers slice groups by clustering pairwise sub-additivity above
/// `threshold` (0.05–0.15 works across the presets). Returns one group label
/// per slice, in first-appearance order.
///
/// Probing is O(slices²) bandwidth solves; restrict `slices` to the set of
/// interest on big devices.
pub fn infer_mp_groups(dev: &GpuDevice, slices: &[SliceId], threshold: f64) -> Vec<usize> {
    let n = slices.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = pair_subadditivity(dev, slices[i], slices[j]);
            matrix[i][j] = s;
            matrix[j][i] = s;
        }
        matrix[i][i] = 1.0;
    }
    gnoc_analysis::correlation_clusters(&matrix, threshold)
}

/// Scores an inferred grouping against the device's true MP map (Rand
/// index over slice pairs).
pub fn score_against_truth(dev: &GpuDevice, slices: &[SliceId], labels: &[usize]) -> f64 {
    let truth: Vec<usize> = slices
        .iter()
        .map(|&s| dev.hierarchy().slice(s).mp.index())
        .collect();
    gnoc_analysis::rand_index(labels, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_mp_pairs_are_subadditive() {
        let dev = GpuDevice::v100(0);
        let h = dev.hierarchy();
        let mp0 = h.slices_in_mp(gnoc_topo::MpId::new(0));
        let mp1 = h.slices_in_mp(gnoc_topo::MpId::new(1));
        let same = pair_subadditivity(&dev, mp0[0], mp0[1]);
        let diff = pair_subadditivity(&dev, mp0[0], mp1[0]);
        assert!(
            same > diff + 0.05,
            "same-MP subadditivity {same:.3} vs cross-MP {diff:.3}"
        );
    }

    #[test]
    fn mp_groups_are_recovered_on_v100() {
        let dev = GpuDevice::v100(0);
        // Probe the first four MPs' worth of slices (16 slices, 120 pairs).
        let slices: Vec<SliceId> = SliceId::range(16).collect();
        let labels = infer_mp_groups(&dev, &slices, 0.08);
        let score = score_against_truth(&dev, &slices, &labels);
        assert_eq!(
            score, 1.0,
            "MP structure should be exactly recovered: labels {labels:?}"
        );
    }

    #[test]
    fn subadditivity_is_within_unit_range() {
        let dev = GpuDevice::a100(0);
        let s = pair_subadditivity(&dev, SliceId::new(0), SliceId::new(1));
        assert!((0.0..=1.0).contains(&s), "{s}");
    }
}
