//! Reverse engineering of the address → L2-slice mapping.
//!
//! On V100 the paper reads the profiler's non-aggregated per-slice counters
//! to learn which slice each address maps to. On A100/H100 those counters are
//! gone (footnote 1), so the paper falls back to a contention probe: one
//! kernel hammers a fixed reference address while another hammers the
//! candidate; a bandwidth drop reveals that both addresses share a slice.
//! Both methods are implemented here against the virtual device.

use crate::bandwidth::cross_flows;
use gnoc_engine::{AccessKind, GpuDevice};
use gnoc_topo::{GpcId, SliceId, SmId};

/// Identifies the slice servicing `line` for `sm` via per-slice profiler
/// counters, or `None` on devices that hide them (A100/H100).
pub fn slice_via_profiler(dev: &mut GpuDevice, sm: SmId, line: u64) -> Option<SliceId> {
    if !dev.spec().per_slice_counters {
        return None;
    }
    dev.reset_profiler();
    dev.warm_line(sm, line);
    for _ in 0..8 {
        let _ = dev.timed_read(sm, line);
    }
    dev.profiler().hottest_slice()
}

/// Relative bandwidth retained by a reference kernel when a probe kernel runs
/// alongside it. Values well below 1 indicate slice contention.
fn contention_ratio(dev: &GpuDevice, reference: u64, candidate: u64) -> f64 {
    let h = dev.hierarchy();
    // Two disjoint SM groups, one per "kernel", as in the paper's workaround.
    let group_a: Vec<SmId> = h
        .sms_in_gpc(GpcId::new(0))
        .iter()
        .copied()
        .take(6)
        .collect();
    let group_b: Vec<SmId> = h
        .sms_in_gpc(GpcId::new(1.min(h.num_gpcs() as u32 - 1)))
        .iter()
        .copied()
        .take(6)
        .collect();
    let ref_slice = dev.effective_slice(group_a[0], reference);
    let cand_slice = dev.effective_slice(group_b[0], candidate);

    let solo = dev
        .solve_bandwidth(&cross_flows(&group_a, &[ref_slice], AccessKind::ReadHit))
        .total_gbps;
    let mut flows = cross_flows(&group_a, &[ref_slice], AccessKind::ReadHit);
    flows.extend(cross_flows(&group_b, &[cand_slice], AccessKind::ReadHit));
    let sol = dev.solve_bandwidth(&flows);
    let together = sol.total_where(&flows, |f| group_a.contains(&f.sm));
    together / solo
}

/// Contention-probe test: do `reference` and `candidate` map to the same
/// slice (as seen from partition-0 SMs)?
///
/// This is the paper's A100/H100 methodology; it works on every device.
pub fn same_slice_via_contention(dev: &GpuDevice, reference: u64, candidate: u64) -> bool {
    contention_ratio(dev, reference, candidate) < 0.8
}

/// Groups `lines` into slice-equivalence classes using the best method the
/// device supports: profiler counters when available, contention probing
/// otherwise. Returns (representative line, members) per class.
pub fn classify_lines(dev: &mut GpuDevice, sm: SmId, lines: &[u64]) -> Vec<(u64, Vec<u64>)> {
    let mut classes: Vec<(u64, Vec<u64>)> = Vec::new();
    let use_profiler = dev.spec().per_slice_counters;
    let mut class_slice: Vec<SliceId> = Vec::new();
    for &line in lines {
        if use_profiler {
            let slice = slice_via_profiler(dev, sm, line).expect("profiler available");
            if let Some(pos) = class_slice.iter().position(|&s| s == slice) {
                classes[pos].1.push(line);
            } else {
                class_slice.push(slice);
                classes.push((line, vec![line]));
            }
        } else {
            let mut placed = false;
            for (rep, members) in classes.iter_mut() {
                if same_slice_via_contention(dev, *rep, line) {
                    members.push(line);
                    placed = true;
                    break;
                }
            }
            if !placed {
                classes.push((line, vec![line]));
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_method_recovers_ground_truth_on_v100() {
        let mut dev = GpuDevice::v100(0);
        let sm = SmId::new(0);
        for line in 0..24u64 {
            let truth = dev.effective_slice(sm, line);
            assert_eq!(slice_via_profiler(&mut dev, sm, line), Some(truth));
        }
    }

    #[test]
    fn profiler_method_unavailable_on_a100() {
        let mut dev = GpuDevice::a100(0);
        assert_eq!(slice_via_profiler(&mut dev, SmId::new(0), 3), None);
    }

    #[test]
    fn contention_probe_detects_shared_slice() {
        let dev = GpuDevice::a100(0);
        let sm = SmId::new(0);
        let target = dev.effective_slice(sm, 0);
        // Find another line on the same slice and one on a different slice.
        let same = (1..)
            .find(|&l| dev.effective_slice(sm, l) == target)
            .unwrap();
        let diff = (1..)
            .find(|&l| dev.effective_slice(sm, l) != target)
            .unwrap();
        assert!(same_slice_via_contention(&dev, 0, same));
        assert!(!same_slice_via_contention(&dev, 0, diff));
    }

    #[test]
    fn classification_matches_hash_on_v100() {
        let mut dev = GpuDevice::v100(0);
        let sm = SmId::new(0);
        let lines: Vec<u64> = (0..40).collect();
        let classes = classify_lines(&mut dev, sm, &lines);
        // Every class must be slice-pure.
        for (_, members) in &classes {
            let s0 = dev.effective_slice(sm, members[0]);
            assert!(members.iter().all(|&l| dev.effective_slice(sm, l) == s0));
        }
        let total: usize = classes.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn contention_classification_is_slice_pure_on_a100() {
        let mut dev = GpuDevice::a100(0);
        let sm = SmId::new(0);
        let lines: Vec<u64> = (0..12).collect();
        let classes = classify_lines(&mut dev, sm, &lines);
        for (_, members) in &classes {
            let s0 = dev.effective_slice(sm, members[0]);
            assert!(
                members.iter().all(|&l| dev.effective_slice(sm, l) == s0),
                "class with rep slice {s0} is impure"
            );
        }
    }
}
