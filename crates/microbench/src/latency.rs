//! Latency microbenchmarks — the paper's Algorithm 1.
//!
//! One thread of one warp issues dependent, L1-bypassing loads to addresses
//! known to map to a target L2 slice; the working set is warmed so every
//! measured access hits in L2; round-trip time comes from the SM's cycle
//! counter. Pinning the kernel to an SM (via `smid`) and the addresses to a
//! slice (via the `M[s]` table) isolates the NoC contribution.

use gnoc_engine::GpuDevice;
use gnoc_telemetry::{TraceEvent, SUBSYSTEM_CAMPAIGN};
use gnoc_topo::{GpcId, SliceId, SmId};
use serde::{Deserialize, Serialize};

/// Configuration of the Algorithm 1 probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyProbe {
    /// Distinct lines of the target slice in the working set.
    pub working_set_lines: usize,
    /// Timed accesses per (SM, slice) pair; the mean is reported.
    pub samples: usize,
}

impl Default for LatencyProbe {
    fn default() -> Self {
        Self {
            working_set_lines: 8,
            samples: 12,
        }
    }
}

impl LatencyProbe {
    /// Measures mean L2-*hit* round-trip cycles from `sm` to `slice`.
    ///
    /// Implements Algorithm 1: build `M[slice]`, warm those lines, then time
    /// repeated dependent loads.
    pub fn measure_pair(&self, dev: &mut GpuDevice, sm: SmId, slice: SliceId) -> f64 {
        let lines = dev.addresses_for_slice(sm, slice, self.working_set_lines.max(1));
        if lines.is_empty() {
            // The slice can never serve this SM (fused off, or remote under
            // partition-local caching): there is no latency to measure.
            return f64::NAN;
        }
        for &line in &lines {
            dev.warm_line(sm, line);
        }
        let mut acc = 0u64;
        for i in 0..self.samples.max(1) {
            let line = lines[i % lines.len()];
            acc += dev.timed_read(sm, line);
        }
        acc as f64 / self.samples.max(1) as f64
    }

    /// The latency profile of one SM: mean hit latency to every slice the SM
    /// can be served by (all slices on globally-shared devices, the local
    /// partition's slices on partition-local devices).
    pub fn sm_profile(&self, dev: &mut GpuDevice, sm: SmId) -> Vec<f64> {
        let profile: Vec<f64> = self
            .visible_slices(dev, sm)
            .into_iter()
            .map(|slice| self.measure_pair(dev, sm, slice))
            .collect();
        // Campaign-level progress: one record per SM profiled, so a long
        // matrix run shows where it is in the sweep.
        dev.telemetry().counter_add("campaign.sm_profiles", 1);
        dev.telemetry().emit_with(|| {
            let mean = profile.iter().sum::<f64>() / profile.len().max(1) as f64;
            TraceEvent::new(dev.virtual_cycle(), SUBSYSTEM_CAMPAIGN, "sm_profile")
                .with("sm", sm.index())
                .with("slices", profile.len())
                .with("mean_cycles", mean)
        });
        profile
    }

    /// Full latency matrix `[sm][visible slice]` for every SM.
    ///
    /// On partition-local devices each row covers that SM's local slices (the
    /// paper's footnote 5: H100 rows are per-partition slice indices).
    pub fn matrix(&self, dev: &mut GpuDevice) -> Vec<Vec<f64>> {
        let sms: Vec<SmId> = SmId::range(dev.hierarchy().num_sms()).collect();
        sms.into_iter().map(|sm| self.sm_profile(dev, sm)).collect()
    }

    /// Mean L2-*miss* round-trip cycles from `sm` for lines served by
    /// `slice`, measured on cold lines (each sample uses a fresh address).
    pub fn measure_miss(&self, dev: &mut GpuDevice, sm: SmId, slice: SliceId) -> f64 {
        let lines = dev.addresses_for_slice(sm, slice, self.samples.max(1));
        let mut acc = 0u64;
        for &line in &lines {
            acc += dev.timed_read(sm, line); // first touch: L2 miss
        }
        acc as f64 / lines.len() as f64
    }

    /// Mean L2 miss *penalty* (miss minus hit) from `sm` to `slice`.
    pub fn miss_penalty(&self, dev: &mut GpuDevice, sm: SmId, slice: SliceId) -> f64 {
        let miss = self.measure_miss(dev, sm, slice);
        let hit = self.measure_pair(dev, sm, slice);
        miss - hit
    }

    /// Mean hit latency from every SM of `gpc` to every slice of the target
    /// MP group `mp_slices` — the per-(GPC, MP) averages of Fig. 8 (top).
    pub fn gpc_to_slices_mean(
        &self,
        dev: &mut GpuDevice,
        gpc: GpcId,
        mp_slices: &[SliceId],
    ) -> f64 {
        let sms = dev.hierarchy().sms_in_gpc(gpc).to_vec();
        let mut acc = 0.0;
        let mut n = 0.0;
        for sm in sms {
            for &slice in mp_slices {
                acc += self.measure_pair(dev, sm, slice);
                n += 1.0;
            }
        }
        acc / n
    }

    /// The slices an SM's hits can be served from. Slices fused off by a
    /// fault plan are excluded: no address hashes to them, so a degraded
    /// device simply has shorter profiles.
    pub fn visible_slices(&self, dev: &GpuDevice, sm: SmId) -> Vec<SliceId> {
        let h = dev.hierarchy();
        let all: Vec<SliceId> = match dev.spec().cache_policy {
            gnoc_topo::CachePolicy::GloballyShared => SliceId::range(h.num_slices()).collect(),
            gnoc_topo::CachePolicy::PartitionLocal => {
                h.slices_in_partition(h.sm(sm).partition).to_vec()
            }
        };
        all.into_iter().filter(|&s| dev.slice_enabled(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_analysis::Summary;

    #[test]
    fn v100_sm24_profile_matches_fig1() {
        // Fig. 1a: SM 24 sees 175–248 cycles across the 32 slices.
        let mut dev = GpuDevice::v100(0);
        let probe = LatencyProbe::default();
        let profile = probe.sm_profile(&mut dev, SmId::new(24));
        assert_eq!(profile.len(), 32);
        let s = Summary::of(&profile);
        assert!(s.min > 168.0 && s.max < 262.0, "{s}");
        assert!(s.span() > 25.0, "profile should be non-uniform: {s}");
    }

    #[test]
    fn measured_latency_tracks_model_mean() {
        let mut dev = GpuDevice::v100(3);
        let probe = LatencyProbe {
            working_set_lines: 4,
            samples: 50,
        };
        let sm = SmId::new(10);
        let slice = SliceId::new(5);
        let measured = probe.measure_pair(&mut dev, sm, slice);
        let model = dev.hit_cycles_mean(sm, slice);
        assert!((measured - model).abs() < 2.5, "{measured} vs {model}");
    }

    #[test]
    fn miss_penalty_close_to_dram_constant_on_v100() {
        let mut dev = GpuDevice::v100(1);
        let probe = LatencyProbe::default();
        let p = probe.miss_penalty(&mut dev, SmId::new(0), SliceId::new(2));
        assert!((170.0..215.0).contains(&p), "penalty {p}");
    }

    #[test]
    fn h100_profiles_are_partition_local() {
        let mut dev = GpuDevice::h100(0);
        let probe = LatencyProbe::default();
        let profile = probe.sm_profile(&mut dev, SmId::new(0));
        // 80 slices total, 40 per partition.
        assert_eq!(profile.len(), 40);
    }

    #[test]
    fn matrix_has_one_row_per_sm() {
        let mut dev = GpuDevice::v100(0);
        let probe = LatencyProbe {
            working_set_lines: 2,
            samples: 2,
        };
        let m = probe.matrix(&mut dev);
        assert_eq!(m.len(), 80);
        assert!(m.iter().all(|row| row.len() == 32));
    }

    #[test]
    fn gpc_means_are_similar_across_gpcs_on_v100() {
        // Observation #2: per-GPC average latency is similar.
        let mut dev = GpuDevice::v100(0);
        let probe = LatencyProbe {
            working_set_lines: 2,
            samples: 4,
        };
        let slices: Vec<SliceId> = SliceId::range(32).collect();
        let means: Vec<f64> = (0..6)
            .map(|g| probe.gpc_to_slices_mean(&mut dev, GpcId::new(g), &slices))
            .collect();
        let s = Summary::of(&means);
        assert!(
            s.span() / s.mean < 0.06,
            "per-GPC means should be close: {means:?}"
        );
    }
}
