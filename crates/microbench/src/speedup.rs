//! Input-speedup probes (paper Section IV-A, Fig. 10).
//!
//! *Input speedup* is the excess bandwidth provided into the NoC at each
//! hierarchy level. It is measured exactly as the paper does: the bandwidth
//! of `x` SMs streaming to all (reachable) slices divided by the bandwidth of
//! one SM, where `x` is chosen per level — 2 for TPC, the SMs of one CPC, one
//! SM per TPC for GPC_l ("local"), and every SM of the GPC for GPC_g
//! ("global").

use crate::bandwidth::{cross_flows, reachable_slices};
use gnoc_engine::{AccessKind, GpuDevice};
use gnoc_topo::{CpcId, GpcId, SliceId, SmId, TpcId};
use serde::{Deserialize, Serialize};

/// Measured input speedups for one device and access kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Speedup of both SMs of a TPC vs one (full = 2).
    pub tpc: f64,
    /// Speedup of all SMs of a CPC vs one (H100 only; full = SMs per CPC).
    pub cpc: Option<f64>,
    /// Speedup of one SM per TPC of a GPC vs one SM (full = TPCs per GPC).
    pub gpc_local: f64,
    /// Speedup of all SMs of a GPC vs one SM (full = SMs per GPC).
    pub gpc_global: f64,
    /// TPCs in the probed GPC — the "full bandwidth" requirement for GPC_l.
    pub gpc_tpcs: usize,
    /// SMs in the probed GPC — the "full bandwidth" requirement for GPC_g.
    pub gpc_sms: usize,
    /// SMs in the probed CPC, when a CPC level exists.
    pub cpc_sms: Option<usize>,
}

/// Bandwidth of `sms` streaming `kind` accesses to all reachable slices.
fn bw(dev: &GpuDevice, sms: &[SmId], kind: AccessKind) -> f64 {
    let slices: Vec<SliceId> = reachable_slices(dev, sms[0]);
    let flows = cross_flows(sms, &slices, kind);
    dev.solve_bandwidth(&flows).total_gbps
}

/// Measures the input speedups of `dev` for `kind` (reads or writes), probing
/// GPC 0 / TPC 0 / CPC 0.
pub fn input_speedups(dev: &GpuDevice, kind: AccessKind) -> SpeedupReport {
    let h = dev.hierarchy();
    let gpc = GpcId::new(0);
    let gpc_sms: Vec<SmId> = h.sms_in_gpc(gpc).to_vec();
    let baseline_sm = gpc_sms[0];
    let base = bw(dev, &[baseline_sm], kind);

    // TPC: the two SMs sharing the baseline SM's TPC.
    let tpc: TpcId = h.sm(baseline_sm).tpc;
    let tpc_sms: Vec<SmId> = h.sms_in_tpc(tpc).to_vec();
    let tpc_speedup = bw(dev, &tpc_sms, kind) / base;

    // CPC (only meaningful when the device has a CPC level).
    let (cpc_speedup, cpc_sms_n) = if h.has_cpc_level() {
        let cpc: CpcId = h.sm(baseline_sm).cpc;
        let cpc_sms: Vec<SmId> = h.sms_in_cpc(cpc).to_vec();
        (Some(bw(dev, &cpc_sms, kind) / base), Some(cpc_sms.len()))
    } else {
        (None, None)
    };

    // GPC_l: one SM per TPC of the GPC.
    let mut seen_tpcs = std::collections::HashSet::new();
    let local_sms: Vec<SmId> = gpc_sms
        .iter()
        .copied()
        .filter(|&sm| seen_tpcs.insert(h.sm(sm).tpc))
        .collect();
    let gpc_local = bw(dev, &local_sms, kind) / base;

    // GPC_g: every SM of the GPC.
    let gpc_global = bw(dev, &gpc_sms, kind) / base;

    SpeedupReport {
        tpc: tpc_speedup,
        cpc: cpc_speedup,
        gpc_local,
        gpc_global,
        gpc_tpcs: local_sms.len(),
        gpc_sms: gpc_sms.len(),
        cpc_sms: cpc_sms_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_reads_get_full_tpc_speedup() {
        let dev = GpuDevice::v100(0);
        let r = input_speedups(&dev, AccessKind::ReadHit);
        assert!(r.tpc > 1.9, "TPC read speedup {}", r.tpc);
        assert_eq!(r.gpc_tpcs, 7);
        assert_eq!(r.gpc_sms, 14);
        assert!(r.cpc.is_none());
    }

    #[test]
    fn v100_writes_are_tpc_constrained() {
        // Fig. 10: V100 TPC write speedup ≈ 1.09.
        let dev = GpuDevice::v100(0);
        let w = input_speedups(&dev, AccessKind::Write);
        assert!(
            (1.0..1.25).contains(&w.tpc),
            "V100 TPC write speedup {}",
            w.tpc
        );
    }

    #[test]
    fn v100_gpc_write_speedup_is_half_of_full() {
        // Paper: "V100 reaches about 50 % of this [7×] speedup".
        let dev = GpuDevice::v100(0);
        let w = input_speedups(&dev, AccessKind::Write);
        let frac = w.gpc_local / w.gpc_tpcs as f64;
        assert!(
            (0.40..0.62).contains(&frac),
            "GPC_l write fraction {frac} (speedup {})",
            w.gpc_local
        );
    }

    #[test]
    fn newer_gpus_fix_the_tpc_write_bottleneck() {
        for dev in [GpuDevice::a100(0), GpuDevice::h100(0)] {
            let w = input_speedups(&dev, AccessKind::Write);
            assert!(
                w.tpc > 1.9,
                "{} TPC write speedup {}",
                dev.spec().name,
                w.tpc
            );
        }
    }

    #[test]
    fn h100_gpc_write_approaches_85_percent() {
        let dev = GpuDevice::h100(0);
        let w = input_speedups(&dev, AccessKind::Write);
        let frac = w.gpc_local / w.gpc_tpcs as f64;
        assert!(
            (0.75..0.95).contains(&frac),
            "H100 GPC_l write fraction {frac}"
        );
    }

    #[test]
    fn h100_cpc_reads_full_but_writes_capped() {
        // Fig. 10: CPC has no impact on reads; writes reach only ≈ 4.6 of 6.
        let dev = GpuDevice::h100(0);
        let r = input_speedups(&dev, AccessKind::ReadHit);
        let w = input_speedups(&dev, AccessKind::Write);
        let cpc_sms = r.cpc_sms.unwrap() as f64;
        assert!(
            r.cpc.unwrap() > 0.9 * cpc_sms,
            "CPC read speedup {} of {}",
            r.cpc.unwrap(),
            cpc_sms
        );
        assert!(
            (4.0..5.2).contains(&w.cpc.unwrap()),
            "CPC write speedup {}",
            w.cpc.unwrap()
        );
    }

    #[test]
    fn gpc_global_is_at_least_gpc_local() {
        for dev in [GpuDevice::v100(0), GpuDevice::a100(0), GpuDevice::h100(0)] {
            let r = input_speedups(&dev, AccessKind::ReadHit);
            assert!(
                r.gpc_global >= r.gpc_local * 0.99,
                "{}: GPC_g {} < GPC_l {}",
                dev.spec().name,
                r.gpc_global,
                r.gpc_local
            );
        }
    }
}
