//! # gnoc-microbench
//!
//! The measurement methodology of *Uncovering Real GPU NoC Characteristics*
//! (MICRO 2024), implemented against the virtual device in `gnoc-engine`:
//!
//! - [`LatencyProbe`] — Algorithm 1: pinned-SM, slice-targeted, L2-warmed
//!   pointer chases (plus miss-penalty variants);
//! - [`bandwidth`] — Algorithm 2: slice-targeted streaming bandwidth,
//!   per-slice profiles and chip-wide aggregates;
//! - [`speedup`] — the TPC / CPC / GPC input-speedup probes of Fig. 10;
//! - [`slicemap`] — address→slice reverse engineering via profiler counters
//!   (V100) or contention probing (A100/H100, footnote 1);
//! - [`mpmap`] — memory-partition structure inference from bandwidth
//!   sub-additivity (the NoC-output counterpart of placement recovery);
//! - [`loaded`] — latency-under-load curves (the latency/bandwidth
//!   characterisation beyond Algorithm 1's unloaded numbers);
//! - [`sm2sm`] — the H100 distributed-shared-memory latency probe of Fig. 7.
//!
//! ```
//! use gnoc_engine::GpuDevice;
//! use gnoc_microbench::LatencyProbe;
//! use gnoc_topo::{SmId, SliceId};
//!
//! let mut gpu = GpuDevice::v100(0);
//! let probe = LatencyProbe::default();
//! let cycles = probe.measure_pair(&mut gpu, SmId::new(24), SliceId::new(0));
//! assert!(cycles > 170.0 && cycles < 260.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
mod latency;
pub mod loaded;
pub mod mpmap;
pub mod slicemap;
pub mod sm2sm;
pub mod speedup;

pub use latency::LatencyProbe;
pub use speedup::{input_speedups, SpeedupReport};
