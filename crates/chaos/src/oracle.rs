//! The invariant oracles a chaos iteration checks, and the violation record
//! they produce.

use gnoc_core::{FabricSim, LatencyCampaign, ReliableMesh, TransferOutcome};
use serde::{Deserialize, Serialize};

/// Which invariant a chaos iteration checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// Every submitted transfer is delivered exactly once or reported lost
    /// with a reason; the accounting always balances.
    Delivery,
    /// The network quiesces within the virtual-cycle budget and the
    /// deadlock watchdog never trips.
    Progress,
    /// Campaign grand means stay inside the calibrated per-preset band on
    /// plans that leave the device untouched.
    Calibration,
    /// Kill/resume through a checkpoint is bit-identical to the
    /// uninterrupted run.
    Resume,
    /// A faulted campaign agrees with the golden campaign on every
    /// untouched (SM, slice) pair.
    Differential,
    /// No code path panics; typed errors are the contract.
    NoPanic,
    /// Hidden-plan self-healing: with the fault plan concealed from the
    /// device under test, the health layer must detect every dead link and
    /// faulty slice (recall), blame nothing healthy (precision), and do so
    /// within a bounded latency after each fault's onset.
    Detection,
    /// Recorded-vs-replayed equality: the iteration's submission stream is
    /// captured to an in-memory trace and replayed into an identically
    /// configured twin; any divergence in outcomes or stats means record/
    /// replay is not deterministic.
    Replay,
}

impl OracleKind {
    /// Every oracle, in reporting order.
    pub const ALL: [Self; 8] = [
        Self::Delivery,
        Self::Progress,
        Self::Calibration,
        Self::Resume,
        Self::Differential,
        Self::NoPanic,
        Self::Detection,
        Self::Replay,
    ];

    /// Stable lowercase name (used in reports, metrics, and file names).
    pub fn name(self) -> &'static str {
        match self {
            Self::Delivery => "delivery",
            Self::Progress => "progress",
            Self::Calibration => "calibration",
            Self::Resume => "resume",
            Self::Differential => "differential",
            Self::NoPanic => "no-panic",
            Self::Detection => "detection",
            Self::Replay => "replay",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation observed during an iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// The iteration seed it fired on.
    pub seed: u64,
    /// Human-readable specifics (counts, means, first mismatching cell).
    pub detail: String,
}

/// Checks the exactly-once-or-reported-lost delivery accounting.
pub(crate) fn check_delivery(
    expected_submitted: u64,
    quiesced: bool,
    rm: &ReliableMesh,
) -> Result<(), String> {
    let stats = rm.stats();
    if stats.submitted != expected_submitted {
        return Err(format!(
            "submitted accounting off: stats say {} but {} were submitted",
            stats.submitted, expected_submitted
        ));
    }
    let mut delivered = 0u64;
    let mut lost = 0u64;
    let mut unresolved = 0u64;
    for o in rm.outcomes() {
        match o {
            TransferOutcome::Delivered { .. } => delivered += 1,
            TransferOutcome::Lost { .. } => lost += 1,
            TransferOutcome::Pending | TransferOutcome::InFlight => unresolved += 1,
        }
    }
    if delivered != stats.delivered || lost != stats.lost_total() {
        return Err(format!(
            "outcome/stats disagree: outcomes say {delivered} delivered + {lost} lost, \
             stats say {} delivered + {} lost",
            stats.delivered,
            stats.lost_total()
        ));
    }
    if delivered + lost + unresolved != expected_submitted {
        return Err(format!(
            "transfers unaccounted for: {delivered} delivered + {lost} lost + \
             {unresolved} unresolved != {expected_submitted} submitted"
        ));
    }
    if quiesced && unresolved != 0 {
        return Err(format!(
            "{unresolved} transfers neither delivered nor reported lost after quiescence"
        ));
    }
    Ok(())
}

/// Checks deadlock/livelock freedom: the run must quiesce within its budget
/// and the watchdog must never trip. Stalls and retries are bounded (stall
/// durations and retry timeouts are orders of magnitude below the watchdog
/// window), so a trip on correct routing is impossible — it means packets
/// are holding buffers in a cycle.
pub(crate) fn check_progress(quiesced: bool, rm: &ReliableMesh) -> Result<(), String> {
    let stats = rm.stats();
    if rm.watchdog_tripped() {
        return Err(format!(
            "watchdog tripped {} time(s), writing off {} transfer(s): the network \
             stopped making progress",
            stats.watchdog_trips, stats.lost_watchdog
        ));
    }
    if !quiesced {
        return Err(format!(
            "{} transfer(s) still unresolved when the virtual-cycle budget ran out",
            rm.outstanding()
        ));
    }
    Ok(())
}

/// Fabric analogue of [`check_delivery`]: every cross-device (and
/// same-device) transfer submitted to the fabric is delivered exactly once
/// or reported lost with a reason, and the outcome list agrees with the
/// aggregate counters.
pub(crate) fn check_fabric_delivery(
    expected_submitted: u64,
    quiesced: bool,
    sim: &FabricSim,
) -> Result<(), String> {
    let stats = sim.stats();
    if stats.submitted != expected_submitted {
        return Err(format!(
            "submitted accounting off: stats say {} but {} were submitted",
            stats.submitted, expected_submitted
        ));
    }
    let mut delivered = 0u64;
    let mut lost = 0u64;
    let mut unresolved = 0u64;
    for o in sim.outcomes() {
        match o {
            TransferOutcome::Delivered { .. } => delivered += 1,
            TransferOutcome::Lost { .. } => lost += 1,
            TransferOutcome::Pending | TransferOutcome::InFlight => unresolved += 1,
        }
    }
    if delivered != stats.delivered || lost != stats.lost_total() {
        return Err(format!(
            "outcome/stats disagree: outcomes say {delivered} delivered + {lost} lost, \
             stats say {} delivered + {} lost",
            stats.delivered,
            stats.lost_total()
        ));
    }
    if delivered + lost + unresolved != expected_submitted {
        return Err(format!(
            "transfers unaccounted for: {delivered} delivered + {lost} lost + \
             {unresolved} unresolved != {expected_submitted} submitted"
        ));
    }
    if quiesced && unresolved != 0 {
        return Err(format!(
            "{unresolved} transfers neither delivered nor reported lost after quiescence"
        ));
    }
    Ok(())
}

/// Fabric analogue of [`check_progress`]: the multi-device run must quiesce
/// within its budget and neither the fabric watchdog nor any die watchdog
/// may write transfers off. Crossing retries are bounded (64 attempts x a
/// 16-cycle backoff, three orders of magnitude below the watchdog window),
/// so a trip means the fabric stopped making progress, not that it was slow.
pub(crate) fn check_fabric_progress(quiesced: bool, sim: &FabricSim) -> Result<(), String> {
    let stats = sim.stats();
    if stats.lost_watchdog > 0 {
        return Err(format!(
            "watchdog wrote off {} transfer(s): the fabric stopped making progress",
            stats.lost_watchdog
        ));
    }
    if !quiesced {
        return Err(format!(
            "{} transfer(s) still unresolved when the virtual-cycle budget ran out",
            sim.outstanding()
        ));
    }
    Ok(())
}

/// Checks faulted-vs-golden agreement for a fabric iteration. The golden
/// run (same config, same traffic, empty fault plan) must deliver every
/// transfer — a fault-free fabric that loses packets is broken regardless
/// of what the faulted run did. And when the generated plan is benign, the
/// faulted run must reproduce the golden one bit for bit (outcomes and
/// stats), because nothing distinguishes the two simulations.
pub(crate) fn check_fabric_differential(
    plan_benign: bool,
    golden: &FabricSim,
    faulted: &FabricSim,
) -> Result<(), String> {
    let g = golden.stats();
    if g.delivered != g.submitted {
        return Err(format!(
            "golden fabric run lost {} of {} transfers without any faults",
            g.submitted - g.delivered,
            g.submitted
        ));
    }
    if plan_benign {
        let (go, fo) = (golden.outcomes(), faulted.outcomes());
        if go != fo {
            let first = go
                .iter()
                .zip(&fo)
                .position(|(a, b)| a != b)
                .map_or("length".to_string(), |i| format!("transfer {i}"));
            return Err(format!(
                "benign plan diverged from golden: first difference at {first}"
            ));
        }
        if g != faulted.stats() {
            return Err("benign plan diverged from golden: stats differ".to_string());
        }
    }
    Ok(())
}

/// Checks the calibrated grand-mean band for `device`, when one is pinned.
/// Returns `Ok(false)` when the preset has no pinned band (nothing ran).
pub(crate) fn check_calibration(device: &str, campaign: &LatencyCampaign) -> Result<bool, String> {
    let Some((lo, hi)) = crate::config::band_for_preset(device) else {
        return Ok(false);
    };
    let mean = campaign.grand_mean();
    if !(lo..hi).contains(&mean) {
        return Err(format!(
            "{device} grand mean {mean:.2} left the calibrated band [{lo}, {hi})"
        ));
    }
    Ok(true)
}

/// Checks that the kill/resume campaign reproduced the uninterrupted one
/// bit for bit.
pub(crate) fn check_resume(
    straight: &LatencyCampaign,
    resumed: &LatencyCampaign,
) -> Result<(), String> {
    if straight == resumed {
        return Ok(());
    }
    Err(first_matrix_diff(&straight.matrix, &resumed.matrix)
        .unwrap_or_else(|| "summaries differ despite identical matrices".to_string()))
}

/// Checks faulted-vs-golden agreement. When the plan leaves the device
/// untouched (`device_untouched`), every (SM, slice) pair is untouched and
/// the matrices must be bit-identical. Otherwise (disabled slices change
/// the matrix geometry and column identity) the check is structural: same
/// row count as measured, finite positive latencies, and a grand mean
/// within a factor of two of golden.
pub(crate) fn check_differential(
    device_untouched: bool,
    golden: &LatencyCampaign,
    faulted: &LatencyCampaign,
) -> Result<(), String> {
    if device_untouched {
        if golden.matrix == faulted.matrix {
            return Ok(());
        }
        return Err(first_matrix_diff(&golden.matrix, &faulted.matrix)
            .unwrap_or_else(|| "matrices differ".to_string()));
    }
    if faulted.matrix.is_empty() {
        return Err("faulted campaign produced an empty matrix".to_string());
    }
    for (sm, row) in faulted.matrix.iter().enumerate() {
        if row.is_empty() {
            return Err(format!("faulted campaign row {sm} is empty"));
        }
        if let Some(bad) = row.iter().find(|v| !v.is_finite() || **v <= 0.0) {
            return Err(format!(
                "faulted campaign row {sm} holds a non-physical latency {bad}"
            ));
        }
    }
    let (g, f) = (golden.grand_mean(), faulted.grand_mean());
    if f < 0.5 * g || f > 2.0 * g {
        return Err(format!(
            "faulted grand mean {f:.2} implausibly far from golden {g:.2}"
        ));
    }
    Ok(())
}

/// The first cell where two matrices differ, rendered for a violation
/// detail; `None` when they are equal.
fn first_matrix_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("row counts differ: {} vs {}", a.len(), b.len()));
    }
    for (sm, (ra, rb)) in a.iter().zip(b).enumerate() {
        if ra.len() != rb.len() {
            return Some(format!(
                "row {sm} widths differ: {} vs {}",
                ra.len(),
                rb.len()
            ));
        }
        for (slice, (va, vb)) in ra.iter().zip(rb).enumerate() {
            if va != vb {
                return Some(format!(
                    "first divergence at (sm {sm}, slice {slice}): {va} vs {vb}"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_are_stable_and_distinct() {
        let names: Vec<&str> = OracleKind::ALL.iter().map(|k| k.name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(OracleKind::Progress.to_string(), "progress");
    }

    #[test]
    fn matrix_diff_pinpoints_the_first_divergent_cell() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut b = a.clone();
        b[1][0] = 9.0;
        let msg = first_matrix_diff(&a, &b).unwrap();
        assert!(msg.contains("sm 1"), "{msg}");
        assert!(msg.contains("slice 0"), "{msg}");
        assert!(first_matrix_diff(&a, &a).is_none());
    }
}
