//! Chaos-run configuration and the deterministic seed → fault-plan map.

use crate::ChaosError;
use gnoc_core::{
    spec_for_preset, FaultGenConfig, FaultPlan, FlakyBurst, LatencyProbe, RegionFault, RetryConfig,
};
use serde::{Deserialize, Serialize};

/// Configuration of a chaos soak. Everything an iteration does is a pure
/// function of this struct plus the iteration seed, so a config + seed pair
/// is a complete reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Mesh width (routers per row) for the NoC soak.
    pub width: u32,
    /// Mesh height for the NoC soak.
    pub height: u32,
    /// Reliable transfers submitted per iteration.
    pub transfers: u32,
    /// Virtual-cycle budget per iteration: the mesh must quiesce within
    /// this many cycles or the progress oracle fires. Must exceed the retry
    /// watchdog window so the watchdog (not the budget) is the arbiter of
    /// "stuck".
    pub soak_cycle_budget: u64,
    /// Device preset driven through campaign oracles (`None` = NoC only).
    pub device: Option<String>,
    /// Run the (expensive) device-campaign oracles on every seed divisible
    /// by this (0 = never). The NoC oracles run on every seed.
    pub device_every: u64,
    /// Probe working-set lines for campaign oracles (small = fast).
    pub probe_lines: usize,
    /// Probe samples per (SM, slice) pair for campaign oracles.
    pub probe_samples: usize,
    /// Retry/watchdog policy for the reliable mesh.
    pub retry: RetryConfig,
    /// Arm the greedy-reroute bug hook (needs the `bug-hooks` feature):
    /// route recomputation takes any minimal detour instead of respecting
    /// the up*/down* discipline, reintroducing routing deadlock for the
    /// progress oracle to catch.
    pub greedy_reroute_bug: bool,
    /// Run the hidden-plan detection oracle: every seed's plan is replayed
    /// against a self-healing mesh (and, with a device configured, a
    /// latent-fault device) that must *infer* the faults from behavior; the
    /// oracle scores detected-vs-ground-truth precision, recall on dead
    /// links and faulty slices, and bounded detection latency.
    pub detection: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            width: 5,
            height: 5,
            transfers: 64,
            soak_cycle_budget: 60_000,
            device: Some("v100".to_string()),
            device_every: 4,
            probe_lines: 1,
            probe_samples: 2,
            retry: RetryConfig::default(),
            greedy_reroute_bug: false,
            detection: false,
        }
    }
}

impl ChaosConfig {
    /// The latency probe used by every campaign oracle.
    pub fn probe(&self) -> LatencyProbe {
        LatencyProbe {
            working_set_lines: self.probe_lines,
            samples: self.probe_samples,
        }
    }

    /// Validates every knob, naming the offending field.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::Config`] on the first unusable field.
    pub fn validate(&self) -> Result<(), ChaosError> {
        if self.width == 0 || self.height == 0 {
            return Err(ChaosError::Config(
                "width/height: chaos mesh must be non-empty".into(),
            ));
        }
        if (self.width * self.height) < 2 {
            return Err(ChaosError::Config(
                "width/height: need at least two terminals to exchange traffic".into(),
            ));
        }
        if self.transfers == 0 {
            return Err(ChaosError::Config(
                "transfers: each iteration must submit at least one transfer".into(),
            ));
        }
        if self.soak_cycle_budget <= self.retry.watchdog_cycles {
            return Err(ChaosError::Config(format!(
                "soak_cycle_budget: {} must exceed the watchdog window {} so the \
                 watchdog, not the budget, decides the network is stuck",
                self.soak_cycle_budget, self.retry.watchdog_cycles
            )));
        }
        if let Some(name) = &self.device {
            spec_for_preset(name).map_err(|e| ChaosError::Config(format!("device: {e}")))?;
        }
        if self.probe_lines == 0 || self.probe_samples == 0 {
            return Err(ChaosError::Config(
                "probe_lines/probe_samples: the latency probe needs at least one \
                 line and one sample"
                    .into(),
            ));
        }
        if self.greedy_reroute_bug && !cfg!(feature = "bug-hooks") {
            return Err(ChaosError::Config(
                "greedy_reroute_bug: requires gnoc-chaos built with the bug-hooks \
                 feature"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The deterministic fault plan for one iteration seed. Seeds rotate
    /// through five plan archetypes so any contiguous seed range exercises
    /// the whole space:
    ///
    /// | `seed % 5` | archetype |
    /// |---|---|
    /// | 0 | benign (no faults) — the golden baseline |
    /// | 1 | dead-only: die-wide dead-link fraction, connectivity kept |
    /// | 2 | dead + flaky links + a stalled router |
    /// | 3 | onset storm over a correlated regional failure |
    /// | 4 | flaky-link burst + transient noise + disabled L2 slices |
    ///
    /// `num_slices` is the target device's L2 slice count (0 when no device
    /// is configured; archetype 4 then skips slice faults).
    pub fn plan_for_seed(&self, seed: u64, num_slices: u32) -> FaultPlan {
        let mut g = FaultGenConfig::benign(seed, self.width, self.height);
        match seed % 5 {
            0 => {}
            1 => {
                g.dead_link_fraction = 0.12;
            }
            2 => {
                g.dead_link_fraction = 0.06;
                g.flaky_links = 4;
                g.flaky_drop_prob = 0.30;
                g.stalled_routers = 1;
                g.stall_duration = 500;
                g.onset = 64;
            }
            3 => {
                g.dead_link_fraction = 0.05;
                g.onset_storm_span = 4_000;
                g.region = Some(RegionFault {
                    center: (self.height / 2) * self.width + self.width / 2,
                    radius: 2,
                    dead_fraction: 0.6,
                });
            }
            _ => {
                g.burst = Some(FlakyBurst {
                    links: 6,
                    drop_prob: 0.25,
                    onset: 1_500,
                });
                g.transient_drop_prob = 0.0015;
                g.transient_corrupt_prob = 0.0008;
                g.onset = 200;
                if num_slices >= 2 {
                    g.num_slices = num_slices;
                    g.disabled_slice_count = 2;
                }
            }
        }
        FaultPlan::generate(&g)
    }
}

/// Whether a plan leaves the modeled device itself untouched (no
/// floorsweep, no disabled slices). Mesh faults live in a different layer
/// and never perturb the analytical device, so such plans must preserve the
/// calibration band *and* reproduce the golden campaign bit for bit.
pub fn calibration_safe(plan: &FaultPlan) -> bool {
    plan.sweep.is_none() && plan.disabled_slices.is_empty()
}

/// The empirically calibrated grand-mean band for a device preset, when one
/// has been pinned. Measured with the chaos probe (1 line, 2 samples)
/// across seeds {0, 1, 7, 13, 42, 99}; presets without a pinned band get
/// structural checks only.
pub fn band_for_preset(name: &str) -> Option<(f64, f64)> {
    match name {
        "v100" => Some((205.0, 220.0)),
        "a100fs" => Some((280.0, 320.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ChaosConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: Vec<(ChaosConfig, &str)> = vec![
            (
                ChaosConfig {
                    width: 0,
                    ..ChaosConfig::default()
                },
                "width",
            ),
            (
                ChaosConfig {
                    transfers: 0,
                    ..ChaosConfig::default()
                },
                "transfers",
            ),
            (
                ChaosConfig {
                    soak_cycle_budget: 100,
                    ..ChaosConfig::default()
                },
                "soak_cycle_budget",
            ),
            (
                ChaosConfig {
                    device: Some("b200".into()),
                    ..ChaosConfig::default()
                },
                "device",
            ),
            (
                ChaosConfig {
                    probe_samples: 0,
                    ..ChaosConfig::default()
                },
                "probe_",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(field),
                "error {err} does not name {field}"
            );
        }
    }

    #[test]
    fn plans_are_deterministic_and_rotate_archetypes() {
        let cfg = ChaosConfig::default();
        for seed in 0..10 {
            assert_eq!(
                cfg.plan_for_seed(seed, 32),
                cfg.plan_for_seed(seed, 32),
                "seed {seed} must be deterministic"
            );
        }
        assert!(cfg.plan_for_seed(0, 32).is_benign());
        let dead_only = cfg.plan_for_seed(1, 32);
        assert!(!dead_only.links.is_empty());
        assert!(calibration_safe(&dead_only));
        let sliced = cfg.plan_for_seed(4, 32);
        assert_eq!(sliced.disabled_slices.len(), 2);
        assert!(!calibration_safe(&sliced));
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = ChaosConfig {
            device: None,
            greedy_reroute_bug: false,
            ..ChaosConfig::default()
        };
        let text = serde_json::to_string(&cfg).unwrap();
        let back: ChaosConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cfg);
    }
}
