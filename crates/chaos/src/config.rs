//! Chaos-run configuration and the deterministic seed → fault-plan map.

use crate::ChaosError;
use gnoc_core::{
    spec_for_preset, FabricTopology, FaultGenConfig, FaultPlan, FlakyBurst, LatencyProbe,
    RegionFault, RetryConfig,
};
use serde::{Deserialize, Serialize};

/// Configuration of a chaos soak. Everything an iteration does is a pure
/// function of this struct plus the iteration seed, so a config + seed pair
/// is a complete reproducer.
///
/// Deserialization is manual so state files written before the multi-device
/// fields existed still load (they default to a single device).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosConfig {
    /// Mesh width (routers per row) for the NoC soak.
    pub width: u32,
    /// Mesh height for the NoC soak.
    pub height: u32,
    /// Devices in the soak: 1 = classic single-die chaos, ≥ 2 = the
    /// iteration soaks a multi-device fabric instead (and the detection
    /// phase monitors fabric links).
    pub devices: u32,
    /// Inter-device topology name (parsed by
    /// [`FabricTopology::parse`]; ignored when `devices` is 1).
    pub topology: String,
    /// Reliable transfers submitted per iteration.
    pub transfers: u32,
    /// Virtual-cycle budget per iteration: the mesh must quiesce within
    /// this many cycles or the progress oracle fires. Must exceed the retry
    /// watchdog window so the watchdog (not the budget) is the arbiter of
    /// "stuck".
    pub soak_cycle_budget: u64,
    /// Device preset driven through campaign oracles (`None` = NoC only).
    pub device: Option<String>,
    /// Run the (expensive) device-campaign oracles on every seed divisible
    /// by this (0 = never). The NoC oracles run on every seed.
    pub device_every: u64,
    /// Probe working-set lines for campaign oracles (small = fast).
    pub probe_lines: usize,
    /// Probe samples per (SM, slice) pair for campaign oracles.
    pub probe_samples: usize,
    /// Retry/watchdog policy for the reliable mesh.
    pub retry: RetryConfig,
    /// Arm the greedy-reroute bug hook (needs the `bug-hooks` feature):
    /// route recomputation takes any minimal detour instead of respecting
    /// the up*/down* discipline, reintroducing routing deadlock for the
    /// progress oracle to catch.
    pub greedy_reroute_bug: bool,
    /// Arm the stuck-crossing bug hook (needs the `bug-hooks` feature):
    /// a fabric crossing that drops is never rescheduled, hanging the
    /// transfer mid-fabric for the fabric progress oracle to catch. Only
    /// meaningful when `devices` ≥ 2.
    pub fabric_stuck_crossing_bug: bool,
    /// Run the hidden-plan detection oracle: every seed's plan is replayed
    /// against a self-healing mesh (and, with a device configured, a
    /// latent-fault device) that must *infer* the faults from behavior; the
    /// oracle scores detected-vs-ground-truth precision, recall on dead
    /// links and faulty slices, and bounded detection latency.
    pub detection: bool,
    /// Run the recorded-vs-replayed oracle: every soak's submission stream
    /// is captured to an in-memory trace and replayed into an identically
    /// configured twin, which must reproduce the soak's outcomes and stats
    /// bit for bit.
    pub replay: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            width: 5,
            height: 5,
            devices: 1,
            topology: "ring".to_string(),
            transfers: 64,
            soak_cycle_budget: 60_000,
            device: Some("v100".to_string()),
            device_every: 4,
            probe_lines: 1,
            probe_samples: 2,
            retry: RetryConfig::default(),
            greedy_reroute_bug: false,
            fabric_stuck_crossing_bug: false,
            detection: false,
            replay: false,
        }
    }
}

impl Deserialize for ChaosConfig {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let defaults = Self::default();
        Ok(Self {
            width: Deserialize::deserialize_value(value.field("width")?)?,
            height: Deserialize::deserialize_value(value.field("height")?)?,
            devices: match value.field("devices") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => defaults.devices,
            },
            topology: match value.field("topology") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => defaults.topology,
            },
            transfers: Deserialize::deserialize_value(value.field("transfers")?)?,
            soak_cycle_budget: Deserialize::deserialize_value(value.field("soak_cycle_budget")?)?,
            device: Deserialize::deserialize_value(value.field("device")?)?,
            device_every: Deserialize::deserialize_value(value.field("device_every")?)?,
            probe_lines: Deserialize::deserialize_value(value.field("probe_lines")?)?,
            probe_samples: Deserialize::deserialize_value(value.field("probe_samples")?)?,
            retry: Deserialize::deserialize_value(value.field("retry")?)?,
            greedy_reroute_bug: Deserialize::deserialize_value(value.field("greedy_reroute_bug")?)?,
            fabric_stuck_crossing_bug: match value.field("fabric_stuck_crossing_bug") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => defaults.fabric_stuck_crossing_bug,
            },
            detection: Deserialize::deserialize_value(value.field("detection")?)?,
            replay: match value.field("replay") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => defaults.replay,
            },
        })
    }
}

impl ChaosConfig {
    /// The parsed fabric topology (only meaningful when `devices` ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics on an unknown topology name; call [`ChaosConfig::validate`]
    /// first.
    pub fn fabric_topology(&self) -> FabricTopology {
        FabricTopology::parse(&self.topology)
            .unwrap_or_else(|| panic!("unknown fabric topology {:?}", self.topology))
    }

    /// The latency probe used by every campaign oracle.
    pub fn probe(&self) -> LatencyProbe {
        LatencyProbe {
            working_set_lines: self.probe_lines,
            samples: self.probe_samples,
        }
    }

    /// Validates every knob, naming the offending field.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::Config`] on the first unusable field.
    pub fn validate(&self) -> Result<(), ChaosError> {
        if self.width == 0 || self.height == 0 {
            return Err(ChaosError::Config(
                "width/height: chaos mesh must be non-empty".into(),
            ));
        }
        if (self.width * self.height) < 2 {
            return Err(ChaosError::Config(
                "width/height: need at least two terminals to exchange traffic".into(),
            ));
        }
        if self.transfers == 0 {
            return Err(ChaosError::Config(
                "transfers: each iteration must submit at least one transfer".into(),
            ));
        }
        if self.devices == 0 {
            return Err(ChaosError::Config(
                "devices: need at least one device".into(),
            ));
        }
        match FabricTopology::parse(&self.topology) {
            None => {
                return Err(ChaosError::Config(format!(
                    "topology: unknown fabric topology {:?} (try ring, line, p2p, fully, switch)",
                    self.topology
                )));
            }
            Some(t) if self.devices >= 2 && !t.supports_devices(self.devices) => {
                return Err(ChaosError::Config(format!(
                    "devices: topology {t} does not support {} devices",
                    self.devices
                )));
            }
            Some(_) => {}
        }
        if self.soak_cycle_budget <= self.retry.watchdog_cycles {
            return Err(ChaosError::Config(format!(
                "soak_cycle_budget: {} must exceed the watchdog window {} so the \
                 watchdog, not the budget, decides the network is stuck",
                self.soak_cycle_budget, self.retry.watchdog_cycles
            )));
        }
        if let Some(name) = &self.device {
            spec_for_preset(name).map_err(|e| ChaosError::Config(format!("device: {e}")))?;
        }
        if self.probe_lines == 0 || self.probe_samples == 0 {
            return Err(ChaosError::Config(
                "probe_lines/probe_samples: the latency probe needs at least one \
                 line and one sample"
                    .into(),
            ));
        }
        if self.greedy_reroute_bug && !cfg!(feature = "bug-hooks") {
            return Err(ChaosError::Config(
                "greedy_reroute_bug: requires gnoc-chaos built with the bug-hooks \
                 feature"
                    .into(),
            ));
        }
        if self.fabric_stuck_crossing_bug && !cfg!(feature = "bug-hooks") {
            return Err(ChaosError::Config(
                "fabric_stuck_crossing_bug: requires gnoc-chaos built with the \
                 bug-hooks feature"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The deterministic fault plan for one iteration seed. Seeds rotate
    /// through five plan archetypes so any contiguous seed range exercises
    /// the whole space:
    ///
    /// | `seed % 5` | archetype |
    /// |---|---|
    /// | 0 | benign (no faults) — the golden baseline |
    /// | 1 | dead-only: die-wide dead-link fraction, connectivity kept |
    /// | 2 | dead + flaky links + a stalled router |
    /// | 3 | onset storm over a correlated regional failure |
    /// | 4 | flaky-link burst + transient noise + disabled L2 slices |
    ///
    /// `num_slices` is the target device's L2 slice count (0 when no device
    /// is configured; archetype 4 then skips slice faults).
    ///
    /// With `devices` ≥ 2 the same archetypes additionally inject fabric
    /// atoms: a dead fabric link (1), a flaky fabric link (2), an
    /// onset-storm dead link — or a dead switch on the switch topology (3),
    /// and a flaky link plus a whole-device loss (4). Single-die configs
    /// generate bit-identical plans to the pre-fabric harness.
    pub fn plan_for_seed(&self, seed: u64, num_slices: u32) -> FaultPlan {
        let mut g = FaultGenConfig::benign(seed, self.width, self.height);
        if self.devices >= 2 {
            let topo = self.fabric_topology();
            g.devices = self.devices;
            g.fabric_topology = topo;
            match seed % 5 {
                0 => {}
                1 => g.dead_fabric_links = 1,
                2 => {
                    g.flaky_fabric_links = 1;
                    g.fabric_flaky_drop_prob = 0.25;
                }
                3 => {
                    if topo == FabricTopology::Switch {
                        g.dead_switch = true;
                    } else {
                        g.dead_fabric_links = 1;
                    }
                }
                _ => {
                    g.flaky_fabric_links = 1;
                    g.fabric_flaky_drop_prob = 0.20;
                    if self.devices >= 3 {
                        g.dead_devices = 1;
                    }
                }
            }
        }
        match seed % 5 {
            0 => {}
            1 => {
                g.dead_link_fraction = 0.12;
            }
            2 => {
                g.dead_link_fraction = 0.06;
                g.flaky_links = 4;
                g.flaky_drop_prob = 0.30;
                g.stalled_routers = 1;
                g.stall_duration = 500;
                g.onset = 64;
            }
            3 => {
                g.dead_link_fraction = 0.05;
                g.onset_storm_span = 4_000;
                g.region = Some(RegionFault {
                    center: (self.height / 2) * self.width + self.width / 2,
                    radius: 2,
                    dead_fraction: 0.6,
                });
            }
            _ => {
                g.burst = Some(FlakyBurst {
                    links: 6,
                    drop_prob: 0.25,
                    onset: 1_500,
                });
                g.transient_drop_prob = 0.0015;
                g.transient_corrupt_prob = 0.0008;
                g.onset = 200;
                if num_slices >= 2 {
                    g.num_slices = num_slices;
                    g.disabled_slice_count = 2;
                }
            }
        }
        FaultPlan::generate(&g)
    }
}

/// Whether a plan leaves the modeled device itself untouched (no
/// floorsweep, no disabled slices). Mesh faults live in a different layer
/// and never perturb the analytical device, so such plans must preserve the
/// calibration band *and* reproduce the golden campaign bit for bit.
pub fn calibration_safe(plan: &FaultPlan) -> bool {
    plan.sweep.is_none() && plan.disabled_slices.is_empty()
}

/// The empirically calibrated grand-mean band for a device preset, when one
/// has been pinned. Measured with the chaos probe (1 line, 2 samples)
/// across seeds {0, 1, 7, 13, 42, 99}; presets without a pinned band get
/// structural checks only.
pub fn band_for_preset(name: &str) -> Option<(f64, f64)> {
    match name {
        "v100" => Some((205.0, 220.0)),
        "a100fs" => Some((280.0, 320.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ChaosConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: Vec<(ChaosConfig, &str)> = vec![
            (
                ChaosConfig {
                    width: 0,
                    ..ChaosConfig::default()
                },
                "width",
            ),
            (
                ChaosConfig {
                    transfers: 0,
                    ..ChaosConfig::default()
                },
                "transfers",
            ),
            (
                ChaosConfig {
                    soak_cycle_budget: 100,
                    ..ChaosConfig::default()
                },
                "soak_cycle_budget",
            ),
            (
                ChaosConfig {
                    device: Some("b200".into()),
                    ..ChaosConfig::default()
                },
                "device",
            ),
            (
                ChaosConfig {
                    probe_samples: 0,
                    ..ChaosConfig::default()
                },
                "probe_",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(field),
                "error {err} does not name {field}"
            );
        }
    }

    #[test]
    fn plans_are_deterministic_and_rotate_archetypes() {
        let cfg = ChaosConfig::default();
        for seed in 0..10 {
            assert_eq!(
                cfg.plan_for_seed(seed, 32),
                cfg.plan_for_seed(seed, 32),
                "seed {seed} must be deterministic"
            );
        }
        assert!(cfg.plan_for_seed(0, 32).is_benign());
        let dead_only = cfg.plan_for_seed(1, 32);
        assert!(!dead_only.links.is_empty());
        assert!(calibration_safe(&dead_only));
        let sliced = cfg.plan_for_seed(4, 32);
        assert_eq!(sliced.disabled_slices.len(), 2);
        assert!(!calibration_safe(&sliced));
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = ChaosConfig {
            device: None,
            greedy_reroute_bug: false,
            ..ChaosConfig::default()
        };
        let text = serde_json::to_string(&cfg).unwrap();
        let back: ChaosConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn pre_fabric_configs_load_with_single_die_defaults() {
        // A config serialized before the fabric layer existed has no
        // `devices`/`topology` keys; it must load as a single-die config.
        let cfg = ChaosConfig::default();
        let text = serde_json::to_string(&cfg).unwrap();
        let value: serde::Value = serde_json::from_str(&text).unwrap();
        let serde::Value::Object(fields) = value else {
            panic!("config serializes as an object");
        };
        let legacy = serde_json::to_string(&serde::Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| {
                    k != "devices"
                        && k != "topology"
                        && k != "fabric_stuck_crossing_bug"
                        && k != "replay"
                })
                .collect(),
        ))
        .unwrap();
        let back: ChaosConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.devices, 1);
        assert_eq!(back.topology, "ring");
        assert_eq!(back, cfg);
    }

    #[test]
    fn single_die_plans_ignore_the_fabric_knobs() {
        // devices == 1 must generate byte-identical plans to the pre-fabric
        // harness regardless of the topology string.
        let cfg = ChaosConfig::default();
        let odd = ChaosConfig {
            topology: "fully".to_string(),
            ..ChaosConfig::default()
        };
        for seed in 0..10 {
            let plan = cfg.plan_for_seed(seed, 32);
            assert!(plan.fabric.is_empty(), "seed {seed}");
            assert_eq!(plan, odd.plan_for_seed(seed, 32), "seed {seed}");
        }
    }

    #[test]
    fn fabric_archetypes_rotate_and_stay_deterministic() {
        let cfg = ChaosConfig {
            devices: 4,
            device: None,
            ..ChaosConfig::default()
        };
        cfg.validate().unwrap();
        for seed in 0..10 {
            assert_eq!(
                cfg.plan_for_seed(seed, 0),
                cfg.plan_for_seed(seed, 0),
                "seed {seed} must be deterministic"
            );
        }
        // Archetype 0 stays fully benign even multi-device.
        assert!(cfg.plan_for_seed(0, 0).is_benign());
        // Archetype 1 kills a fabric link (ring keeps a long way around).
        let dead = cfg.plan_for_seed(1, 0);
        assert!(dead
            .fabric
            .links
            .iter()
            .any(|l| matches!(l.kind, gnoc_core::faults::LinkFaultKind::Dead)));
        // Archetype 2 makes one flaky.
        let flaky = cfg.plan_for_seed(2, 0);
        assert!(flaky.fabric.has_probabilistic_faults());
        // Archetype 4 loses a whole device (devices >= 3).
        let lost = cfg.plan_for_seed(4, 0);
        assert_eq!(lost.fabric.devices.len(), 1);
        assert_ne!(lost.fabric.devices[0].device, 0, "device 0 survives");
        // The switch topology's archetype 3 kills the switch instead.
        let sw = ChaosConfig {
            topology: "switch".to_string(),
            ..cfg.clone()
        };
        assert!(sw.plan_for_seed(3, 0).fabric.dead_switch.is_some());
        assert!(cfg.plan_for_seed(3, 0).fabric.dead_switch.is_none());
        // Every generated multi-device plan validates for its fabric.
        for seed in 0..10 {
            cfg.plan_for_seed(seed, 0)
                .validate_for_fabric(4, cfg.fabric_topology())
                .unwrap();
        }
    }

    #[test]
    fn multi_device_validation_names_the_offending_field() {
        let cases: Vec<(ChaosConfig, &str)> = vec![
            (
                ChaosConfig {
                    devices: 0,
                    ..ChaosConfig::default()
                },
                "devices",
            ),
            (
                ChaosConfig {
                    devices: 2,
                    topology: "moebius".to_string(),
                    ..ChaosConfig::default()
                },
                "topology",
            ),
            (
                ChaosConfig {
                    devices: 3,
                    topology: "p2p".to_string(),
                    ..ChaosConfig::default()
                },
                "devices",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(field),
                "error {err} does not name {field}"
            );
        }
    }
}
