//! The chaos runner: seeded iterations, oracle dispatch, resumable state,
//! reproducer emission, and the `catch_unwind` panic audit.

use crate::config::{calibration_safe, ChaosConfig};
use crate::oracle::{
    check_calibration, check_delivery, check_differential, check_fabric_delivery,
    check_fabric_differential, check_fabric_progress, check_progress, check_resume, OracleKind,
    Violation,
};
use crate::shrink::{ddmin, decompose};
use crate::ChaosError;
use gnoc_core::faults::LinkFaultKind;
use gnoc_core::health::run_slice_detection_for_spec;
use gnoc_core::noc::{NodeId, PacketClass, RouteOrder};
use gnoc_core::telemetry::TelemetryHandle;
use gnoc_core::trace::{fnv1a64, from_hex, to_hex, TraceHeader, TraceReader, TraceTap};
use gnoc_core::{
    device_for_preset, spec_for_preset, ArbiterKind, CheckpointedCampaign, FabricConfig,
    FabricHealthConfig, FabricHealthMonitor, FabricSim, FaultPlan, HealthConfig, MeshConfig,
    ReliableMesh, SelfHealingMesh, WorkerPool,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Format version of chaos state files.
pub const CHAOS_STATE_VERSION: u32 = 1;
/// Format version of reproducer files.
pub const REPRODUCER_VERSION: u32 = 1;

/// Predicate-evaluation budget handed to the shrinker per violation.
const SHRINK_MAX_TESTS: usize = 96;

/// How long the hidden-plan detection run patrols past the last fault onset.
/// Must exceed [`DETECTION_LATENCY_BOUND`] so a timely detection of the
/// latest-onset fault still fits inside the run.
const DETECTION_RUN_MARGIN: u64 = 8_000;

/// Latest acceptable first-open cycle for a dead link's breaker, relative to
/// the fault's onset. Drop evidence accumulates across retry timeouts
/// (128..2048 cycles) and 256-cycle health windows; an open normally lands
/// within ~1k cycles of onset, so 6k flags genuine sluggishness, not jitter.
const DETECTION_LATENCY_BOUND: u64 = 6_000;

/// Health windows of slice probing in the hidden-plan device run.
const SLICE_DETECTION_WINDOWS: u64 = 16;

/// Latest acceptable first-open window for a latent-faulty slice. The EWMA
/// crosses the margin on the first probe (the 900-cycle penalty dwarfs the
/// 300-cycle margin) and the leaky bucket needs two failing windows.
const SLICE_DETECTION_WINDOW_BOUND: u64 = 3;

/// A tiny splitmix64 stream for deterministic traffic generation.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a digest of a fault plan's canonical JSON — the identity a trace
/// header pins so a replay against the wrong plan is refused, not silently
/// divergent. `0` when the plan cannot serialize (the soak would have
/// rejected such a plan long before recording).
fn plan_fingerprint(plan: &FaultPlan) -> u64 {
    plan.to_json()
        .map(|j| fnv1a64(j.as_bytes()))
        .unwrap_or_default()
}

/// Canonical outcome digest of a finished NoC soak: the cycle count plus
/// the JSON-serialized reliability stats. Two runs with equal fingerprints
/// made the same deliveries, retries, losses, and latency histogram in the
/// same number of cycles.
fn mesh_fingerprint(rm: &ReliableMesh) -> u64 {
    let stats = serde_json::to_string(rm.stats()).unwrap_or_default();
    fnv1a64(format!("cycle={};{stats}", rm.mesh().cycle()).as_bytes())
}

/// Fabric counterpart of [`mesh_fingerprint`].
fn fabric_fingerprint(sim: &FabricSim) -> u64 {
    let stats = serde_json::to_string(sim.stats()).unwrap_or_default();
    fnv1a64(format!("cycle={};{stats}", sim.cycle()).as_bytes())
}

/// The trace header a chaos NoC soak records under.
fn mesh_trace_header(cfg: &ChaosConfig, seed: u64, plan: &FaultPlan) -> TraceHeader {
    TraceHeader::mesh(
        cfg.width,
        cfg.height,
        seed,
        u64::from(cfg.transfers),
        plan_fingerprint(plan),
    )
}

/// The trace header a chaos fabric soak records under.
fn fabric_trace_header(cfg: &ChaosConfig, seed: u64, plan: &FaultPlan) -> TraceHeader {
    TraceHeader::fabric(
        cfg.devices,
        cfg.fabric_topology().name(),
        cfg.width,
        cfg.height,
        seed,
        u64::from(cfg.transfers),
        plan_fingerprint(plan),
    )
}

/// What one chaos iteration observed.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// The iteration seed.
    pub seed: u64,
    /// Violations observed (empty = clean iteration).
    pub violations: Vec<Violation>,
    /// Oracles that ran and passed.
    pub passes: Vec<OracleKind>,
    /// Whether the iteration panicked (also reported as a
    /// [`OracleKind::NoPanic`] violation).
    pub panicked: bool,
}

impl IterationOutcome {
    /// Whether every oracle that ran passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.panicked
    }
}

/// One recorded violation, with its plan and (when shrinking ran) the
/// minimized reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// The iteration seed.
    pub seed: u64,
    /// Violation specifics.
    pub detail: String,
    /// The full plan the violation was observed on.
    pub plan: FaultPlan,
    /// The ddmin-shrunk plan (still violating), when shrinking ran.
    pub shrunk: Option<FaultPlan>,
    /// Fault atoms in the full plan.
    pub atoms_before: usize,
    /// Fault atoms left after shrinking.
    pub atoms_after: Option<usize>,
    /// Path of the written reproducer file, when one was emitted.
    pub reproducer: Option<String>,
}

/// Aggregate result of a chaos run (also the persisted state's payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The configuration every iteration ran under.
    pub config: ChaosConfig,
    /// Seeds fully processed, in order.
    pub completed_seeds: Vec<u64>,
    /// Pass counts per oracle name.
    pub oracle_passes: BTreeMap<String, u64>,
    /// Every violation observed.
    pub violations: Vec<ViolationRecord>,
    /// Iterations that panicked (each also has a `no-panic` violation).
    pub panics: u64,
}

impl ChaosReport {
    fn new(config: ChaosConfig) -> Self {
        Self {
            config,
            completed_seeds: Vec::new(),
            oracle_passes: BTreeMap::new(),
            violations: Vec::new(),
            panics: 0,
        }
    }

    /// Whether the run saw zero violations and zero panics.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.panics == 0
    }

    /// Writes the report as pretty JSON (for `gnoc chaos run --report`).
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] / [`ChaosError::Parse`].
    pub fn save(&self, path: &Path) -> Result<(), ChaosError> {
        let text =
            serde_json::to_string_pretty(self).map_err(|e| ChaosError::Parse(e.to_string()))?;
        gnoc_core::atomic_write(path, text.as_bytes()).map_err(|e| ChaosError::Io(e.to_string()))
    }
}

/// Resumable on-disk chaos state: the report so far plus the seeds still
/// pending. Rewritten (atomically) after every iteration, so killing a soak
/// loses at most the iteration in progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosState {
    /// Format version ([`CHAOS_STATE_VERSION`]).
    pub version: u32,
    /// Seeds not yet processed.
    pub pending: Vec<u64>,
    /// Results accumulated so far.
    pub report: ChaosReport,
}

impl ChaosState {
    /// Loads and version-checks a state file.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] / [`ChaosError::Parse`] / [`ChaosError::Version`].
    pub fn load(path: &Path) -> Result<Self, ChaosError> {
        let text = std::fs::read_to_string(path).map_err(|e| ChaosError::Io(e.to_string()))?;
        let state: Self =
            serde_json::from_str(&text).map_err(|e| ChaosError::Parse(e.to_string()))?;
        if state.version != CHAOS_STATE_VERSION {
            return Err(ChaosError::Version(state.version));
        }
        Ok(state)
    }

    /// Writes the state atomically and durably via the shared
    /// [`gnoc_core::atomic_write`] (temp sibling + fsync + rename).
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] / [`ChaosError::Parse`].
    pub fn save(&self, path: &Path) -> Result<(), ChaosError> {
        let text =
            serde_json::to_string_pretty(self).map_err(|e| ChaosError::Parse(e.to_string()))?;
        gnoc_core::atomic_write(path, text.as_bytes()).map_err(|e| ChaosError::Io(e.to_string()))
    }
}

/// Where a flight-recorder capture of this failure lives: the profile
/// artifact path plus the virtual-cycle window it covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWindow {
    /// The stall-attribution profile written by the chaos run's `--profile`
    /// flag (a Chrome trace sits alongside it at `<profile>.trace.json`).
    pub profile: String,
    /// First virtual cycle covered by the trace.
    pub start: u64,
    /// Last virtual cycle covered by the trace.
    pub end: u64,
}

/// A self-contained failing-iteration record: config + seed + (shrunk)
/// plan, plus the exact CLI command that replays it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Reproducer {
    /// Format version ([`REPRODUCER_VERSION`]).
    pub version: u32,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// The iteration seed.
    pub seed: u64,
    /// Violation specifics at record time.
    pub detail: String,
    /// The configuration to replay under.
    pub config: ChaosConfig,
    /// The (shrunk) fault plan that still violates the oracle.
    pub plan: FaultPlan,
    /// The exact command that replays this failure.
    pub command: String,
    /// Flight-recorder capture of this failure, when the run profiled it.
    pub trace: Option<TraceWindow>,
    /// Hex-encoded `gnoc-trace` stream of the failing soak's submissions —
    /// a self-contained replayable workload (`gnoc trace replay` accepts it
    /// once decoded, and [`replay`] re-verifies it against a fresh twin).
    pub traffic_trace: Option<String>,
}

// Manual impl: `trace` is optional so pre-profiling reproducer files (and
// hand-written ones) still load; the derive treats missing fields as errors.
impl Deserialize for Reproducer {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            version: Deserialize::deserialize_value(value.field("version")?)?,
            oracle: Deserialize::deserialize_value(value.field("oracle")?)?,
            seed: Deserialize::deserialize_value(value.field("seed")?)?,
            detail: Deserialize::deserialize_value(value.field("detail")?)?,
            config: Deserialize::deserialize_value(value.field("config")?)?,
            plan: Deserialize::deserialize_value(value.field("plan")?)?,
            command: Deserialize::deserialize_value(value.field("command")?)?,
            trace: match value.field("trace") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => None,
            },
            traffic_trace: match value.field("traffic_trace") {
                Ok(v) => Deserialize::deserialize_value(v)?,
                Err(_) => None,
            },
        })
    }
}

impl Reproducer {
    /// Loads and version-checks a reproducer file.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] / [`ChaosError::Parse`] / [`ChaosError::Version`].
    pub fn load(path: &Path) -> Result<Self, ChaosError> {
        let text = std::fs::read_to_string(path).map_err(|e| ChaosError::Io(e.to_string()))?;
        let repro: Self =
            serde_json::from_str(&text).map_err(|e| ChaosError::Parse(e.to_string()))?;
        if repro.version != REPRODUCER_VERSION {
            return Err(ChaosError::Version(repro.version));
        }
        Ok(repro)
    }

    /// Writes the reproducer as pretty JSON, atomically: a half-written
    /// reproducer is worse than none, because it looks like a replayable
    /// artifact but silently drops plan atoms.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Io`] / [`ChaosError::Parse`].
    pub fn save(&self, path: &Path) -> Result<(), ChaosError> {
        let text =
            serde_json::to_string_pretty(self).map_err(|e| ChaosError::Parse(e.to_string()))?;
        gnoc_core::atomic_write(path, text.as_bytes()).map_err(|e| ChaosError::Io(e.to_string()))
    }
}

/// Options orthogonal to [`ChaosConfig`]: which seeds, where to persist,
/// and the wall-clock budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosOptions {
    /// Seeds to run, in order (ignored when resuming from a state file,
    /// whose pending list wins).
    pub seeds: Vec<u64>,
    /// Resumable state file, rewritten after every iteration.
    pub state_path: Option<PathBuf>,
    /// Wall-clock budget in milliseconds; the run stops *between*
    /// iterations when exceeded and salvages everything completed.
    pub wall_budget_ms: Option<u64>,
    /// Shrink failing plans with ddmin before recording them.
    pub shrink: bool,
    /// Directory for reproducer JSON files (created on demand); `None`
    /// records violations in the report only.
    pub repro_dir: Option<PathBuf>,
    /// Worker count for iteration fan-out (0 and 1 both mean serial).
    /// Iterations are computed in parallel batches, but their results are
    /// folded into the report *in seed order*, and the state file is still
    /// rewritten after every folded iteration — the report, state, and
    /// reproducers are bit-identical for any value of `jobs`.
    pub jobs: usize,
    /// Flight-record the first violating seed's NoC soak (falling back to
    /// the first completed seed when the run is clean) and write the
    /// stall-attribution profile here, with a Chrome trace alongside it at
    /// `<path>.trace.json`. Profiling replays the seed with a recorder
    /// attached; the fuzzing iterations themselves are untouched, so the
    /// report stays bit-identical to an unprofiled run.
    pub profile: Option<PathBuf>,
}

/// Outcome of [`run_chaos`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRun {
    /// The accumulated report (partial when `finished` is false).
    pub report: ChaosReport,
    /// Whether every requested seed was processed (false = the wall budget
    /// expired first; resume from the state file to continue).
    pub finished: bool,
    /// Seeds left unprocessed by a budget stop.
    pub pending: Vec<u64>,
}

/// Runs one chaos iteration: fault-plan application, reliable-mesh soak,
/// and (when `run_device` is set and a device is configured) the campaign
/// oracles. The whole iteration runs under `catch_unwind`; a panic anywhere
/// becomes a [`OracleKind::NoPanic`] violation instead of aborting the
/// soak.
pub fn run_iteration(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
    run_device: bool,
) -> IterationOutcome {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        iteration_body(cfg, seed, plan, run_device)
    }));
    match caught {
        Ok((violations, passes)) => IterationOutcome {
            seed,
            violations,
            passes,
            panicked: false,
        },
        Err(payload) => IterationOutcome {
            seed,
            violations: vec![Violation {
                oracle: OracleKind::NoPanic,
                seed,
                detail: format!("iteration panicked: {}", panic_message(&payload)),
            }],
            passes: Vec::new(),
            panicked: true,
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn iteration_body(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
    run_device: bool,
) -> (Vec<Violation>, Vec<OracleKind>) {
    let mut violations = Vec::new();
    let mut passes = Vec::new();
    let record = |kind: OracleKind,
                  result: Result<(), String>,
                  violations: &mut Vec<Violation>,
                  passes: &mut Vec<OracleKind>| match result {
        Ok(()) => passes.push(kind),
        Err(detail) => violations.push(Violation {
            oracle: kind,
            seed,
            detail,
        }),
    };

    // --- Fabric soak: multi-device configs route the soak through the
    // inter-device fabric instead of a lone die (the dies still run,
    // composed under every transfer's first and last leg). ---
    if cfg.devices >= 2 {
        for (kind, result) in fabric_soak_phase(cfg, seed, plan) {
            record(kind, result, &mut violations, &mut passes);
        }
    } else {
        // --- NoC soak: reliable delivery over the faulted mesh. ---
        // Single-VC wormhole buffers: legitimate for independent transfers
        // (no request/reply coupling) and exactly the surface the historical
        // reroute-deadlock bug lived on, so the progress oracle keeps bite.
        let mesh_cfg = MeshConfig {
            width: cfg.width as usize,
            height: cfg.height as usize,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs: 1,
        };
        match ReliableMesh::with_faults(mesh_cfg, plan, cfg.retry) {
            Err(e) => violations.push(Violation {
                oracle: OracleKind::Delivery,
                seed,
                detail: format!("harness: mesh rejected a generated plan: {e}"),
            }),
            Ok(mut rm) => {
                #[cfg(feature = "bug-hooks")]
                if cfg.greedy_reroute_bug {
                    rm.mesh_mut().enable_greedy_reroute_bug();
                }
                if cfg.replay {
                    rm.attach_trace_tap(TraceTap::in_memory(&mesh_trace_header(cfg, seed, plan)));
                }
                match submit_mesh_traffic(&mut rm, cfg, seed) {
                    Err(detail) => violations.push(Violation {
                        oracle: OracleKind::Delivery,
                        seed,
                        detail,
                    }),
                    Ok(()) => {
                        let quiesced = rm.run_until_quiescent(cfg.soak_cycle_budget);
                        record(
                            OracleKind::Delivery,
                            check_delivery(u64::from(cfg.transfers), quiesced, &rm),
                            &mut violations,
                            &mut passes,
                        );
                        record(
                            OracleKind::Progress,
                            check_progress(quiesced, &rm),
                            &mut violations,
                            &mut passes,
                        );
                        if cfg.replay {
                            record(
                                OracleKind::Replay,
                                check_replay_mesh(cfg, plan, &mut rm, quiesced),
                                &mut violations,
                                &mut passes,
                            );
                        }
                    }
                }
            }
        }
    }

    // --- Hidden-plan detection oracle. ---
    if cfg.detection {
        record(
            OracleKind::Detection,
            detection_phase(cfg, seed, plan),
            &mut violations,
            &mut passes,
        );
    }

    // --- Device campaign oracles. ---
    if run_device {
        if let Some(device) = &cfg.device {
            match device_phase(cfg, device, seed, plan) {
                Ok(results) => {
                    for (kind, result) in results {
                        record(kind, result, &mut violations, &mut passes);
                    }
                }
                Err(e) => violations.push(Violation {
                    oracle: OracleKind::Resume,
                    seed,
                    detail: format!("device campaign phase failed: {e}"),
                }),
            }
        }
    }

    (violations, passes)
}

/// Runs golden, faulted, and kill/resume campaigns for one iteration and
/// evaluates the calibration, resume, and differential oracles.
#[allow(clippy::type_complexity)]
fn device_phase(
    cfg: &ChaosConfig,
    device: &str,
    seed: u64,
    plan: &FaultPlan,
) -> Result<Vec<(OracleKind, Result<(), String>)>, String> {
    let probe = cfg.probe();
    let err = |e: gnoc_core::CheckpointError| e.to_string();

    let golden = CheckpointedCampaign::new(device, seed, probe, None)
        .map_err(err)?
        .run_to_completion(None)
        .map_err(err)?;
    let straight = CheckpointedCampaign::new(device, seed, probe, Some(plan.clone()))
        .map_err(err)?
        .run_to_completion(None)
        .map_err(err)?;

    // Kill/resume: run a third of the rows, checkpoint, "die", resume.
    let path = scratch_checkpoint_path(seed);
    let _ = std::fs::remove_file(&path);
    let mut partial =
        CheckpointedCampaign::new(device, seed, probe, Some(plan.clone())).map_err(err)?;
    let rows = (partial.num_sms() / 3).max(1);
    for _ in 0..rows {
        partial.step_row().map_err(err)?;
    }
    partial.save(&path).map_err(err)?;
    drop(partial);
    let resumed = CheckpointedCampaign::resume(&path, device, seed, probe, Some(plan.clone()))
        .map_err(err)?
        .run_to_completion(Some(&path))
        .map_err(err)?;
    let _ = std::fs::remove_file(&path);

    let mut results = vec![(OracleKind::Resume, check_resume(&straight, &resumed))];
    let untouched = calibration_safe(plan);
    if untouched {
        match check_calibration(device, &straight) {
            Ok(true) => results.push((OracleKind::Calibration, Ok(()))),
            Ok(false) => {} // no pinned band for this preset: oracle didn't run
            Err(detail) => results.push((OracleKind::Calibration, Err(detail))),
        }
    }
    results.push((
        OracleKind::Differential,
        check_differential(untouched, &golden, &straight),
    ));
    Ok(results)
}

/// Submits the single-die soak's deterministic traffic: `cfg.transfers`
/// transfers with distinct endpoints, alternating packet classes, and
/// 1–4 flits, drawn from the seeded splitmix stream.
fn submit_mesh_traffic(rm: &mut ReliableMesh, cfg: &ChaosConfig, seed: u64) -> Result<(), String> {
    let n = u64::from(cfg.width) * u64::from(cfg.height);
    let mut rng = SplitMix(seed ^ 0x6368_616f_735f_7278);
    for i in 0..cfg.transfers {
        let src = rng.next() % n;
        let dst = (src + 1 + rng.next() % (n - 1)) % n;
        let flits = 1 + (rng.next() % 4) as u32;
        let class = if i % 2 == 0 {
            PacketClass::Request
        } else {
            PacketClass::Reply
        };
        rm.submit_checked(
            NodeId::new(src as u32),
            NodeId::new(dst as u32),
            flits,
            class,
        )
        .map_err(|e| format!("harness: in-range submit rejected: {e}"))?;
    }
    Ok(())
}

/// The fabric configuration a multi-device chaos iteration runs under: the
/// same per-die mesh and retry policy as the single-die soak, on the
/// configured device count and topology.
fn fabric_config(cfg: &ChaosConfig) -> FabricConfig {
    let mut fc = FabricConfig::new(cfg.devices, cfg.fabric_topology());
    fc.mesh = MeshConfig {
        width: cfg.width as usize,
        height: cfg.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    fc.retry = cfg.retry;
    fc
}

/// Submits the fabric soak's deterministic traffic: `cfg.transfers`
/// transfers whose endpoints (devices and on-die nodes) come from the same
/// seeded splitmix stream the single-die soak uses. Device picks are
/// uniform, so roughly `1/devices` of the traffic stays on its source die
/// and exercises the composition path; the rest crosses the fabric.
fn submit_fabric_traffic(sim: &mut FabricSim, cfg: &ChaosConfig, seed: u64) -> Result<(), String> {
    let n = u64::from(cfg.width) * u64::from(cfg.height);
    let devs = u64::from(cfg.devices);
    let mut rng = SplitMix(seed ^ 0x6368_616f_735f_7278);
    for i in 0..cfg.transfers {
        let src_dev = (rng.next() % devs) as u32;
        let dst_dev = (rng.next() % devs) as u32;
        // Same-device transfers keep the single-die soak's distinct-endpoint
        // rule; cross-device endpoints are free (both draws always happen,
        // so the stream stays aligned across the two shapes).
        let (src, dst) = if src_dev == dst_dev {
            let s = rng.next() % n;
            let d = (s + 1 + rng.next() % (n - 1)) % n;
            (s, d)
        } else {
            (rng.next() % n, rng.next() % n)
        };
        let flits = 1 + (rng.next() % 4) as u32;
        let class = if i % 2 == 0 {
            PacketClass::Request
        } else {
            PacketClass::Reply
        };
        sim.submit(
            src_dev,
            NodeId::new(src as u32),
            dst_dev,
            NodeId::new(dst as u32),
            flits,
            class,
        )
        .map_err(|e| format!("harness: in-range submit rejected: {e}"))?;
    }
    Ok(())
}

/// The multi-device analogue of the NoC soak: deterministic cross-device
/// traffic over the faulted fabric, checked by the fabric delivery and
/// progress oracles, plus a golden (fault-free, same traffic) replay for
/// the differential oracle.
fn fabric_soak_phase(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
) -> Vec<(OracleKind, Result<(), String>)> {
    let fc = fabric_config(cfg);
    let mut sim = match FabricSim::with_faults(fc.clone(), plan) {
        Err(e) => {
            return vec![(
                OracleKind::Delivery,
                Err(format!("harness: fabric rejected a generated plan: {e}")),
            )]
        }
        Ok(sim) => sim,
    };
    #[cfg(feature = "bug-hooks")]
    if cfg.fabric_stuck_crossing_bug {
        sim.enable_stuck_crossing_bug();
    }
    if cfg.replay {
        sim.attach_trace_tap(TraceTap::in_memory(&fabric_trace_header(cfg, seed, plan)));
    }
    if let Err(detail) = submit_fabric_traffic(&mut sim, cfg, seed) {
        return vec![(OracleKind::Delivery, Err(detail))];
    }
    let quiesced = sim.run_until_quiescent(cfg.soak_cycle_budget);

    // Golden replay: identical traffic on an empty plan carrying the same
    // seed, so a benign generated plan constructs a bit-identical twin (a
    // benign plan draws nothing from the fault RNG — only the seed's
    // identity matters for the comparison).
    let golden_plan = FaultPlan {
        seed: plan.seed,
        ..FaultPlan::default()
    };
    let mut golden = match FabricSim::with_faults(fc, &golden_plan) {
        Err(e) => {
            return vec![(
                OracleKind::Differential,
                Err(format!("harness: golden fabric construction failed: {e}")),
            )]
        }
        Ok(sim) => sim,
    };
    let _ = submit_fabric_traffic(&mut golden, cfg, seed);
    golden.run_until_quiescent(cfg.soak_cycle_budget);

    let mut results = vec![
        (
            OracleKind::Delivery,
            check_fabric_delivery(u64::from(cfg.transfers), quiesced, &sim),
        ),
        (OracleKind::Progress, check_fabric_progress(quiesced, &sim)),
        (
            OracleKind::Differential,
            check_fabric_differential(plan.is_benign(), &golden, &sim),
        ),
    ];
    if cfg.replay {
        results.push((
            OracleKind::Replay,
            check_replay_fabric(cfg, plan, &mut sim, quiesced),
        ));
    }
    results
}

/// The recorded-vs-replayed oracle for the NoC soak: finalizes the trace the
/// soak just recorded, replays it into a freshly built twin (same plan, same
/// bug hooks), runs the twin under the same cycle budget, and demands an
/// identical outcome fingerprint. Any nondeterminism between recording and
/// replaying — in the trace codec, the replay driver, or the simulator
/// itself — surfaces here as a violation.
fn check_replay_mesh(
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    rm: &mut ReliableMesh,
    quiesced: bool,
) -> Result<(), String> {
    let tap = rm
        .take_trace_tap()
        .ok_or_else(|| "harness: replay oracle ran without a record tap".to_string())?;
    let recorded = mesh_fingerprint(rm);
    let bytes = tap
        .finish_bytes(recorded)
        .map_err(|e| format!("harness: trace capture failed: {e}"))?;

    let mesh_cfg = MeshConfig {
        width: cfg.width as usize,
        height: cfg.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let mut twin = ReliableMesh::with_faults(mesh_cfg, plan, cfg.retry)
        .map_err(|e| format!("harness: replay twin construction failed: {e}"))?;
    #[cfg(feature = "bug-hooks")]
    if cfg.greedy_reroute_bug {
        twin.mesh_mut().enable_greedy_reroute_bug();
    }
    let mut reader = TraceReader::from_bytes(bytes)
        .map_err(|e| format!("recorded trace failed to parse: {e}"))?;
    let outcome = twin
        .replay_from(&mut reader)
        .map_err(|e| format!("replay diverged at submit time: {e}"))?;
    if let Some((chunk, offset)) = outcome.truncated {
        return Err(format!(
            "in-memory trace reported truncation at chunk {chunk}, offset {offset}"
        ));
    }
    let twin_quiesced = twin.run_until_quiescent(cfg.soak_cycle_budget);
    if twin_quiesced != quiesced {
        return Err(format!(
            "replayed quiescence {twin_quiesced} != recorded {quiesced}"
        ));
    }
    let replayed = mesh_fingerprint(&twin);
    if replayed != recorded {
        return Err(format!(
            "replayed outcome fingerprint {replayed:016x} != recorded {recorded:016x} \
             over {} events",
            outcome.replayed
        ));
    }
    Ok(())
}

/// Fabric counterpart of [`check_replay_mesh`].
fn check_replay_fabric(
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    sim: &mut FabricSim,
    quiesced: bool,
) -> Result<(), String> {
    let tap = sim
        .take_trace_tap()
        .ok_or_else(|| "harness: replay oracle ran without a record tap".to_string())?;
    let recorded = fabric_fingerprint(sim);
    let bytes = tap
        .finish_bytes(recorded)
        .map_err(|e| format!("harness: trace capture failed: {e}"))?;

    let mut twin = FabricSim::with_faults(fabric_config(cfg), plan)
        .map_err(|e| format!("harness: replay twin construction failed: {e}"))?;
    #[cfg(feature = "bug-hooks")]
    if cfg.fabric_stuck_crossing_bug {
        twin.enable_stuck_crossing_bug();
    }
    let mut reader = TraceReader::from_bytes(bytes)
        .map_err(|e| format!("recorded trace failed to parse: {e}"))?;
    let outcome = twin
        .replay_from(&mut reader)
        .map_err(|e| format!("replay diverged at submit time: {e}"))?;
    if let Some((chunk, offset)) = outcome.truncated {
        return Err(format!(
            "in-memory trace reported truncation at chunk {chunk}, offset {offset}"
        ));
    }
    let twin_quiesced = twin.run_until_quiescent(cfg.soak_cycle_budget);
    if twin_quiesced != quiesced {
        return Err(format!(
            "replayed quiescence {twin_quiesced} != recorded {quiesced}"
        ));
    }
    let replayed = fabric_fingerprint(&twin);
    if replayed != recorded {
        return Err(format!(
            "replayed outcome fingerprint {replayed:016x} != recorded {recorded:016x} \
             over {} events",
            outcome.replayed
        ));
    }
    Ok(())
}

/// The hidden-plan detection phase: the plan is physically applied but
/// *never shown* to the health layer, which must infer every fault from
/// behavioral telemetry alone. Scores three properties against ground truth:
///
/// - **precision** — no breaker opens on a healthy link or slice (die-wide
///   transient noise is exempt for links: under it, any link can
///   legitimately accumulate drops);
/// - **recall** — every dead link and every disabled slice is detected;
/// - **latency** — each detection lands within a fixed bound of its fault's
///   onset.
///
/// Flaky links sit between the two: detecting one is correct (it is a real
/// fault), missing one is tolerated (drops are probabilistic).
fn detection_phase(cfg: &ChaosConfig, seed: u64, plan: &FaultPlan) -> Result<(), String> {
    let mut problems: Vec<String> = Vec::new();

    // Link detection on a self-healing mesh (same geometry as the soak).
    let mesh_cfg = MeshConfig {
        width: cfg.width as usize,
        height: cfg.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let mut healer = SelfHealingMesh::new(mesh_cfg, plan, cfg.retry, HealthConfig::default())
        .map_err(|e| format!("harness: self-healing mesh rejected the plan: {e}"))?;
    let last_onset = plan.links.iter().map(|l| l.onset).max().unwrap_or(0);
    healer
        .run_detection(last_onset + DETECTION_RUN_MARGIN)
        .map_err(|e| format!("harness: detection run failed: {e}"))?;

    problems.extend(score_link_detection(plan, &healer.detected_links()));

    // Fabric-link detection for multi-device configs: the fabric plan is
    // applied but concealed from a self-healing fabric, whose per-link
    // drop-window breakers must find every dead inter-device link from
    // crossing-drop evidence alone.
    if cfg.devices >= 2 {
        problems.extend(fabric_detection(cfg, plan)?);
    }

    // Slice detection on a latent-fault device, when one is configured. The
    // device never remaps around `plan.disabled_slices` itself; the monitor
    // must find them from probe latencies.
    if let Some(device) = &cfg.device {
        let spec = spec_for_preset(device).map_err(|e| format!("harness: {e}"))?;
        let (_dev, monitor) = run_slice_detection_for_spec(
            spec,
            plan,
            seed,
            HealthConfig::default(),
            SLICE_DETECTION_WINDOWS,
        )
        .map_err(|e| format!("harness: slice detection failed: {e}"))?;
        problems.extend(score_slice_detection(plan, &monitor.detected_slices()));
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// Scores a detected-link set against the plan's ground truth: false
/// positives on healthy links (unless die-wide transient noise is active,
/// under which any link legitimately accumulates drops), misses on dead
/// links, and detections past the latency bound. Flaky links may be
/// detected (they are real faults) but are never required to be.
fn score_link_detection(
    plan: &FaultPlan,
    detected: &[(u32, gnoc_core::faults::Direction, u64)],
) -> Vec<String> {
    let mut problems = Vec::new();
    let has_fault = |r: u32, d: gnoc_core::faults::Direction| {
        plan.links.iter().any(|l| l.router == r && l.dir == d)
    };
    if !plan.transient.is_active() {
        for &(r, d, at) in detected {
            if !has_fault(r, d) {
                problems.push(format!(
                    "false positive: breaker for healthy link {r}:{d} opened at cycle {at}"
                ));
            }
        }
    }
    for l in &plan.links {
        if !matches!(l.kind, LinkFaultKind::Dead) {
            continue;
        }
        let (r, d) = (l.router, l.dir);
        match detected.iter().find(|&&(dr, dd, _)| dr == r && dd == d) {
            None => problems.push(format!(
                "miss: dead link {r}:{d} (onset {}) never detected",
                l.onset
            )),
            Some(&(_, _, at)) if at > l.onset + DETECTION_LATENCY_BOUND => {
                problems.push(format!(
                    "slow detection: dead link {r}:{d} (onset {}) first opened at cycle \
                     {at}, past the bound {}",
                    l.onset,
                    l.onset + DETECTION_LATENCY_BOUND
                ));
            }
            Some(_) => {}
        }
    }
    problems
}

/// Runs the hidden-plan fabric detection: a self-healing fabric (routing
/// blind to the plan, reacting only to monitor quarantines) patrolled by
/// the per-link breaker monitor until every onset has had
/// [`DETECTION_RUN_MARGIN`] cycles to surface.
fn fabric_detection(cfg: &ChaosConfig, plan: &FaultPlan) -> Result<Vec<String>, String> {
    let mut fc = fabric_config(cfg);
    fc.self_healing = true;
    let mut sim = FabricSim::with_faults(fc, plan)
        .map_err(|e| format!("harness: self-healing fabric rejected the plan: {e}"))?;
    let mut monitor = FabricHealthMonitor::new(&sim, FabricHealthConfig::default());
    let last_onset = plan
        .fabric
        .links
        .iter()
        .map(|l| l.onset)
        .chain(plan.fabric.devices.iter().map(|d| d.onset))
        .chain(plan.fabric.dead_switch)
        .max()
        .unwrap_or(0);
    monitor.run_detection(&mut sim, last_onset + DETECTION_RUN_MARGIN);
    Ok(score_fabric_detection(
        cfg,
        plan,
        &monitor.detected_links(&sim),
    ))
}

/// Scores fabric-link detections against the plan's ground truth. A
/// detection is legitimate when the link itself is faulted (dead or flaky)
/// or when one of its endpoints is a lost device or the dead switch — the
/// link is then genuinely unusable and quarantining it is correct. Recall
/// and latency are required only for dead links whose endpoints stay
/// alive: traffic toward a dead node is stranded as `Partitioned` before
/// any crossing is attempted, so no drop evidence can accumulate there.
fn score_fabric_detection(
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    detected: &[(u32, u32, u64)],
) -> Vec<String> {
    let mut problems = Vec::new();
    let topo = cfg.fabric_topology();
    let dead_devices = plan.fabric.dead_devices();
    let switch = topo.switch_node(cfg.devices);
    let endpoint_dead = |n: u32| {
        dead_devices.contains(&n) || (Some(n) == switch && plan.fabric.dead_switch.is_some())
    };
    let has_fault = |a: u32, b: u32| {
        plan.fabric
            .links
            .iter()
            .any(|l| (l.a.min(l.b), l.a.max(l.b)) == (a, b))
    };
    for &(a, b, at) in detected {
        if !has_fault(a, b) && !endpoint_dead(a) && !endpoint_dead(b) {
            problems.push(format!(
                "false positive: breaker for healthy fabric link {a}<->{b} opened at cycle {at}"
            ));
        }
    }
    for l in &plan.fabric.links {
        if !matches!(l.kind, LinkFaultKind::Dead) || endpoint_dead(l.a) || endpoint_dead(l.b) {
            continue;
        }
        let (a, b) = (l.a.min(l.b), l.a.max(l.b));
        match detected.iter().find(|&&(da, db, _)| (da, db) == (a, b)) {
            None => problems.push(format!(
                "miss: dead fabric link {a}<->{b} (onset {}) never detected",
                l.onset
            )),
            Some(&(_, _, at)) if at > l.onset + DETECTION_LATENCY_BOUND => {
                problems.push(format!(
                    "slow detection: dead fabric link {a}<->{b} (onset {}) first opened at \
                     cycle {at}, past the bound {}",
                    l.onset,
                    l.onset + DETECTION_LATENCY_BOUND
                ));
            }
            Some(_) => {}
        }
    }
    problems
}

/// Scores a detected-slice set against `plan.disabled_slices`: false
/// positives on healthy slices, misses on disabled ones, and first-open
/// windows past [`SLICE_DETECTION_WINDOW_BOUND`].
fn score_slice_detection(plan: &FaultPlan, found: &[(u32, u64)]) -> Vec<String> {
    let mut problems = Vec::new();
    for &(slice, window) in found {
        if !plan.disabled_slices.contains(&slice) {
            problems.push(format!(
                "false positive: breaker for healthy slice {slice} opened in window {window}"
            ));
        }
    }
    for &slice in &plan.disabled_slices {
        match found.iter().find(|&&(s, _)| s == slice) {
            None => problems.push(format!("miss: faulty slice {slice} never detected")),
            Some(&(_, window)) if window > SLICE_DETECTION_WINDOW_BOUND => {
                problems.push(format!(
                    "slow detection: faulty slice {slice} first opened in window \
                     {window}, past the bound {SLICE_DETECTION_WINDOW_BOUND}"
                ));
            }
            Some(_) => {}
        }
    }
    problems
}

/// A collision-free scratch path for the kill/resume oracle's checkpoint.
fn scratch_checkpoint_path(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gnoc-chaos-ckpt-{}-{:?}-{seed}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Shrinks a violating plan: re-runs the iteration on ddmin candidates and
/// keeps the smallest plan on which the same oracle still fires.
pub fn shrink_violation(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
    oracle: OracleKind,
    run_device: bool,
) -> FaultPlan {
    let fails = |candidate: &FaultPlan| {
        run_iteration(cfg, seed, candidate, run_device)
            .violations
            .iter()
            .any(|v| v.oracle == oracle)
    };
    ddmin(plan, cfg.width, cfg.height, fails, SHRINK_MAX_TESTS)
}

/// Replays a reproducer: one full iteration (device oracles included when
/// the embedded config names a device) on the embedded plan. When the
/// reproducer carries an embedded traffic trace, it is additionally decoded
/// and replayed into a fresh twin, and the twin's outcome fingerprint is
/// checked against the digest the recording run sealed into the trace
/// footer — a mismatch is reported as an [`OracleKind::Replay`] violation.
pub fn replay(repro: &Reproducer) -> IterationOutcome {
    let mut outcome = run_iteration(
        &repro.config,
        repro.seed,
        &repro.plan,
        repro.config.device.is_some(),
    );
    if let Some(hex) = &repro.traffic_trace {
        match verify_embedded_trace(&repro.config, &repro.plan, hex) {
            Ok(()) => outcome.passes.push(OracleKind::Replay),
            Err(detail) => outcome.violations.push(Violation {
                oracle: OracleKind::Replay,
                seed: repro.seed,
                detail: format!("embedded trace: {detail}"),
            }),
        }
    }
    outcome
}

/// Re-runs a seed's soak with an in-memory record tap attached and returns
/// the finished trace, hex-encoded — the replayable artifact embedded in
/// reproducers. `None` when the soak cannot be reconstructed under this
/// plan (the reproducer is still valid without the artifact).
fn record_soak_trace(cfg: &ChaosConfig, seed: u64, plan: &FaultPlan) -> Option<String> {
    if cfg.devices >= 2 {
        let mut sim = FabricSim::with_faults(fabric_config(cfg), plan).ok()?;
        #[cfg(feature = "bug-hooks")]
        if cfg.fabric_stuck_crossing_bug {
            sim.enable_stuck_crossing_bug();
        }
        sim.attach_trace_tap(TraceTap::in_memory(&fabric_trace_header(cfg, seed, plan)));
        submit_fabric_traffic(&mut sim, cfg, seed).ok()?;
        sim.run_until_quiescent(cfg.soak_cycle_budget);
        let tap = sim.take_trace_tap()?;
        let digest = fabric_fingerprint(&sim);
        tap.finish_bytes(digest).ok().map(|b| to_hex(&b))
    } else {
        let mesh_cfg = MeshConfig {
            width: cfg.width as usize,
            height: cfg.height as usize,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs: 1,
        };
        let mut rm = ReliableMesh::with_faults(mesh_cfg, plan, cfg.retry).ok()?;
        #[cfg(feature = "bug-hooks")]
        if cfg.greedy_reroute_bug {
            rm.mesh_mut().enable_greedy_reroute_bug();
        }
        rm.attach_trace_tap(TraceTap::in_memory(&mesh_trace_header(cfg, seed, plan)));
        submit_mesh_traffic(&mut rm, cfg, seed).ok()?;
        rm.run_until_quiescent(cfg.soak_cycle_budget);
        let tap = rm.take_trace_tap()?;
        let digest = mesh_fingerprint(&rm);
        tap.finish_bytes(digest).ok().map(|b| to_hex(&b))
    }
}

/// Decodes a reproducer's embedded trace, checks it was recorded against
/// this plan, replays it into a fresh twin, and compares the twin's outcome
/// fingerprint with the digest sealed into the trace footer.
fn verify_embedded_trace(cfg: &ChaosConfig, plan: &FaultPlan, hex: &str) -> Result<(), String> {
    let bytes = from_hex(hex).map_err(|e| format!("undecodable hex: {e}"))?;
    let mut reader =
        TraceReader::from_bytes(bytes).map_err(|e| format!("unreadable trace: {e}"))?;
    let expected_plan = plan_fingerprint(plan);
    let header_plan = reader.header().plan_fnv;
    if header_plan != expected_plan {
        return Err(format!(
            "trace was recorded against plan {header_plan:016x}, \
             reproducer carries plan {expected_plan:016x}"
        ));
    }
    let replayed_digest = if cfg.devices >= 2 {
        let mut twin = FabricSim::with_faults(fabric_config(cfg), plan)
            .map_err(|e| format!("twin construction failed: {e}"))?;
        #[cfg(feature = "bug-hooks")]
        if cfg.fabric_stuck_crossing_bug {
            twin.enable_stuck_crossing_bug();
        }
        let outcome = twin
            .replay_from(&mut reader)
            .map_err(|e| format!("replay failed: {e}"))?;
        if let Some((chunk, offset)) = outcome.truncated {
            return Err(format!(
                "embedded trace is truncated at chunk {chunk}, offset {offset}"
            ));
        }
        twin.run_until_quiescent(cfg.soak_cycle_budget);
        fabric_fingerprint(&twin)
    } else {
        let mesh_cfg = MeshConfig {
            width: cfg.width as usize,
            height: cfg.height as usize,
            buffer_packets: 4,
            arbiter: ArbiterKind::RoundRobin,
            route_order: RouteOrder::Xy,
            vcs: 1,
        };
        let mut twin = ReliableMesh::with_faults(mesh_cfg, plan, cfg.retry)
            .map_err(|e| format!("twin construction failed: {e}"))?;
        #[cfg(feature = "bug-hooks")]
        if cfg.greedy_reroute_bug {
            twin.mesh_mut().enable_greedy_reroute_bug();
        }
        let outcome = twin
            .replay_from(&mut reader)
            .map_err(|e| format!("replay failed: {e}"))?;
        if let Some((chunk, offset)) = outcome.truncated {
            return Err(format!(
                "embedded trace is truncated at chunk {chunk}, offset {offset}"
            ));
        }
        twin.run_until_quiescent(cfg.soak_cycle_budget);
        mesh_fingerprint(&twin)
    };
    let sealed = reader
        .footer()
        .ok_or_else(|| "trace has no footer".to_string())?
        .stats_fnv;
    if replayed_digest != sealed {
        return Err(format!(
            "replayed outcome fingerprint {replayed_digest:016x} != recorded {sealed:016x}"
        ));
    }
    Ok(())
}

/// Runs a chaos soak over `opts.seeds` (or the pending seeds of a resumed
/// state file), evaluating every oracle, shrinking and recording failures,
/// and persisting resumable state. Deterministic in (config, seeds) — never
/// in `opts.jobs`, which only fans iteration computation across workers; the
/// wall budget only decides how far the run gets.
///
/// # Errors
///
/// [`ChaosError`] for configuration or state-file problems; invariant
/// violations are *data* in the returned [`ChaosReport`], not errors.
pub fn run_chaos(
    cfg: &ChaosConfig,
    opts: &ChaosOptions,
    telemetry: &TelemetryHandle,
) -> Result<ChaosRun, ChaosError> {
    cfg.validate()?;
    let num_slices = match &cfg.device {
        Some(name) => device_for_preset(name, 0, None)
            .map_err(|e| ChaosError::Config(e.to_string()))?
            .hierarchy()
            .num_slices() as u32,
        None => 0,
    };

    let (mut pending, mut report) = match &opts.state_path {
        Some(path) if path.exists() => {
            let state = ChaosState::load(path)?;
            if state.report.config != *cfg {
                return Err(ChaosError::StateMismatch("config"));
            }
            (state.pending, state.report)
        }
        _ => (opts.seeds.clone(), ChaosReport::new(cfg.clone())),
    };

    let pool = {
        let mut p = WorkerPool::new(opts.jobs.max(1));
        p.set_telemetry(telemetry.clone());
        p
    };
    // Serial pools run one seed per batch (the exact historical cadence);
    // parallel pools pull two seeds per worker so a slow iteration does not
    // idle the rest of the pool.
    let batch_size = if pool.jobs() <= 1 { 1 } else { pool.jobs() * 2 };

    let started = Instant::now();
    let mut finished = true;
    // The profiled seed and its trace window, once one has been captured.
    // Folding is seed-ordered, so "first violating seed" is deterministic
    // regardless of `jobs`.
    let mut profiled: Option<(u64, TraceWindow)> = None;
    while !pending.is_empty() {
        if let Some(budget) = opts.wall_budget_ms {
            if started.elapsed().as_millis() as u64 >= budget {
                finished = false;
                break;
            }
        }
        // Compute the batch in parallel: each seed's iteration (and its
        // shrinks) is a pure function of (config, seed), so workers never
        // race. Everything order-sensitive — telemetry, reproducer I/O,
        // report folding, state saves — happens below, in seed order.
        let take = batch_size.min(pending.len());
        let batch: Vec<u64> = pending[..take].to_vec();
        let results = pool.par_map(&batch, |&seed| {
            process_seed(cfg, seed, num_slices, opts.shrink)
        });

        for sr in results {
            pending.remove(0);
            report.completed_seeds.push(sr.seed);
            telemetry.counter_add("chaos.seeds", 1);
            for kind in &sr.outcome.passes {
                *report
                    .oracle_passes
                    .entry(kind.name().to_string())
                    .or_insert(0) += 1;
                telemetry.counter_add(&format!("chaos.oracle.{}.pass", kind.name()), 1);
            }
            if sr.outcome.panicked {
                report.panics += 1;
                telemetry.counter_add("chaos.panics", 1);
            }
            // Capture the first violating seed on the flight recorder: the
            // replay uses the same (config, seed, plan) pure function as the
            // iteration, so the trace shows exactly the failing traffic.
            if let Some(path) = &opts.profile {
                if profiled.is_none() && !sr.records.is_empty() {
                    let window = write_profile(
                        cfg,
                        sr.seed,
                        &sr.records[0].plan,
                        &sr.outcome.violations,
                        path,
                    )?;
                    profiled = Some((sr.seed, window));
                }
            }
            for mut rec in sr.records {
                telemetry.counter_add("chaos.violations", 1);
                if let Some(dir) = &opts.repro_dir {
                    let trace = profiled
                        .as_ref()
                        .filter(|(seed, _)| *seed == rec.seed)
                        .map(|(_, w)| w);
                    rec.reproducer = Some(write_reproducer(dir, cfg, &rec, trace)?);
                }
                report.violations.push(rec);
            }
            if let Some(path) = &opts.state_path {
                ChaosState {
                    version: CHAOS_STATE_VERSION,
                    pending: pending.clone(),
                    report: report.clone(),
                }
                .save(path)?;
            }
        }
    }

    // Clean run: nothing violated, so profile the first completed seed —
    // still a representative soak over this config's fault plans.
    if let Some(path) = &opts.profile {
        if profiled.is_none() {
            if let Some(&seed) = report.completed_seeds.first() {
                let plan = cfg.plan_for_seed(seed, num_slices);
                write_profile(cfg, seed, &plan, &[], path)?;
            }
        }
    }

    Ok(ChaosRun {
        finished: finished && pending.is_empty(),
        pending,
        report,
    })
}

/// Replays `seed`'s NoC soak with a flight recorder attached (same config,
/// plan, and traffic recipe as [`run_iteration`]'s first phase), annotates
/// the seed's oracle violations on the timeline, and writes the
/// stall-attribution profile to `path` plus a Chrome trace to
/// `<path>.trace.json`. Returns the trace's cycle window.
fn write_profile(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
    violations: &[Violation],
    path: &Path,
) -> Result<TraceWindow, ChaosError> {
    if cfg.devices >= 2 {
        return write_fabric_profile(cfg, seed, plan, violations, path);
    }
    let mesh_cfg = MeshConfig {
        width: cfg.width as usize,
        height: cfg.height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let mut rm = ReliableMesh::with_faults(mesh_cfg, plan, cfg.retry)
        .map_err(|e| ChaosError::Config(format!("profile replay: {e}")))?;
    #[cfg(feature = "bug-hooks")]
    if cfg.greedy_reroute_bug {
        rm.mesh_mut().enable_greedy_reroute_bug();
    }
    rm.mesh_mut().attach_flight_recorder();
    let n = u64::from(cfg.width) * u64::from(cfg.height);
    let mut rng = SplitMix(seed ^ 0x6368_616f_735f_7278);
    for i in 0..cfg.transfers {
        let src = rng.next() % n;
        let dst = (src + 1 + rng.next() % (n - 1)) % n;
        let flits = 1 + (rng.next() % 4) as u32;
        let class = if i % 2 == 0 {
            PacketClass::Request
        } else {
            PacketClass::Reply
        };
        if rm
            .submit_checked(
                NodeId::new(src as u32),
                NodeId::new(dst as u32),
                flits,
                class,
            )
            .is_err()
        {
            break;
        }
    }
    rm.run_until_quiescent(cfg.soak_cycle_budget);
    let cycles = rm.mesh().cycle();
    if let Some(rec) = rm.mesh_mut().flight_recorder_mut() {
        for v in violations {
            rec.note(
                gnoc_core::telemetry::TraceEvent::new(cycles, "chaos", "oracle_violation")
                    .with("oracle", v.oracle.name())
                    .with("seed", v.seed)
                    .with("detail", v.detail.clone()),
            );
        }
    }
    let rec = rm
        .mesh_mut()
        .take_flight_recorder()
        .expect("recorder attached above");
    let report = gnoc_core::analysis::profile::ProfileReport::from_recorder(
        &rec,
        cfg.width as usize,
        cfg.height as usize,
        cycles,
        5,
    );
    std::fs::write(path, report.to_json_pretty()).map_err(|e| ChaosError::Io(e.to_string()))?;
    let mut trace_name = path.file_name().unwrap_or_default().to_os_string();
    trace_name.push(".trace.json");
    let trace_path = path.with_file_name(trace_name);
    std::fs::write(&trace_path, rec.chrome_trace()).map_err(|e| ChaosError::Io(e.to_string()))?;
    Ok(TraceWindow {
        profile: path.display().to_string(),
        start: 0,
        end: cycles,
    })
}

/// Fabric counterpart of [`write_profile`]: replays `seed`'s fabric soak
/// with a flight recorder attached to the fabric layer (die legs appear as
/// source wait and final-hop residency; crossings are charged to the
/// `fabric` stall class). The profile's router axis is the fabric node id —
/// devices first, then the switch when the topology has one.
fn write_fabric_profile(
    cfg: &ChaosConfig,
    seed: u64,
    plan: &FaultPlan,
    violations: &[Violation],
    path: &Path,
) -> Result<TraceWindow, ChaosError> {
    let fc = fabric_config(cfg);
    let nodes = fc.topology.node_count(fc.devices) as usize;
    let mut sim = FabricSim::with_faults(fc, plan)
        .map_err(|e| ChaosError::Config(format!("profile replay: {e}")))?;
    #[cfg(feature = "bug-hooks")]
    if cfg.fabric_stuck_crossing_bug {
        sim.enable_stuck_crossing_bug();
    }
    sim.attach_flight_recorder();
    let _ = submit_fabric_traffic(&mut sim, cfg, seed);
    sim.run_until_quiescent(cfg.soak_cycle_budget);
    let cycles = sim.cycle();
    let mut rec = sim.take_flight_recorder().expect("recorder attached above");
    for v in violations {
        rec.note(
            gnoc_core::telemetry::TraceEvent::new(cycles, "chaos", "oracle_violation")
                .with("oracle", v.oracle.name())
                .with("seed", v.seed)
                .with("detail", v.detail.clone()),
        );
    }
    let report =
        gnoc_core::analysis::profile::ProfileReport::from_recorder(&rec, nodes, 1, cycles, 5);
    std::fs::write(path, report.to_json_pretty()).map_err(|e| ChaosError::Io(e.to_string()))?;
    let mut trace_name = path.file_name().unwrap_or_default().to_os_string();
    trace_name.push(".trace.json");
    let trace_path = path.with_file_name(trace_name);
    std::fs::write(&trace_path, rec.chrome_trace()).map_err(|e| ChaosError::Io(e.to_string()))?;
    Ok(TraceWindow {
        profile: path.display().to_string(),
        start: 0,
        end: cycles,
    })
}

/// Everything one seed's iteration produces, computed worker-side (the
/// iteration itself, plus any ddmin shrinks — both deterministic per seed).
/// Reproducer paths are filled in later by the sequential fold.
struct SeedOutcome {
    seed: u64,
    outcome: IterationOutcome,
    records: Vec<ViolationRecord>,
}

/// The pure per-seed work of a chaos run: plan generation, the iteration,
/// and (when requested) shrinking each violation. Safe to run on any worker
/// because its result depends only on `(cfg, seed, num_slices, shrink)`.
fn process_seed(cfg: &ChaosConfig, seed: u64, num_slices: u32, shrink: bool) -> SeedOutcome {
    let plan = cfg.plan_for_seed(seed, num_slices);
    let run_device =
        cfg.device.is_some() && cfg.device_every > 0 && seed.is_multiple_of(cfg.device_every);
    let outcome = run_iteration(cfg, seed, &plan, run_device);
    let atoms_before = decompose(&plan, cfg.width, cfg.height).len();
    let records = outcome
        .violations
        .iter()
        .map(|v| {
            let mut rec = ViolationRecord {
                oracle: v.oracle,
                seed,
                detail: v.detail.clone(),
                plan: plan.clone(),
                shrunk: None,
                atoms_before,
                atoms_after: None,
                reproducer: None,
            };
            if shrink {
                let shrunk = shrink_violation(cfg, seed, &plan, v.oracle, run_device);
                rec.atoms_after = Some(decompose(&shrunk, cfg.width, cfg.height).len());
                rec.shrunk = Some(shrunk);
            }
            rec
        })
        .collect();
    SeedOutcome {
        seed,
        outcome,
        records,
    }
}

/// Writes a reproducer for `rec` into `dir`, returning the path.
fn write_reproducer(
    dir: &Path,
    cfg: &ChaosConfig,
    rec: &ViolationRecord,
    trace: Option<&TraceWindow>,
) -> Result<String, ChaosError> {
    std::fs::create_dir_all(dir).map_err(|e| ChaosError::Io(e.to_string()))?;
    let path = dir.join(format!("repro-{}-seed{}.json", rec.oracle.name(), rec.seed));
    let plan = rec.shrunk.clone().unwrap_or_else(|| rec.plan.clone());
    // Re-record the failing soak against the embedded plan so the artifact
    // replays against exactly what the reproducer ships.
    let traffic_trace = record_soak_trace(cfg, rec.seed, &plan);
    let repro = Reproducer {
        version: REPRODUCER_VERSION,
        oracle: rec.oracle,
        seed: rec.seed,
        detail: rec.detail.clone(),
        config: cfg.clone(),
        plan,
        command: format!("gnoc chaos replay --repro {}", path.display()),
        trace: trace.cloned(),
        traffic_trace,
    };
    repro.save(&path)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc_only() -> ChaosConfig {
        ChaosConfig {
            device: None,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn benign_iteration_passes_the_noc_oracles() {
        let cfg = noc_only();
        let plan = cfg.plan_for_seed(0, 0);
        let out = run_iteration(&cfg, 0, &plan, false);
        assert!(out.is_clean(), "violations: {:?}", out.violations);
        assert!(out.passes.contains(&OracleKind::Delivery));
        assert!(out.passes.contains(&OracleKind::Progress));
    }

    #[test]
    fn link_detection_scoring_has_teeth() {
        use gnoc_core::faults::{Direction, LinkFault};
        let mut plan = FaultPlan::default();
        plan.links.push(LinkFault {
            router: 7,
            dir: Direction::East,
            kind: LinkFaultKind::Dead,
            onset: 1_000,
        });

        // Perfect detection: found the dead link, promptly, nothing else.
        let good = vec![(7, Direction::East, 1_200)];
        assert!(score_link_detection(&plan, &good).is_empty());

        // Empty detected set → a miss naming the link.
        let miss = score_link_detection(&plan, &[]);
        assert_eq!(miss.len(), 1);
        assert!(
            miss[0].contains("miss") && miss[0].contains("7:east"),
            "{miss:?}"
        );

        // A healthy link in the detected set → a false positive.
        let fp = score_link_detection(
            &plan,
            &[(7, Direction::East, 1_200), (3, Direction::North, 500)],
        );
        assert_eq!(fp.len(), 1);
        assert!(fp[0].contains("false positive"), "{fp:?}");

        // Detection past the latency bound → slow detection.
        let slow = score_link_detection(
            &plan,
            &[(7, Direction::East, 1_000 + DETECTION_LATENCY_BOUND + 1)],
        );
        assert_eq!(slow.len(), 1);
        assert!(slow[0].contains("slow detection"), "{slow:?}");

        // With die-wide transient noise active, link false positives are
        // exempt (but misses still count).
        plan.transient.drop_prob = 0.001;
        assert!(score_link_detection(&plan, &fp_input(&plan)).is_empty());
    }

    fn fp_input(plan: &FaultPlan) -> Vec<(u32, gnoc_core::faults::Direction, u64)> {
        use gnoc_core::faults::Direction;
        let mut v = vec![(3, Direction::North, 500)];
        for l in &plan.links {
            v.push((l.router, l.dir, l.onset + 100));
        }
        v
    }

    #[test]
    fn slice_detection_scoring_has_teeth() {
        let plan = FaultPlan {
            disabled_slices: vec![4, 9],
            ..FaultPlan::default()
        };
        assert!(score_slice_detection(&plan, &[(4, 1), (9, 2)]).is_empty());
        let problems = score_slice_detection(&plan, &[(4, 1), (2, 1)]);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems
            .iter()
            .any(|p| p.contains("false positive") && p.contains("slice 2")));
        assert!(problems
            .iter()
            .any(|p| p.contains("miss") && p.contains("slice 9")));
        let slow = score_slice_detection(&plan, &[(4, 1), (9, SLICE_DETECTION_WINDOW_BOUND + 1)]);
        assert_eq!(slow.len(), 1);
        assert!(slow[0].contains("slow detection"), "{slow:?}");
    }

    #[test]
    fn detection_phase_passes_on_every_archetype_without_a_device() {
        let cfg = ChaosConfig {
            detection: true,
            ..noc_only()
        };
        for seed in 0..5 {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            assert!(
                out.is_clean(),
                "seed {seed} violations: {:?}",
                out.violations
            );
            assert!(out.passes.contains(&OracleKind::Detection));
        }
    }

    fn fabric_only(devices: u32, topology: &str) -> ChaosConfig {
        ChaosConfig {
            device: None,
            devices,
            topology: topology.to_string(),
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn replay_oracle_is_clean_on_noc_soaks() {
        let cfg = ChaosConfig {
            replay: true,
            ..noc_only()
        };
        for seed in 0..6 {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            assert!(
                out.violations
                    .iter()
                    .all(|v| v.oracle != OracleKind::Replay),
                "seed {seed}: {:?}",
                out.violations
            );
            assert!(
                out.passes.contains(&OracleKind::Replay),
                "seed {seed}: replay oracle did not run"
            );
        }
    }

    #[test]
    fn replay_oracle_is_clean_on_fabric_soaks() {
        let cfg = ChaosConfig {
            replay: true,
            device: None,
            devices: 4,
            topology: "ring".to_string(),
            ..ChaosConfig::default()
        };
        for seed in 0..4 {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            assert!(
                out.violations
                    .iter()
                    .all(|v| v.oracle != OracleKind::Replay),
                "seed {seed}: {:?}",
                out.violations
            );
            assert!(
                out.passes.contains(&OracleKind::Replay),
                "seed {seed}: replay oracle did not run"
            );
        }
    }

    #[test]
    fn reproducer_embedded_trace_round_trips_through_replay() {
        let cfg = noc_only();
        let plan = cfg.plan_for_seed(3, 0);
        let hex = record_soak_trace(&cfg, 3, &plan).expect("soak should record");
        let repro = Reproducer {
            version: REPRODUCER_VERSION,
            oracle: OracleKind::Delivery,
            seed: 3,
            detail: String::new(),
            config: cfg.clone(),
            plan: plan.clone(),
            command: String::new(),
            trace: None,
            traffic_trace: Some(hex.clone()),
        };
        let out = replay(&repro);
        assert!(
            out.passes.contains(&OracleKind::Replay),
            "embedded trace failed to verify: {:?}",
            out.violations
        );

        // The same trace against a different plan is refused, not replayed.
        let other_plan = cfg.plan_for_seed(4, 0);
        let err = verify_embedded_trace(&cfg, &other_plan, &hex)
            .expect_err("plan digest mismatch must be detected");
        assert!(err.contains("recorded against plan"), "{err}");
    }

    #[test]
    fn fabric_iterations_pass_every_archetype_on_every_topology() {
        for topology in ["ring", "line", "fully", "switch"] {
            let cfg = fabric_only(4, topology);
            for seed in 0..5 {
                let plan = cfg.plan_for_seed(seed, 0);
                let out = run_iteration(&cfg, seed, &plan, false);
                assert!(
                    out.is_clean(),
                    "{topology} seed {seed}: {:?}",
                    out.violations
                );
                assert!(out.passes.contains(&OracleKind::Delivery));
                assert!(out.passes.contains(&OracleKind::Progress));
                assert!(out.passes.contains(&OracleKind::Differential));
            }
        }
    }

    #[test]
    fn fabric_iterations_are_deterministic() {
        let cfg = fabric_only(3, "ring");
        for seed in 0..5 {
            let plan = cfg.plan_for_seed(seed, 0);
            let a = run_iteration(&cfg, seed, &plan, false);
            let b = run_iteration(&cfg, seed, &plan, false);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn fabric_detection_passes_every_archetype() {
        let cfg = ChaosConfig {
            detection: true,
            ..fabric_only(4, "ring")
        };
        for seed in 0..5 {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            assert!(out.is_clean(), "seed {seed}: {:?}", out.violations);
            assert!(out.passes.contains(&OracleKind::Detection));
        }
    }

    #[test]
    fn fabric_detection_scoring_has_teeth() {
        use gnoc_core::faults::{FabricLinkFault, LinkFaultKind};
        let cfg = fabric_only(4, "ring");
        let mut plan = FaultPlan::default();
        plan.fabric.links.push(FabricLinkFault {
            a: 1,
            b: 2,
            kind: LinkFaultKind::Dead,
            onset: 500,
        });

        // Perfect detection: found the dead link, promptly, nothing else.
        assert!(score_fabric_detection(&cfg, &plan, &[(1, 2, 900)]).is_empty());

        // Empty detected set → a miss naming the link.
        let miss = score_fabric_detection(&cfg, &plan, &[]);
        assert_eq!(miss.len(), 1);
        assert!(
            miss[0].contains("miss") && miss[0].contains("1<->2"),
            "{miss:?}"
        );

        // A healthy link in the detected set → a false positive.
        let fp = score_fabric_detection(&cfg, &plan, &[(1, 2, 900), (0, 1, 700)]);
        assert_eq!(fp.len(), 1);
        assert!(fp[0].contains("false positive"), "{fp:?}");

        // Detection past the latency bound → slow detection.
        let slow =
            score_fabric_detection(&cfg, &plan, &[(1, 2, 500 + DETECTION_LATENCY_BOUND + 1)]);
        assert_eq!(slow.len(), 1);
        assert!(slow[0].contains("slow detection"), "{slow:?}");

        // Once device 1 is lost, its links are exempt both ways: detecting
        // 0<->1 is legitimate, and missing the dead 1<->2 is tolerated
        // (stranded traffic produces no crossing drops there).
        plan.fabric.devices.push(gnoc_core::faults::DeviceFault {
            device: 1,
            onset: 0,
        });
        assert!(score_fabric_detection(&cfg, &plan, &[(0, 1, 700)]).is_empty());
        assert!(score_fabric_detection(&cfg, &plan, &[]).is_empty());
    }

    #[cfg(feature = "bug-hooks")]
    #[test]
    fn stuck_crossing_bug_is_caught_and_shrinks_to_the_culprit_link() {
        let cfg = ChaosConfig {
            fabric_stuck_crossing_bug: true,
            ..fabric_only(4, "ring")
        };
        // Archetype 2 makes one fabric link flaky. (A dead link would not
        // trigger the bug: fault-aware routing avoids it from onset, so
        // nothing ever drops there.) With the lost-wakeup bug armed, the
        // first transfer whose crossing drops hangs forever.
        let plan = cfg.plan_for_seed(2, 0);
        let out = run_iteration(&cfg, 2, &plan, false);
        let progress: Vec<_> = out
            .violations
            .iter()
            .filter(|v| v.oracle == OracleKind::Progress)
            .collect();
        assert!(!progress.is_empty(), "violations: {:?}", out.violations);
        let shrunk = shrink_violation(&cfg, 2, &plan, OracleKind::Progress, false);
        let atoms = decompose(&shrunk, cfg.width, cfg.height);
        assert!(
            atoms.len() <= 3,
            "shrunk reproducer still has {} atoms: {atoms:?}",
            atoms.len()
        );
        assert!(
            !shrunk.fabric.links.is_empty(),
            "the culprit fabric link must survive shrinking"
        );
    }

    #[test]
    fn iterations_are_deterministic() {
        let cfg = noc_only();
        for seed in [1, 2, 3, 4] {
            let plan = cfg.plan_for_seed(seed, 0);
            let a = run_iteration(&cfg, seed, &plan, false);
            let b = run_iteration(&cfg, seed, &plan, false);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn panics_are_caught_and_reported_not_propagated() {
        // An invalid mesh geometry cannot panic anymore (typed error), so
        // exercise the catch_unwind boundary directly.
        let out = catch_unwind(AssertUnwindSafe(|| {
            panic!("synthetic failure");
        }));
        assert!(out.is_err());
        let msg = panic_message(&*out.unwrap_err());
        assert!(msg.contains("synthetic failure"));
    }

    #[test]
    fn state_round_trips_and_rejects_bad_versions() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gnoc-chaos-state-{}.json", std::process::id()));
        let state = ChaosState {
            version: CHAOS_STATE_VERSION,
            pending: vec![5, 6],
            report: ChaosReport::new(noc_only()),
        };
        state.save(&path).unwrap();
        assert_eq!(ChaosState::load(&path).unwrap(), state);

        let bad = ChaosState {
            version: 99,
            ..state.clone()
        };
        bad.save(&path).unwrap();
        assert_eq!(
            ChaosState::load(&path).unwrap_err(),
            ChaosError::Version(99)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wall_budget_zero_salvages_partial_state_and_resumes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gnoc-chaos-resume-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = noc_only();
        let opts = ChaosOptions {
            seeds: vec![0, 1, 2],
            state_path: Some(path.clone()),
            wall_budget_ms: Some(0), // expires before the first iteration
            shrink: false,
            repro_dir: None,
            jobs: 1,
            profile: None,
        };
        let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
        assert!(!run.finished);
        assert_eq!(run.pending, vec![0, 1, 2]);

        // No budget now: but the state file does not exist yet (nothing
        // completed), so the fresh run processes everything and persists.
        let opts = ChaosOptions {
            wall_budget_ms: None,
            ..opts
        };
        let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
        assert!(run.finished);
        assert_eq!(run.report.completed_seeds, vec![0, 1, 2]);
        assert!(run.report.is_clean(), "{:?}", run.report.violations);

        // Resuming a finished state is a no-op that keeps the report.
        let resumed = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
        assert!(resumed.finished);
        assert_eq!(resumed.report.completed_seeds, vec![0, 1, 2]);

        // A different config must be rejected, not silently mixed in.
        let other = ChaosConfig {
            transfers: 8,
            ..noc_only()
        };
        assert_eq!(
            run_chaos(&other, &opts, &TelemetryHandle::disabled()).unwrap_err(),
            ChaosError::StateMismatch("config")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profiling_writes_artifacts_without_changing_the_report() {
        let dir = std::env::temp_dir();
        let profile = dir.join(format!("gnoc-chaos-profile-{}.json", std::process::id()));
        let trace = dir.join(format!(
            "gnoc-chaos-profile-{}.json.trace.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&profile);
        let _ = std::fs::remove_file(&trace);
        let cfg = noc_only();
        let bare = ChaosOptions {
            seeds: vec![0, 1],
            ..ChaosOptions::default()
        };
        let with_profile = ChaosOptions {
            profile: Some(profile.clone()),
            ..bare.clone()
        };
        let a = run_chaos(&cfg, &bare, &TelemetryHandle::disabled()).unwrap();
        let b = run_chaos(&cfg, &with_profile, &TelemetryHandle::disabled()).unwrap();
        // The recorder replays a seed on the side; the fuzzing results are
        // byte-for-byte those of an unprofiled run.
        assert_eq!(a, b);
        let report = std::fs::read_to_string(&profile).unwrap();
        assert!(report.trim_start().starts_with("{\n  \"schema\": 1"));
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(serde_json::from_str::<serde::Value>(&chrome).is_ok());
        let _ = std::fs::remove_file(&profile);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn chaos_metrics_flow_through_telemetry() {
        let cfg = noc_only();
        let telemetry = TelemetryHandle::enabled();
        let opts = ChaosOptions {
            seeds: vec![0, 1],
            ..ChaosOptions::default()
        };
        let run = run_chaos(&cfg, &opts, &telemetry).unwrap();
        assert!(run.report.is_clean());
        let registry = telemetry.snapshot_registry().unwrap();
        assert_eq!(registry.counter("chaos.seeds"), 2);
        assert_eq!(registry.counter("chaos.violations"), 0);
        assert_eq!(registry.counter("chaos.oracle.delivery.pass"), 2);
        assert_eq!(registry.counter("chaos.oracle.progress.pass"), 2);
    }
}
