//! Chaos harness: randomized fault-plan fuzzing with invariant oracles,
//! plan shrinking, and a panic audit.
//!
//! The rest of the workspace *models* a faulty GPU interconnect; this crate
//! tries to break it. A chaos run draws a deterministic
//! [`FaultPlan`](gnoc_core::FaultPlan) per
//! seed (dead-link storms, correlated regional failures, flaky-link bursts,
//! transient noise, disabled L2 slices), drives both the cycle-level
//! [`ReliableMesh`](gnoc_core::ReliableMesh) and the checkpointed latency
//! campaign through it, and checks five invariant oracles:
//!
//! 1. **delivery** — every submitted transfer is delivered exactly once or
//!    reported lost with a reason; the accounting always balances.
//! 2. **progress** — the network quiesces within a virtual-cycle budget and
//!    the deadlock watchdog never trips (up*/down* routing is
//!    deadlock-free, so a trip is a routing bug, not bad luck).
//! 3. **calibration** — on plans that leave the device untouched, campaign
//!    grand means stay inside the empirically calibrated per-preset band.
//! 4. **resume** — killing a campaign mid-soak and resuming from its
//!    checkpoint is bit-identical to the uninterrupted run.
//! 5. **differential** — a faulted campaign agrees with a golden (fault
//!    free) campaign on every untouched (SM, slice) pair.
//!
//! A sixth guard, **no-panic**, wraps every iteration in `catch_unwind`:
//! typed errors are the contract, a panic is always a violation.
//!
//! On violation the harness shrinks the failing plan with delta debugging
//! ([`ddmin`]) over semantic fault atoms and writes a [`Reproducer`] JSON
//! whose embedded command replays the exact failing iteration:
//!
//! ```text
//! gnoc chaos run --seeds 0..100            # soak
//! gnoc chaos replay --repro repro.json     # re-run one shrunk failure
//! ```
//!
//! Everything is deterministic in the seed; wall-clock only bounds *how
//! many* seeds run (interrupted runs salvage partial results through a
//! resumable state file).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod oracle;
mod runner;
mod shrink;

pub use config::{band_for_preset, calibration_safe, ChaosConfig};
pub use oracle::{OracleKind, Violation};
pub use runner::{
    replay, run_chaos, run_iteration, shrink_violation, ChaosOptions, ChaosReport, ChaosRun,
    ChaosState, IterationOutcome, Reproducer, ViolationRecord, CHAOS_STATE_VERSION,
    REPRODUCER_VERSION,
};
pub use shrink::{compose, ddmin, decompose, Atom};

/// Errors from the chaos harness machinery itself (I/O, bad configuration,
/// state-file mismatches) — never used for invariant violations, which are
/// data ([`Violation`]), not errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The chaos configuration is unusable; the message names the field.
    Config(String),
    /// Reading or writing a state/report/reproducer file failed.
    Io(String),
    /// A state or reproducer file is not valid JSON for its format.
    Parse(String),
    /// A state file was produced by a different configuration; the field
    /// that differs is named.
    StateMismatch(&'static str),
    /// A state or reproducer file has an unsupported format version.
    Version(u32),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid chaos config: {msg}"),
            Self::Io(e) => write!(f, "chaos state I/O failed: {e}"),
            Self::Parse(e) => write!(f, "chaos file parse failed: {e}"),
            Self::StateMismatch(field) => write!(
                f,
                "chaos state file was produced by a different configuration: {field}"
            ),
            Self::Version(v) => write!(f, "chaos file version {v} is not supported"),
        }
    }
}

impl std::error::Error for ChaosError {}
