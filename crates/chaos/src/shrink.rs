//! Delta-debugging (ddmin) shrinker over semantic fault atoms.
//!
//! A failing [`FaultPlan`] from the generator can hold dozens of faults;
//! the bug usually needs two or three. The shrinker decomposes a plan into
//! *atoms* — the smallest units that make sense to remove together (a dead
//! physical edge is one atom covering both directed entries; each flaky
//! link, stall, disabled slice, transient process, fabric link fault,
//! device loss, and the dead switch is its own atom) — and runs classic
//! delta debugging: test subsets, then complements,
//! doubling granularity until no smaller failing subset exists.
//!
//! Soundness: every subset of a valid generated plan is itself valid
//! (removing dead links cannot disconnect a mesh the full set left
//! connected, and re-enabling slices cannot violate the slice budget), so
//! candidates never need re-validation.

use gnoc_core::faults::{LinkFaultKind, TransientFaults};
use gnoc_core::{FabricFaults, FaultPlan};
use serde::{Deserialize, Serialize};

/// One removable unit of a fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// A group of `plan.links` indices removed together: the two directed
    /// entries of one dead physical edge, or a single flaky entry.
    Links(Vec<usize>),
    /// One `plan.routers` stall by index.
    Router(usize),
    /// The die-wide transient drop process.
    TransientDrop,
    /// The die-wide transient corruption process.
    TransientCorrupt,
    /// One disabled L2 slice by index into `plan.disabled_slices`.
    Slice(usize),
    /// The embedded floorsweep.
    Sweep,
    /// One faulted inter-device fabric link by index into
    /// `plan.fabric.links`.
    FabricLink(usize),
    /// The dead central switch.
    DeadSwitch,
    /// One whole-device loss by index into `plan.fabric.devices`.
    Device(usize),
}

/// Decomposes `plan` into atoms. `width`/`height` give the mesh geometry so
/// the two directed entries of a dead physical edge can be paired into one
/// atom (a lone directed dead entry stays its own atom).
pub fn decompose(plan: &FaultPlan, width: u32, height: u32) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut used = vec![false; plan.links.len()];
    for i in 0..plan.links.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let a = plan.links[i];
        let mut group = vec![i];
        if a.kind == LinkFaultKind::Dead {
            if let Some(n) = a.dir.neighbour(a.router, width, height) {
                let twin = a.dir.opposite();
                for (j, b) in plan.links.iter().enumerate() {
                    if !used[j] && b.router == n && b.dir == twin && b.kind == LinkFaultKind::Dead {
                        used[j] = true;
                        group.push(j);
                        break;
                    }
                }
            }
        }
        atoms.push(Atom::Links(group));
    }
    atoms.extend((0..plan.routers.len()).map(Atom::Router));
    if plan.transient.drop_prob > 0.0 {
        atoms.push(Atom::TransientDrop);
    }
    if plan.transient.corrupt_prob > 0.0 {
        atoms.push(Atom::TransientCorrupt);
    }
    atoms.extend((0..plan.disabled_slices.len()).map(Atom::Slice));
    if plan.sweep.is_some() {
        atoms.push(Atom::Sweep);
    }
    atoms.extend((0..plan.fabric.links.len()).map(Atom::FabricLink));
    if plan.fabric.dead_switch.is_some() {
        atoms.push(Atom::DeadSwitch);
    }
    atoms.extend((0..plan.fabric.devices.len()).map(Atom::Device));
    atoms
}

/// Rebuilds a plan holding only `atoms` (indices resolve against `base`).
/// The seed carries over so probabilistic draws stay reproducible.
pub fn compose(base: &FaultPlan, atoms: &[Atom]) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: base.seed,
        sweep: None,
        disabled_slices: Vec::new(),
        links: Vec::new(),
        routers: Vec::new(),
        transient: TransientFaults {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            onset: base.transient.onset,
        },
        fabric: FabricFaults::default(),
    };
    for atom in atoms {
        match atom {
            Atom::Links(group) => plan.links.extend(group.iter().map(|&i| base.links[i])),
            Atom::Router(i) => plan.routers.push(base.routers[*i]),
            Atom::TransientDrop => plan.transient.drop_prob = base.transient.drop_prob,
            Atom::TransientCorrupt => plan.transient.corrupt_prob = base.transient.corrupt_prob,
            Atom::Slice(i) => plan.disabled_slices.push(base.disabled_slices[*i]),
            Atom::Sweep => plan.sweep = base.sweep.clone(),
            Atom::FabricLink(i) => plan.fabric.links.push(base.fabric.links[*i]),
            Atom::DeadSwitch => plan.fabric.dead_switch = base.fabric.dead_switch,
            Atom::Device(i) => plan.fabric.devices.push(base.fabric.devices[*i]),
        }
    }
    plan
}

/// Minimizes a failing plan with delta debugging: `fails` must return
/// `true` for `base` (the caller observed the violation) and is re-invoked
/// on candidate sub-plans; the smallest failing subset found within
/// `max_tests` predicate evaluations is returned.
///
/// The result is guaranteed to still satisfy `fails` (the empty plan is
/// returned only when the failure is fault-independent — a harness or
/// traffic bug rather than a fault-handling one).
pub fn ddmin(
    base: &FaultPlan,
    width: u32,
    height: u32,
    mut fails: impl FnMut(&FaultPlan) -> bool,
    max_tests: usize,
) -> FaultPlan {
    let mut tests = 0usize;
    let mut check = |plan: &FaultPlan, tests: &mut usize| -> Option<bool> {
        if *tests >= max_tests {
            return None;
        }
        *tests += 1;
        Some(fails(plan))
    };

    // A fault-independent failure shrinks straight to the empty plan.
    let empty = compose(base, &[]);
    if check(&empty, &mut tests) == Some(true) {
        return empty;
    }

    let mut atoms = decompose(base, width, height);
    let mut n = 2usize;
    'outer: while atoms.len() >= 2 && tests < max_tests {
        let chunk = atoms.len().div_ceil(n);
        // Subsets first: a single chunk that still fails.
        let mut start = 0;
        while start < atoms.len() {
            let subset = &atoms[start..(start + chunk).min(atoms.len())];
            match check(&compose(base, subset), &mut tests) {
                Some(true) => {
                    atoms = subset.to_vec();
                    n = 2;
                    continue 'outer;
                }
                Some(false) => {}
                None => break 'outer,
            }
            start += chunk;
        }
        // Complements: everything but one chunk (redundant at n == 2).
        if n > 2 {
            let mut start = 0;
            while start < atoms.len() {
                let end = (start + chunk).min(atoms.len());
                let mut complement = atoms.clone();
                complement.drain(start..end);
                match check(&compose(base, &complement), &mut tests) {
                    Some(true) => {
                        atoms = complement;
                        n = (n - 1).max(2);
                        continue 'outer;
                    }
                    Some(false) => {}
                    None => break 'outer,
                }
                start += chunk;
            }
        }
        if n >= atoms.len() {
            break;
        }
        n = (n * 2).min(atoms.len());
    }
    compose(base, &atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_core::FaultGenConfig;

    fn storm_plan() -> FaultPlan {
        let mut g = FaultGenConfig::benign(7, 6, 6);
        g.dead_link_fraction = 0.15;
        g.flaky_links = 3;
        g.flaky_drop_prob = 0.2;
        g.stalled_routers = 2;
        g.stall_duration = 100;
        g.transient_drop_prob = 0.001;
        g.transient_corrupt_prob = 0.001;
        FaultPlan::generate(&g)
    }

    #[test]
    fn decompose_pairs_dead_edges_and_compose_round_trips() {
        let plan = storm_plan();
        let atoms = decompose(&plan, 6, 6);
        let dead_entries = plan
            .links
            .iter()
            .filter(|l| l.kind == LinkFaultKind::Dead)
            .count();
        assert_eq!(dead_entries % 2, 0, "generator emits dead links in pairs");
        let dead_atoms = atoms
            .iter()
            .filter(|a| matches!(a, Atom::Links(g) if g.len() == 2))
            .count();
        assert_eq!(dead_atoms, dead_entries / 2);

        // Composing all atoms reproduces the full fault set (order aside).
        let full = compose(&plan, &atoms);
        assert_eq!(full.links.len(), plan.links.len());
        assert_eq!(full.routers, plan.routers);
        assert_eq!(full.transient, plan.transient);
        assert_eq!(full.seed, plan.seed);
        for l in &plan.links {
            assert!(full.links.contains(l));
        }
    }

    #[test]
    fn composed_subsets_stay_valid() {
        let plan = storm_plan();
        let atoms = decompose(&plan, 6, 6);
        // Every prefix subset must validate against the mesh without
        // re-checking: subsets of a connected-safe dead set stay connected.
        for k in 0..=atoms.len() {
            let sub = compose(&plan, &atoms[..k]);
            sub.validate_for_mesh(6, 6).unwrap();
        }
    }

    #[test]
    fn ddmin_finds_a_single_culprit_atom() {
        let plan = storm_plan();
        let atoms = decompose(&plan, 6, 6);
        // Pick one stall as the "bug trigger": a candidate fails iff it
        // still stalls that router.
        let culprit = plan.routers[1].router;
        let fails = |candidate: &FaultPlan| candidate.routers.iter().any(|r| r.router == culprit);
        let shrunk = ddmin(&plan, 6, 6, fails, 512);
        assert_eq!(shrunk.routers.len(), 1);
        assert_eq!(shrunk.routers[0].router, culprit);
        assert!(shrunk.links.is_empty(), "unrelated faults must be dropped");
        assert!(!shrunk.transient.is_active());
        assert!(atoms.len() > 3, "the original plan was non-trivial");
    }

    #[test]
    fn ddmin_finds_a_two_atom_conjunction() {
        let plan = storm_plan();
        // Fail only when BOTH transient processes survive — forces ddmin
        // through its complement phase.
        let fails = |c: &FaultPlan| c.transient.drop_prob > 0.0 && c.transient.corrupt_prob > 0.0;
        let shrunk = ddmin(&plan, 6, 6, fails, 512);
        let atoms = decompose(&shrunk, 6, 6);
        assert_eq!(
            atoms.len(),
            2,
            "shrunk to exactly the conjunction: {atoms:?}"
        );
        assert!(fails(&shrunk));
    }

    #[test]
    fn fault_independent_failures_shrink_to_the_empty_plan() {
        let plan = storm_plan();
        let shrunk = ddmin(&plan, 6, 6, |_| true, 512);
        assert!(shrunk.is_benign());
    }
}
