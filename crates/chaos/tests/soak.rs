//! Chaos soak smoke test: a bounded, fully deterministic fuzz run that must
//! stay green, plus the bug-hook demonstration that the oracles actually
//! catch reintroduced bugs.

use gnoc_chaos::{run_chaos, ChaosConfig, ChaosOptions, OracleKind};
use gnoc_core::telemetry::TelemetryHandle;

/// 25 seeded iterations over the default small mesh: every archetype
/// (benign, dead-only, dead+flaky+stall, storm+region, burst+transients+
/// slices) runs five times, the v100 campaign oracles run on every fourth
/// seed, and the run must finish with zero violations and zero panics.
#[test]
fn soak_25_seeds_is_clean() {
    let cfg = ChaosConfig::default();
    let opts = ChaosOptions {
        seeds: (0..25).collect(),
        shrink: true,
        ..ChaosOptions::default()
    };
    let telemetry = TelemetryHandle::enabled();
    let run = run_chaos(&cfg, &opts, &telemetry).unwrap();
    assert!(run.finished);
    assert_eq!(run.report.completed_seeds.len(), 25);
    assert!(
        run.report.is_clean(),
        "soak must be violation-free, got: {:#?}",
        run.report.violations
    );
    assert_eq!(run.report.panics, 0);

    // Every invariant oracle (panic guard aside) actually ran.
    let passes = &run.report.oracle_passes;
    for kind in [
        OracleKind::Delivery,
        OracleKind::Progress,
        OracleKind::Calibration,
        OracleKind::Resume,
        OracleKind::Differential,
    ] {
        assert!(
            passes.get(kind.name()).copied().unwrap_or(0) > 0,
            "oracle {kind} never ran: {passes:?}"
        );
    }
    // NoC oracles run on every seed.
    assert_eq!(passes["delivery"], 25);
    assert_eq!(passes["progress"], 25);

    // Telemetry saw the same story.
    let registry = telemetry.snapshot_registry().unwrap();
    assert_eq!(registry.counter("chaos.seeds"), 25);
    assert_eq!(registry.counter("chaos.violations"), 0);
    assert_eq!(registry.counter("chaos.panics"), 0);
}

/// The same soak twice is bit-identical (determinism end to end).
#[test]
fn soak_is_deterministic() {
    let cfg = ChaosConfig {
        device: None, // NoC-only keeps this cheap; device determinism is
        // covered by the resume oracle itself.
        ..ChaosConfig::default()
    };
    let opts = ChaosOptions {
        seeds: (0..10).collect(),
        ..ChaosOptions::default()
    };
    let a = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
    let b = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
    assert_eq!(a.report, b.report);
}

/// The jobs knob is a wall-clock knob, never a result knob: the same soak at
/// `jobs ∈ {1, 2, 7}` produces a bit-identical report, including violation
/// records and shrinks, because each iteration is a pure function of
/// (config, seed) and the fold into the report runs in seed order.
#[test]
fn soak_report_is_bit_identical_across_job_counts() {
    let cfg = ChaosConfig {
        device: None,
        ..ChaosConfig::default()
    };
    let base = ChaosOptions {
        seeds: (0..12).collect(),
        shrink: true,
        ..ChaosOptions::default()
    };
    let reference = run_chaos(&cfg, &base, &TelemetryHandle::disabled())
        .unwrap()
        .report;
    for jobs in [1usize, 2, 7] {
        let opts = ChaosOptions {
            jobs,
            ..base.clone()
        };
        let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
        assert!(run.finished);
        assert_eq!(run.report, reference, "jobs={jobs}");
    }
}

/// Parallel soaks keep the resume contract: a state file written by a
/// `jobs=4` run that stopped on budget resumes (serially or in parallel) to
/// the same final report as an uninterrupted serial run.
#[test]
fn parallel_soak_state_resumes_bit_identically() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("gnoc-chaos-parresume-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ChaosConfig {
        device: None,
        ..ChaosConfig::default()
    };

    let serial = run_chaos(
        &cfg,
        &ChaosOptions {
            seeds: (0..10).collect(),
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap()
    .report;

    // Full parallel run persisting state after every folded iteration.
    let parallel = run_chaos(
        &cfg,
        &ChaosOptions {
            seeds: (0..10).collect(),
            state_path: Some(path.clone()),
            jobs: 4,
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap();
    assert!(parallel.finished);
    assert_eq!(parallel.report, serial);

    // Resuming the finished parallel state (even serially) is a no-op that
    // keeps the identical report: the on-disk format carries no trace of
    // the worker count that produced it.
    let resumed = run_chaos(
        &cfg,
        &ChaosOptions {
            seeds: (0..10).collect(),
            state_path: Some(path.clone()),
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap();
    assert!(resumed.finished);
    assert_eq!(resumed.report, serial);

    let _ = std::fs::remove_file(&path);
}

/// With the `bug-hooks` feature, arming the greedy-reroute bug makes route
/// recomputation ignore the up*/down* discipline; the progress oracle must
/// catch the resulting deadlock and ddmin must shrink the trigger to at
/// most three fault atoms.
#[cfg(feature = "bug-hooks")]
mod bug_hooks {
    use super::*;
    use gnoc_chaos::{decompose, replay, run_iteration, shrink_violation, Reproducer};

    /// Seeds whose fault plans trigger the reintroduced deadlock under
    /// `buggy_cfg`, found by `scan_for_bug_seeds`. Both are dead+flaky+
    /// stall plans whose faults onset mid-traffic: the greedy reroute only
    /// wedges when route tables change while packets hold buffers.
    const BUG_SEEDS: &[u64] = &[2, 7];

    fn buggy_cfg() -> ChaosConfig {
        // Heavy sustained load on the historical 6x6 geometry: the greedy
        // reroute only wedges when route tables change under traffic. A
        // tight (but still conservative: healthy delivery gaps are tens of
        // cycles) watchdog keeps deadlocked iterations cheap.
        ChaosConfig {
            width: 6,
            height: 6,
            transfers: 1200,
            soak_cycle_budget: 30_000,
            retry: gnoc_core::RetryConfig {
                watchdog_cycles: 5_000,
                ..gnoc_core::RetryConfig::default()
            },
            device: None,
            greedy_reroute_bug: true,
            ..ChaosConfig::default()
        }
    }

    /// Diagnostic scanner (run with `--ignored --nocapture` to re-derive
    /// `BUG_SEEDS` after routing changes).
    #[test]
    #[ignore = "diagnostic: prints which seeds trip the progress oracle"]
    fn scan_for_bug_seeds() {
        for transfers in [600u32, 900, 1200] {
            let cfg = ChaosConfig {
                transfers,
                ..buggy_cfg()
            };
            for seed in 0..15u64 {
                let plan = cfg.plan_for_seed(seed, 0);
                let out = run_iteration(&cfg, seed, &plan, false);
                let progress = out
                    .violations
                    .iter()
                    .any(|v| v.oracle == OracleKind::Progress);
                if !out.is_clean() {
                    println!(
                        "transfers {transfers} seed {seed}: progress={progress} violations={:?}",
                        out.violations.iter().map(|v| v.oracle).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_reroute_bug_is_caught_and_shrunk() {
        let cfg = buggy_cfg();
        let mut caught = 0;
        for &seed in BUG_SEEDS {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            let Some(v) = out
                .violations
                .iter()
                .find(|v| v.oracle == OracleKind::Progress)
            else {
                continue;
            };
            caught += 1;

            let shrunk = shrink_violation(&cfg, seed, &plan, OracleKind::Progress, false);
            let atoms = decompose(&shrunk, cfg.width, cfg.height).len();
            assert!(
                atoms <= 3,
                "seed {seed}: shrunk reproducer still has {atoms} atoms"
            );
            // The shrunk plan still reproduces via the replay entry point.
            let repro = Reproducer {
                version: gnoc_chaos::REPRODUCER_VERSION,
                oracle: OracleKind::Progress,
                seed,
                detail: v.detail.clone(),
                config: cfg.clone(),
                plan: shrunk,
                command: String::new(),
                trace: None,
                traffic_trace: None,
            };
            let replayed = replay(&repro);
            assert!(
                replayed
                    .violations
                    .iter()
                    .any(|v| v.oracle == OracleKind::Progress),
                "seed {seed}: shrunk plan no longer reproduces"
            );
        }
        assert!(
            caught >= 2,
            "the deadlock oracle caught the bug on only {caught} of {BUG_SEEDS:?}"
        );
    }

    /// The same seeds are clean without the bug armed: the oracle flags the
    /// bug, not the fault plans.
    #[test]
    fn bug_seeds_are_clean_without_the_bug() {
        let cfg = ChaosConfig {
            greedy_reroute_bug: false,
            ..buggy_cfg()
        };
        for &seed in BUG_SEEDS {
            let plan = cfg.plan_for_seed(seed, 0);
            let out = run_iteration(&cfg, seed, &plan, false);
            assert!(
                out.is_clean(),
                "seed {seed} violates even without the bug: {:?}",
                out.violations
            );
        }
    }
}
