//! Hidden-plan detection oracle tests: the plan is applied physically but
//! concealed from the health layer, which must infer faults from behavior.

use gnoc_chaos::{run_chaos, run_iteration, ChaosConfig, ChaosOptions, OracleKind};
use gnoc_core::telemetry::TelemetryHandle;

fn detect_cfg() -> ChaosConfig {
    ChaosConfig {
        detection: true,
        // Campaign oracles are exercised by the main soak; keeping them off
        // here isolates the detection oracle (the device still backs the
        // slice-detection half of the phase).
        device_every: 0,
        ..ChaosConfig::default()
    }
}

/// Seeds 0..10 cover every archetype twice: benign seeds must stay free of
/// false quarantines (precision 1.0), dead-link and dead-slice seeds must
/// all be detected (recall 1.0 on deterministic faults), and every
/// detection must land inside the latency bound — a violation on any of
/// the three surfaces as a `detection` oracle failure.
#[test]
fn detection_soak_10_seeds_is_clean() {
    let cfg = detect_cfg();
    let opts = ChaosOptions {
        seeds: (0..10).collect(),
        ..ChaosOptions::default()
    };
    let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
    assert!(run.finished);
    assert!(
        run.report.is_clean(),
        "hidden-plan detection must be violation-free, got: {:#?}",
        run.report.violations
    );
    // The detection oracle actually ran on every seed.
    assert_eq!(run.report.oracle_passes["detection"], 10);
}

/// The slice half of the phase really runs: the burst+slices archetype
/// (seed 4) disables two v100 L2 slices, and the latent-fault device run
/// must find exactly those and pass the oracle.
#[test]
fn dead_slice_archetype_passes_detection_with_a_device() {
    let cfg = detect_cfg();
    let num_slices = gnoc_core::device_for_preset("v100", 0, None)
        .unwrap()
        .hierarchy()
        .num_slices() as u32;
    let plan = cfg.plan_for_seed(4, num_slices);
    assert_eq!(plan.disabled_slices.len(), 2, "archetype precondition");
    let out = run_iteration(&cfg, 4, &plan, false);
    assert!(
        out.is_clean(),
        "slice detection violations: {:?}",
        out.violations
    );
    assert!(out.passes.contains(&OracleKind::Detection));
}

/// The detection phase is a pure function of (config, seed): two runs of
/// the same seeds produce bit-identical reports, and the jobs knob never
/// changes the outcome.
#[test]
fn detection_is_deterministic_and_jobs_invariant() {
    let cfg = detect_cfg();
    let base = ChaosOptions {
        seeds: (0..5).collect(),
        ..ChaosOptions::default()
    };
    let reference = run_chaos(&cfg, &base, &TelemetryHandle::disabled())
        .unwrap()
        .report;
    let again = run_chaos(&cfg, &base, &TelemetryHandle::disabled())
        .unwrap()
        .report;
    assert_eq!(again, reference);
    for jobs in [2usize, 7] {
        let opts = ChaosOptions {
            jobs,
            ..base.clone()
        };
        let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).unwrap();
        assert_eq!(run.report, reference, "jobs={jobs}");
    }
}

/// Detection state files pin the `detection` flag: resuming a state file
/// written with detection on under a config with it off is rejected by the
/// config-equality check, while resuming with the original config is a
/// clean no-op on the identical report.
#[test]
fn detection_state_resumes_and_pins_the_flag() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "gnoc-chaos-detect-resume-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let cfg = detect_cfg();
    let seeds: Vec<u64> = (0..3).collect();

    let stateful = run_chaos(
        &cfg,
        &ChaosOptions {
            seeds: seeds.clone(),
            state_path: Some(path.clone()),
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap();
    assert!(stateful.finished);
    assert!(path.exists());

    // Toggling detection off must be rejected: the state file pins the
    // whole config, oracle set included.
    let toggled = ChaosConfig {
        detection: false,
        ..cfg.clone()
    };
    let err = run_chaos(
        &toggled,
        &ChaosOptions {
            seeds: seeds.clone(),
            state_path: Some(path.clone()),
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("config"), "{err}");

    // Resuming with the original config keeps the identical report.
    let resumed = run_chaos(
        &cfg,
        &ChaosOptions {
            seeds,
            state_path: Some(path.clone()),
            ..ChaosOptions::default()
        },
        &TelemetryHandle::disabled(),
    )
    .unwrap();
    assert!(resumed.finished);
    assert_eq!(resumed.report, stateful.report);

    let _ = std::fs::remove_file(&path);
}
