//! Dependency-free SVG rendering of the toolkit's standard chart shapes:
//! line/scatter series, bar charts and matrix heatmaps.
//!
//! The figure-regeneration binaries can emit these next to their textual
//! output so the reproduced figures can be compared with the paper's plots
//! visually. Only a small, safe subset of SVG is generated; all text is
//! XML-escaped.

use std::fmt::Write as _;

/// Canvas margins around the plot area, px.
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// A named data series for [`line_chart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, in data coordinates.
    pub points: Vec<(f64, f64)>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Series colours (colour-blind-safe-ish defaults).
const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

struct Frame {
    width: f64,
    height: f64,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Frame {
    fn x(&self, v: f64) -> f64 {
        MARGIN_L + (v - self.x0) / (self.x1 - self.x0) * (self.width - MARGIN_L - MARGIN_R)
    }

    fn y(&self, v: f64) -> f64 {
        self.height
            - MARGIN_B
            - (v - self.y0) / (self.y1 - self.y0) * (self.height - MARGIN_T - MARGIN_B)
    }
}

fn open_svg(out: &mut String, width: f64, height: f64, title: &str) {
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        out,
        r#"<text x="{}" y="20" font-size="14" font-weight="bold">{}</text>"#,
        MARGIN_L,
        esc(title)
    );
}

fn axes(out: &mut String, f: &Frame, x_label: &str, y_label: &str) {
    let (px0, px1) = (MARGIN_L, f.width - MARGIN_R);
    let (py0, py1) = (f.height - MARGIN_B, MARGIN_T);
    let _ = write!(
        out,
        r##"<line x1="{px0}" y1="{py0}" x2="{px1}" y2="{py0}" stroke="#333"/><line x1="{px0}" y1="{py0}" x2="{px0}" y2="{py1}" stroke="#333"/>"##
    );
    // Min/max tick labels on both axes.
    let _ = write!(
        out,
        r#"<text x="{px0}" y="{}" text-anchor="middle">{:.3}</text><text x="{px1}" y="{}" text-anchor="middle">{:.3}</text>"#,
        py0 + 16.0,
        f.x0,
        py0 + 16.0,
        f.x1
    );
    let _ = write!(
        out,
        r#"<text x="{}" y="{py0}" text-anchor="end">{:.1}</text><text x="{}" y="{py1}" text-anchor="end">{:.1}</text>"#,
        px0 - 6.0,
        f.y0,
        px0 - 6.0,
        f.y1
    );
    let _ = write!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (px0 + px1) / 2.0,
        f.height - 12.0,
        esc(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        (py0 + py1) / 2.0,
        (py0 + py1) / 2.0,
        esc(y_label)
    );
}

/// Renders one or more line series with markers into an SVG document string.
///
/// # Panics
///
/// Panics if every series is empty.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: u32,
    height: u32,
) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    assert!(!all.is_empty(), "line chart needs at least one point");
    let x0 = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let mut x1 = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y0 = all
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let mut y1 = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if x1 == x0 {
        x1 = x0 + 1.0;
    }
    if y1 == y0 {
        y1 = y0 + 1.0;
    }
    let f = Frame {
        width: f64::from(width),
        height: f64::from(height),
        x0,
        x1,
        y0,
        y1,
    };
    let mut out = String::new();
    open_svg(&mut out, f.width, f.height, title);
    axes(&mut out, &f, x_label, y_label);
    for (si, s) in series.iter().enumerate() {
        let colour = PALETTE[si % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                format!(
                    "{}{:.1},{:.1}",
                    if i == 0 { "M" } else { "L" },
                    f.x(x),
                    f.y(y)
                )
            })
            .collect();
        let _ = write!(
            out,
            r#"<path d="{}" fill="none" stroke="{colour}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = write!(
                out,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{colour}"/>"#,
                f.x(x),
                f.y(y)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 16.0 * si as f64;
        let _ = write!(
            out,
            r#"<rect x="{}" y="{}" width="10" height="10" fill="{colour}"/><text x="{}" y="{}">{}</text>"#,
            f.width - 150.0,
            ly,
            f.width - 135.0,
            ly + 9.0,
            esc(&s.name)
        );
    }
    out.push_str("</svg>");
    out
}

/// Renders a bar chart (one bar per `(label, value)` pair).
///
/// # Panics
///
/// Panics if `bars` is empty.
pub fn bar_chart(
    title: &str,
    y_label: &str,
    bars: &[(String, f64)],
    width: u32,
    height: u32,
) -> String {
    assert!(!bars.is_empty(), "bar chart needs at least one bar");
    let y1 = bars.iter().map(|b| b.1).fold(0.0f64, f64::max).max(1e-12);
    let f = Frame {
        width: f64::from(width),
        height: f64::from(height),
        x0: 0.0,
        x1: bars.len() as f64,
        y0: 0.0,
        y1,
    };
    let mut out = String::new();
    open_svg(&mut out, f.width, f.height, title);
    axes(&mut out, &f, "", y_label);
    let slot = (f.width - MARGIN_L - MARGIN_R) / bars.len() as f64;
    for (i, (label, v)) in bars.iter().enumerate() {
        let x = MARGIN_L + slot * i as f64 + slot * 0.15;
        let y = f.y(*v);
        let h = (f.height - MARGIN_B) - y;
        let _ = write!(
            out,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"/>"#,
            slot * 0.7,
            PALETTE[0]
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="10">{}</text>"#,
            x + slot * 0.35,
            f.height - MARGIN_B + 14.0,
            esc(label)
        );
    }
    out.push_str("</svg>");
    out
}

/// Renders a matrix heatmap (row-major) with a blue→red diverging ramp over
/// `[lo, hi]`.
///
/// # Panics
///
/// Panics if the matrix is empty or ragged, or `hi <= lo`.
pub fn heatmap(
    title: &str,
    matrix: &[Vec<f64>],
    lo: f64,
    hi: f64,
    width: u32,
    height: u32,
) -> String {
    assert!(!matrix.is_empty(), "heatmap needs data");
    assert!(hi > lo, "heatmap range must be non-empty");
    let cols = matrix[0].len();
    let mut out = String::new();
    let (w, h) = (f64::from(width), f64::from(height));
    open_svg(&mut out, w, h, title);
    let cell_w = (w - MARGIN_L - MARGIN_R) / cols as f64;
    let cell_h = (h - MARGIN_T - MARGIN_B) / matrix.len() as f64;
    for (r, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), cols, "ragged heatmap row {r}");
        for (c, &v) in row.iter().enumerate() {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            // Blue (low) → white (mid) → red (high).
            let (red, green, blue) = if t < 0.5 {
                let u = t * 2.0;
                (
                    (255.0 * u) as u8 + ((1.0 - u) * 40.0) as u8,
                    (255.0 * u) as u8 + ((1.0 - u) * 80.0) as u8,
                    255,
                )
            } else {
                let u = (t - 0.5) * 2.0;
                (255, (255.0 * (1.0 - u)) as u8, (255.0 * (1.0 - u)) as u8)
            };
            let _ = write!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.2}" height="{:.2}" fill="rgb({red},{green},{blue})"/>"#,
                MARGIN_L + cell_w * c as f64,
                MARGIN_T + cell_h * r as f64,
                cell_w + 0.5,
                cell_h + 0.5,
            );
        }
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_is_wellformed() {
        let svg = line_chart(
            "t",
            "x",
            "y",
            &[Series {
                name: "a<b>".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            }],
            640,
            480,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("a&lt;b&gt;"), "legend must be escaped");
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn bar_chart_draws_one_rect_per_bar() {
        let svg = bar_chart(
            "bars",
            "GB/s",
            &[("a".into(), 1.0), ("b".into(), 2.0), ("c".into(), 0.5)],
            640,
            480,
        );
        // 3 bars + 1 legend-free: count bar rects only (legend uses rect too
        // in line_chart, not here).
        assert_eq!(svg.matches("<rect").count(), 3);
    }

    #[test]
    fn heatmap_draws_every_cell() {
        let m = vec![vec![0.0, 0.5], vec![1.0, -1.0]];
        let svg = heatmap("h", &m, -1.0, 1.0, 320, 240);
        assert_eq!(svg.matches("<rect").count(), 4);
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let svg = line_chart(
            "flat",
            "x",
            "y",
            &[Series {
                name: "c".into(),
                points: vec![(1.0, 5.0), (1.0, 5.0)],
            }],
            320,
            240,
        );
        assert!(svg.contains("</svg>"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_chart_rejected() {
        let _ = line_chart("t", "x", "y", &[], 100, 100);
    }
}
