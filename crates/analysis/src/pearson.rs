//! Pearson correlation (paper Eq. 1) and correlation matrices.
//!
//! The paper uses Pearson correlation between latency profiles to recover
//! physical placement (Observation #4, Fig. 6), and between timing traces and
//! key hypotheses in the AES attack (Fig. 18).

/// Pearson correlation coefficient of two equal-length sample vectors.
///
/// Returns 0.0 if either vector has zero variance (the correlation is
/// undefined there; 0 is the conventional "no information" answer for the
/// attack and clustering use cases).
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length vectors");
    assert!(!x.is_empty(), "pearson of empty vectors");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Symmetric Pearson-correlation matrix between the rows of `profiles`.
///
/// Row *i* of the result holds `pearson(profiles[i], profiles[j])` for every
/// *j*; the diagonal is 1 (or 0 for zero-variance rows). This is the Fig. 6
/// heatmap computation.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn correlation_matrix(profiles: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = profiles.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let r = pearson(&profiles[i], &profiles[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Parallel [`correlation_matrix`]: upper-triangle rows are computed across
/// the pool's workers, then mirrored. Bit-identical to the serial version for
/// any worker count because each `(i, j)` entry is an independent pure
/// function of the two input rows — no accumulation order changes.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn correlation_matrix_par(profiles: &[Vec<f64>], pool: &gnoc_par::WorkerPool) -> Vec<Vec<f64>> {
    let n = profiles.len();
    let rows: Vec<usize> = (0..n).collect();
    // Each task computes one upper-triangle row `i`: entries for j in i..n.
    let upper: Vec<Vec<f64>> = pool.par_map(&rows, |&i| {
        (i..n)
            .map(|j| pearson(&profiles[i], &profiles[j]))
            .collect()
    });
    let mut m = vec![vec![0.0; n]; n];
    for (i, tail) in upper.into_iter().enumerate() {
        for (off, r) in tail.into_iter().enumerate() {
            let j = i + off;
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Spearman rank correlation: Pearson correlation of the ranks, robust to
/// monotone nonlinearity and outliers. Ties receive their average rank.
///
/// # Panics
///
/// Panics if the vectors differ in length or are empty.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite samples"));
        let mut out = vec![0.0; v.len()];
        let mut i = 0;
        while i < idx.len() {
            // Group ties and assign the average rank (1-based).
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_correlate_perfectly() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_anti_correlate() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_transforms_preserve_correlation() {
        let x = vec![1.0, 5.0, 2.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_yields_zero() {
        let x = vec![2.0, 2.0, 2.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn uncorrelated_vectors_near_zero() {
        let x = vec![1.0, 2.0, 1.0, 2.0];
        let y = vec![1.0, 1.0, 2.0, 2.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0],
        ];
        let m = correlation_matrix(&rows);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..17).map(|j| ((i * 31 + j * 7) % 13) as f64).collect())
            .collect();
        let serial = correlation_matrix(&rows);
        for jobs in [1, 2, 7] {
            let pool = gnoc_par::WorkerPool::new(jobs);
            assert_eq!(correlation_matrix_par(&rows, &pool), serial);
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_are_rejected() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spearman_is_one_for_any_monotone_map() {
        let x: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let y_dec: Vec<f64> = x.iter().map(|v| -v * v).collect();
        assert!((spearman(&x, &y_dec) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        let x = vec![1.0, 1.0, 2.0];
        let y = vec![5.0, 5.0, 9.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_robust_to_an_outlier() {
        let x: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = x.clone();
        y[4] = 1e9; // huge outlier preserves rank order
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 0.95, "pearson should be distorted");
    }
}
