//! Stall-attribution analysis over a [`FlightRecorder`] recording.
//!
//! The recorder (in `gnoc-telemetry`) produces per-message lifecycle
//! records whose stall components sum exactly to end-to-end latency. This
//! module reduces a recording to the artifacts `gnoc profile` reports:
//!
//! - a whole-run stall-attribution breakdown (where did all the cycles go:
//!   source wait vs serialization vs contention vs backpressure vs router
//!   stalls vs queueing vs pure transit);
//! - the same breakdown per router and per directed link;
//! - per-router utilization heatmaps (ASCII via [`render_heatmap`], SVG via
//!   [`svg::heatmap`]);
//! - critical paths — the hop-by-hop chain of waits that bounded the
//!   latency of the slowest N messages.
//!
//! Everything here is a pure function of the recording, which is itself a
//! pure function of the simulated cycles, so every artifact is bit-identical
//! across runs and worker counts.

use crate::heatmap::render_heatmap;
use crate::svg;
use gnoc_telemetry::{FlightRecorder, HopRecord, MessageRecord, StallBreakdown, PORT_NAMES};
use serde::Value;

/// Schema version stamped into profile JSON artifacts.
pub const PROFILE_SCHEMA: u64 = 1;

/// Ports per router in `gnoc-noc`'s mesh (local + 4 directions), mirrored
/// here so the analysis layer needs no dependency on the simulator.
const PORTS: usize = PORT_NAMES.len();

fn port_name(port: u8) -> &'static str {
    PORT_NAMES.get(port as usize).copied().unwrap_or("port?")
}

/// Whole-run cycle attribution. Every delivered message's latency decomposes
/// exactly into these buckets, so their sum equals the sum of delivered
/// end-to-end latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleTotals {
    /// Cycles between message generation and network entry (source
    /// queueing; for retransmissions also timeout and backoff).
    pub source_wait: u64,
    /// Head-of-queue cycles lost to an output port still serializing
    /// earlier flits.
    pub serialization: u64,
    /// Head-of-queue cycles lost to arbitration.
    pub contention: u64,
    /// Head-of-queue cycles lost to missing downstream credit or disabled
    /// ejection.
    pub backpressure: u64,
    /// Head-of-queue cycles lost to stalled routers, dead links, or missing
    /// routes.
    pub router_stall: u64,
    /// Cycles attributed to the inter-device fabric (waiting for, crossing,
    /// and sitting behind fabric links); zero for single-die recordings.
    pub fabric_hop: u64,
    /// Cycles spent behind other messages in input queues.
    pub queued: u64,
    /// Pure link-crossing cycles (one per inter-router hop).
    pub transit: u64,
}

impl CycleTotals {
    /// Sum over all buckets — equals total delivered latency plus the
    /// attributed cycles of lost messages.
    pub fn total(&self) -> u64 {
        self.source_wait
            + self.serialization
            + self.contention
            + self.backpressure
            + self.router_stall
            + self.fabric_hop
            + self.queued
            + self.transit
    }

    fn add_message(&mut self, m: &MessageRecord) {
        self.source_wait += m.source_wait();
        self.transit += m.transit();
        let s = m.stalls();
        self.serialization += s.serialization;
        self.contention += s.contention;
        self.backpressure += s.backpressure;
        self.router_stall += s.router_stall;
        self.fabric_hop += s.fabric_hop;
        self.queued += s.queued;
    }
}

/// Stall cycles and traffic attributed to one router.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterProfile {
    /// Stall cycles charged in this router's input queues.
    pub stalls: StallBreakdown,
    /// Flits forwarded out of this router (all ports).
    pub flits: u64,
}

/// Stall cycles and traffic attributed to one directed link
/// (`router` × output port).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkProfile {
    /// Router index.
    pub router: u32,
    /// Output port ([`PORT_NAMES`] indexing; 0 = ejection to the local
    /// terminal).
    pub port: u8,
    /// Flits forwarded over this link.
    pub flits: u64,
    /// Stall cycles charged to messages while waiting for this link.
    pub stalls: StallBreakdown,
}

/// One of the slowest messages, with its full hop chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Mesh packet id.
    pub id: u64,
    /// Source terminal.
    pub src: u32,
    /// Destination terminal.
    pub dst: u32,
    /// Packet size in flits.
    pub flits: u32,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Source-side wait before injection.
    pub source_wait: u64,
    /// Pure link-crossing cycles.
    pub transit: u64,
    /// The hop chain (injection queue first).
    pub hops: Vec<HopRecord>,
}

/// The full profile of one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Mesh width the recording came from (heatmap layout).
    pub width: usize,
    /// Mesh height the recording came from (heatmap layout).
    pub height: usize,
    /// Cycles the recorded run simulated.
    pub cycles: u64,
    /// Finished messages in the recording.
    pub messages: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Messages lost.
    pub lost: usize,
    /// Sum of delivered end-to-end latencies.
    pub delivered_latency: u64,
    /// Whole-run cycle attribution over delivered messages.
    pub totals: CycleTotals,
    /// Per-router attribution, indexed by router id.
    pub routers: Vec<RouterProfile>,
    /// Per-link attribution, sorted by (router, port), zero links omitted.
    pub links: Vec<LinkProfile>,
    /// The slowest delivered messages, slowest first (ties break to the
    /// lower packet id).
    pub critical_paths: Vec<CriticalPath>,
}

impl ProfileReport {
    /// Reduces a recording to a profile. `width`/`height` give the mesh
    /// geometry (for heatmap layout), `cycles` the run length, and
    /// `slowest` how many critical paths to keep.
    ///
    /// # Panics
    ///
    /// Panics if a recorded router index falls outside `width * height`.
    pub fn from_recorder(
        rec: &FlightRecorder,
        width: usize,
        height: usize,
        cycles: u64,
        slowest: usize,
    ) -> Self {
        let n = width * height;
        let mut routers = vec![RouterProfile::default(); n];
        let mut links = vec![LinkProfile::default(); n * PORTS];
        let mut totals = CycleTotals::default();
        let (mut delivered, mut lost, mut delivered_latency) = (0usize, 0usize, 0u64);

        for m in rec.finished() {
            if m.delivered {
                delivered += 1;
                delivered_latency += m.latency();
                totals.add_message(m);
            } else {
                lost += 1;
            }
            for h in &m.hops {
                let r = h.router as usize;
                assert!(r < n, "router {r} outside the {width}x{height} mesh");
                let hop_stalls = StallBreakdown {
                    serialization: h.serialization,
                    contention: h.contention,
                    backpressure: h.backpressure,
                    router_stall: h.router_stall,
                    fabric_hop: h.fabric_hop,
                    queued: h.queued,
                };
                routers[r].stalls.add(&hop_stalls);
                if h.grant.is_some() {
                    routers[r].flits += u64::from(m.flits);
                    let link = &mut links[r * PORTS + h.out_port as usize];
                    link.flits += u64::from(m.flits);
                    link.stalls.add(&hop_stalls);
                }
            }
        }

        for (i, link) in links.iter_mut().enumerate() {
            link.router = (i / PORTS) as u32;
            link.port = (i % PORTS) as u8;
        }
        let links: Vec<LinkProfile> = links
            .into_iter()
            .filter(|l| l.flits > 0 || l.stalls.total() > 0)
            .collect();

        // Slowest delivered messages; deterministic order (latency desc,
        // then id asc).
        let mut by_latency: Vec<&MessageRecord> =
            rec.finished().iter().filter(|m| m.delivered).collect();
        by_latency.sort_by(|a, b| b.latency().cmp(&a.latency()).then(a.id.cmp(&b.id)));
        let critical_paths = by_latency
            .into_iter()
            .take(slowest)
            .map(|m| CriticalPath {
                id: m.id,
                src: m.src,
                dst: m.dst,
                flits: m.flits,
                latency: m.latency(),
                source_wait: m.source_wait(),
                transit: m.transit(),
                hops: m.hops.clone(),
            })
            .collect();

        ProfileReport {
            width,
            height,
            cycles,
            messages: rec.finished().len(),
            delivered,
            lost,
            delivered_latency,
            totals,
            routers,
            links,
            critical_paths,
        }
    }

    /// Per-router forwarded-flit matrix (`height` rows × `width` columns),
    /// normalized to flits/cycle — the utilization heatmap's data.
    pub fn utilization_matrix(&self) -> Vec<Vec<f64>> {
        let cycles = self.cycles.max(1) as f64;
        (0..self.height)
            .map(|y| {
                (0..self.width)
                    .map(|x| self.routers[y * self.width + x].flits as f64 / cycles)
                    .collect()
            })
            .collect()
    }

    /// Per-router stall-cycle matrix (`height` rows × `width` columns).
    pub fn stall_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.height)
            .map(|y| {
                (0..self.width)
                    .map(|x| self.routers[y * self.width + x].stalls.total() as f64)
                    .collect()
            })
            .collect()
    }

    /// ASCII utilization heatmap (routers laid out as the mesh).
    pub fn utilization_heatmap_ascii(&self) -> String {
        let m = self.utilization_matrix();
        let hi = m.iter().flatten().cloned().fold(0.0f64, f64::max).max(1e-9);
        render_heatmap(&m, 0.0, hi, 0)
    }

    /// SVG utilization heatmap (routers laid out as the mesh).
    pub fn utilization_heatmap_svg(&self) -> String {
        let m = self.utilization_matrix();
        let hi = m.iter().flatten().cloned().fold(0.0f64, f64::max).max(1e-9);
        svg::heatmap(
            "per-router utilization (flits/cycle)",
            &m,
            0.0,
            hi,
            640,
            480,
        )
    }

    /// The machine-readable profile, `"schema": 1` first. This is the file
    /// `gnoc profile --report` / `--profile` write; the schema validator in
    /// ci.sh checks the version field.
    pub fn to_json_pretty(&self) -> String {
        let breakdown = |s: &StallBreakdown| {
            Value::Object(vec![
                ("serialization".into(), Value::U64(s.serialization)),
                ("contention".into(), Value::U64(s.contention)),
                ("backpressure".into(), Value::U64(s.backpressure)),
                ("router_stall".into(), Value::U64(s.router_stall)),
                ("fabric_hop".into(), Value::U64(s.fabric_hop)),
                ("queued".into(), Value::U64(s.queued)),
            ])
        };
        let hop = |h: &HopRecord| {
            let mut fields = vec![
                ("router".into(), Value::U64(u64::from(h.router))),
                ("in_port".into(), Value::Str(port_name(h.in_port).into())),
                ("arrive".into(), Value::U64(h.arrive)),
            ];
            if let Some(g) = h.grant {
                fields.push(("out_port".into(), Value::Str(port_name(h.out_port).into())));
                fields.push(("grant".into(), Value::U64(g)));
            }
            fields.push((
                "stalls".into(),
                breakdown(&StallBreakdown {
                    serialization: h.serialization,
                    contention: h.contention,
                    backpressure: h.backpressure,
                    router_stall: h.router_stall,
                    fabric_hop: h.fabric_hop,
                    queued: h.queued,
                }),
            ));
            Value::Object(fields)
        };
        let value = Value::Object(vec![
            ("schema".into(), Value::U64(PROFILE_SCHEMA)),
            ("width".into(), Value::U64(self.width as u64)),
            ("height".into(), Value::U64(self.height as u64)),
            ("cycles".into(), Value::U64(self.cycles)),
            ("messages".into(), Value::U64(self.messages as u64)),
            ("delivered".into(), Value::U64(self.delivered as u64)),
            ("lost".into(), Value::U64(self.lost as u64)),
            (
                "delivered_latency".into(),
                Value::U64(self.delivered_latency),
            ),
            (
                "totals".into(),
                Value::Object(vec![
                    ("source_wait".into(), Value::U64(self.totals.source_wait)),
                    (
                        "serialization".into(),
                        Value::U64(self.totals.serialization),
                    ),
                    ("contention".into(), Value::U64(self.totals.contention)),
                    ("backpressure".into(), Value::U64(self.totals.backpressure)),
                    ("router_stall".into(), Value::U64(self.totals.router_stall)),
                    ("fabric_hop".into(), Value::U64(self.totals.fabric_hop)),
                    ("queued".into(), Value::U64(self.totals.queued)),
                    ("transit".into(), Value::U64(self.totals.transit)),
                    ("total".into(), Value::U64(self.totals.total())),
                ]),
            ),
            (
                "links".into(),
                Value::Array(
                    self.links
                        .iter()
                        .map(|l| {
                            Value::Object(vec![
                                ("router".into(), Value::U64(u64::from(l.router))),
                                ("port".into(), Value::Str(port_name(l.port).into())),
                                ("flits".into(), Value::U64(l.flits)),
                                ("stalls".into(), breakdown(&l.stalls)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "critical_paths".into(),
                Value::Array(
                    self.critical_paths
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("id".into(), Value::U64(p.id)),
                                ("src".into(), Value::U64(u64::from(p.src))),
                                ("dst".into(), Value::U64(u64::from(p.dst))),
                                ("flits".into(), Value::U64(u64::from(p.flits))),
                                ("latency".into(), Value::U64(p.latency)),
                                ("source_wait".into(), Value::U64(p.source_wait)),
                                ("transit".into(), Value::U64(p.transit)),
                                (
                                    "hops".into(),
                                    Value::Array(p.hops.iter().map(hop).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string_pretty(&value).expect("profile serializes")
    }

    /// The human-readable report `gnoc profile` prints: the attribution
    /// table (components sum to delivered latency), the hottest links, the
    /// utilization heatmap, and the critical paths.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} messages ({} delivered, {} lost) over {} cycles on a {}x{} mesh\n\n",
            self.messages, self.delivered, self.lost, self.cycles, self.width, self.height
        ));

        out.push_str("cycle attribution (delivered messages; components sum to latency)\n");
        let total = self.totals.total().max(1);
        let mut row = |name: &str, v: u64| {
            out.push_str(&format!(
                "  {name:<14} {v:>10} cycles  {:>5.1}%\n",
                100.0 * v as f64 / total as f64
            ));
        };
        row("source_wait", self.totals.source_wait);
        row("serialization", self.totals.serialization);
        row("contention", self.totals.contention);
        row("backpressure", self.totals.backpressure);
        row("router_stall", self.totals.router_stall);
        row("fabric_hop", self.totals.fabric_hop);
        row("queued", self.totals.queued);
        row("transit", self.totals.transit);
        out.push_str(&format!(
            "  {:<14} {:>10} cycles  (= sum of delivered latencies: {})\n\n",
            "total",
            self.totals.total(),
            self.delivered_latency
        ));

        let mut hottest: Vec<&LinkProfile> = self.links.iter().collect();
        hottest.sort_by(|a, b| {
            b.stalls
                .total()
                .cmp(&a.stalls.total())
                .then(a.router.cmp(&b.router))
                .then(a.port.cmp(&b.port))
        });
        out.push_str("hottest links (by attributed stall cycles)\n");
        for l in hottest.iter().take(8) {
            let s = &l.stalls;
            out.push_str(&format!(
                "  router {:>3} {:<6} {:>8} flits  stalls {:>8} (ser {} / cont {} / bp {} / rs {} / fab {} / q {})\n",
                l.router,
                port_name(l.port),
                l.flits,
                s.total(),
                s.serialization,
                s.contention,
                s.backpressure,
                s.router_stall,
                s.fabric_hop,
                s.queued,
            ));
        }

        out.push_str("\nper-router utilization (flits/cycle)\n");
        out.push_str(&self.utilization_heatmap_ascii());
        out.push('\n');

        for (i, p) in self.critical_paths.iter().enumerate() {
            out.push_str(&format!(
                "critical path #{:<2} msg {} {}→{} ({} flits): latency {} = source_wait {} + stalls + transit {}\n",
                i + 1,
                p.id,
                p.src,
                p.dst,
                p.flits,
                p.latency,
                p.source_wait,
                p.transit
            ));
            for h in &p.hops {
                let wait = h.wait();
                let to = if h.grant.is_some() {
                    port_name(h.out_port)
                } else {
                    "lost"
                };
                out.push_str(&format!(
                    "    router {:>3} {}→{}: wait {} (ser {} / cont {} / bp {} / rs {} / fab {} / q {})\n",
                    h.router,
                    port_name(h.in_port),
                    to,
                    wait,
                    h.serialization,
                    h.contention,
                    h.backpressure,
                    h.router_stall,
                    h.fabric_hop,
                    h.queued,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnoc_telemetry::StallKind;

    fn sample_recorder() -> FlightRecorder {
        let mut rec = FlightRecorder::new();
        // msg 0: 0 → 2 across routers 0,1,2 with a contention stall.
        rec.on_inject(0, 0, 2, 1, 0, 0);
        rec.charge(0, StallKind::Contention);
        rec.on_grant(0, 2, 1);
        rec.on_enqueue(0, 1, 4, 2);
        rec.on_grant(0, 2, 2);
        rec.on_enqueue(0, 2, 4, 3);
        rec.on_grant(0, 0, 3);
        rec.on_deliver(0, 3);
        // msg 1: short local delivery.
        rec.on_inject(1, 3, 3, 2, 0, 0);
        rec.on_grant(1, 0, 0);
        rec.on_deliver(1, 0);
        rec
    }

    #[test]
    fn report_totals_sum_to_delivered_latency() {
        let rec = sample_recorder();
        let rep = ProfileReport::from_recorder(&rec, 3, 3, 10, 2);
        assert_eq!(rep.delivered, 2);
        assert_eq!(rep.totals.total(), rep.delivered_latency);
        assert_eq!(rep.critical_paths.len(), 2);
        // Slowest first.
        assert_eq!(rep.critical_paths[0].id, 0);
        assert_eq!(rep.critical_paths[0].latency, 3);
    }

    #[test]
    fn json_has_schema_version_first() {
        let rec = sample_recorder();
        let rep = ProfileReport::from_recorder(&rec, 3, 3, 10, 1);
        let json = rep.to_json_pretty();
        assert!(
            json.trim_start().starts_with("{\n  \"schema\": 1"),
            "schema must lead: {}",
            &json[..60.min(json.len())]
        );
        let v: Value = serde_json::from_str(&json).expect("profile JSON parses");
        assert_eq!(v.field("schema").unwrap(), &Value::U64(1));
        assert!(v.field("critical_paths").is_ok());
    }

    #[test]
    fn text_report_mentions_all_buckets() {
        let rec = sample_recorder();
        let rep = ProfileReport::from_recorder(&rec, 3, 3, 10, 1);
        let text = rep.render_text();
        for bucket in [
            "source_wait",
            "serialization",
            "contention",
            "backpressure",
            "router_stall",
            "fabric_hop",
            "queued",
            "transit",
            "critical path #1",
        ] {
            assert!(text.contains(bucket), "missing {bucket} in report");
        }
    }

    #[test]
    fn heatmaps_render_for_geometry() {
        let rec = sample_recorder();
        let rep = ProfileReport::from_recorder(&rec, 3, 3, 10, 1);
        let ascii = rep.utilization_heatmap_ascii();
        assert_eq!(ascii.lines().count(), 3, "one line per mesh row");
        let svg = rep.utilization_heatmap_svg();
        assert!(svg.starts_with("<svg"));
    }
}
