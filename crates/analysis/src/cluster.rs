//! Correlation-threshold clustering for placement reverse engineering.
//!
//! Implication #1 of the paper: an attacker (or tool) can recover the
//! physical grouping of SMs — GPCs, CPCs, die partitions — by clustering
//! their L2-latency profiles, because SMs that share a cluster have
//! near-identical latency distributions (Observations #3–#5).

/// Union-find over `n` items.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Clusters items whose pairwise correlation is at least `threshold`.
///
/// `corr` is a symmetric matrix (e.g. from
/// [`crate::correlation_matrix`]). Returns one cluster label per item,
/// labelled `0..k` in order of first appearance.
///
/// # Panics
///
/// Panics if `corr` is ragged.
pub fn correlation_clusters(corr: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    let n = corr.len();
    let mut uf = UnionFind::new(n);
    for (i, row) in corr.iter().enumerate() {
        assert_eq!(row.len(), n, "correlation matrix must be square");
        for (j, &r) in row.iter().enumerate().skip(i + 1) {
            if r >= threshold {
                uf.union(i, j);
            }
        }
    }
    canonical_labels(&mut uf)
}

/// Parallel [`correlation_clusters`]: edge detection (the O(n²) threshold
/// scan) fans out across the pool's workers; the unions are then applied
/// sequentially in the same row-major `(i, j)` order the serial version
/// uses, so the resulting labels are identical for any worker count.
///
/// # Panics
///
/// Panics if `corr` is ragged.
pub fn correlation_clusters_par(
    corr: &[Vec<f64>],
    threshold: f64,
    pool: &gnoc_par::WorkerPool,
) -> Vec<usize> {
    let n = corr.len();
    let edges_per_row: Vec<Vec<usize>> = pool.par_map(corr, |row| {
        assert_eq!(row.len(), n, "correlation matrix must be square");
        row.iter()
            .enumerate()
            .filter(|&(_, &r)| r >= threshold)
            .map(|(j, _)| j)
            .collect()
    });
    let mut uf = UnionFind::new(n);
    for (i, edges) in edges_per_row.iter().enumerate() {
        for &j in edges.iter().filter(|&&j| j > i) {
            uf.union(i, j);
        }
    }
    canonical_labels(&mut uf)
}

/// Canonicalises union-find roots into labels `0..k` in first-appearance
/// order, shared by the serial and parallel cluster entry points.
fn canonical_labels(uf: &mut UnionFind) -> Vec<usize> {
    let n = uf.parent.len();
    let mut labels = Vec::with_capacity(n);
    let mut next = 0;
    let mut root_label = std::collections::HashMap::new();
    for i in 0..n {
        let root = uf.find(i);
        let label = *root_label.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
        labels.push(label);
    }
    labels
}

/// Number of distinct clusters in a label vector.
pub fn cluster_count(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Measures how well inferred clusters match ground-truth groups: the
/// fraction of item pairs on which "same cluster" agrees with "same group"
/// (Rand index). 1.0 is perfect recovery.
///
/// # Panics
///
/// Panics if the vectors differ in length or have fewer than two items.
pub fn rand_index(labels: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(labels.len(), truth.len(), "label vectors must align");
    let n = labels.len();
    assert!(n >= 2, "rand index needs at least two items");
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_label = labels[i] == labels[j];
            let same_truth = truth[i] == truth[j];
            if same_label == same_truth {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_block_diagonal_matrix_clusters() {
        // Two blocks of two.
        let corr = vec![
            vec![1.0, 0.99, 0.1, 0.0],
            vec![0.99, 1.0, 0.0, 0.1],
            vec![0.1, 0.0, 1.0, 0.98],
            vec![0.0, 0.1, 0.98, 1.0],
        ];
        let labels = correlation_clusters(&corr, 0.9);
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert_eq!(cluster_count(&labels), 2);
    }

    #[test]
    fn threshold_one_isolates_everything_imperfect() {
        let corr = vec![vec![1.0, 0.5], vec![0.5, 1.0]];
        let labels = correlation_clusters(&corr, 0.9);
        assert_eq!(cluster_count(&labels), 2);
    }

    #[test]
    fn transitive_chains_merge() {
        // a~b and b~c, but a!~c: union-find still merges all three.
        let corr = vec![
            vec![1.0, 0.95, 0.2],
            vec![0.95, 1.0, 0.95],
            vec![0.2, 0.95, 1.0],
        ];
        let labels = correlation_clusters(&corr, 0.9);
        assert_eq!(cluster_count(&labels), 1);
    }

    #[test]
    fn rand_index_rewards_exact_recovery() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
    }

    #[test]
    fn rand_index_penalises_merging() {
        let r = rand_index(&[0, 0, 0, 0], &[0, 0, 1, 1]);
        assert!(r < 1.0);
        assert!((r - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_clusters_are_identical_to_serial() {
        // Chain structure exercises union ordering: labels must still come
        // out in first-appearance order regardless of worker count.
        let corr = vec![
            vec![1.0, 0.95, 0.2, 0.0, 0.0],
            vec![0.95, 1.0, 0.95, 0.0, 0.0],
            vec![0.2, 0.95, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.99],
            vec![0.0, 0.0, 0.0, 0.99, 1.0],
        ];
        let serial = correlation_clusters(&corr, 0.9);
        for jobs in [1, 2, 7] {
            let pool = gnoc_par::WorkerPool::new(jobs);
            assert_eq!(correlation_clusters_par(&corr, 0.9, &pool), serial);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let _ = correlation_clusters(&[vec![1.0, 0.0], vec![1.0]], 0.5);
    }
}
