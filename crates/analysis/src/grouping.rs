//! Group-and-sort analysis of latency profiles (paper Fig. 3).
//!
//! The paper groups L2 slices by their memory partition, sorts each group by
//! latency, and observes that the sorted slice *order* is identical across
//! SMs — the fingerprint of physical placement inside an MP.

use crate::stats::argsort;

/// For each group `0..num_groups`, the member indices of `group_of` sorted by
/// ascending `values`.
///
/// # Panics
///
/// Panics if `values` and `group_of` differ in length or a group id is out of
/// range.
pub fn sorted_members_by_group(
    values: &[f64],
    group_of: &[usize],
    num_groups: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(values.len(), group_of.len(), "values/groups must align");
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (idx, &g) in group_of.iter().enumerate() {
        assert!(g < num_groups, "group id {g} out of range");
        groups[g].push(idx);
    }
    for members in &mut groups {
        let vals: Vec<f64> = members.iter().map(|&i| values[i]).collect();
        let order = argsort(&vals);
        *members = order.iter().map(|&k| members[k]).collect();
    }
    groups
}

/// Whether two per-group sorted orders are identical — the Fig. 3 check that
/// different SMs sort each MP's slices the same way.
pub fn same_group_order(a: &[Vec<usize>], b: &[Vec<usize>]) -> bool {
    a == b
}

/// Fraction of groups on which the two orders agree exactly.
///
/// # Panics
///
/// Panics if the group counts differ or there are no groups.
pub fn group_order_agreement(a: &[Vec<usize>], b: &[Vec<usize>]) -> f64 {
    assert_eq!(a.len(), b.len(), "group counts must match");
    assert!(!a.is_empty(), "need at least one group");
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_sorted_within_groups() {
        // items 0,1 in group 0; items 2,3 in group 1.
        let values = [5.0, 3.0, 1.0, 2.0];
        let groups = [0usize, 0, 1, 1];
        let sorted = sorted_members_by_group(&values, &groups, 2);
        assert_eq!(sorted, vec![vec![1, 0], vec![2, 3]]);
    }

    #[test]
    fn shifted_values_keep_the_same_order() {
        // The Fig. 3 phenomenon: another SM's latencies are shifted but the
        // per-group order is unchanged.
        let sm_a = [5.0, 3.0, 1.0, 2.0];
        let sm_b: Vec<f64> = sm_a.iter().map(|v| v + 40.0).collect();
        let groups = [0usize, 0, 1, 1];
        let a = sorted_members_by_group(&sm_a, &groups, 2);
        let b = sorted_members_by_group(&sm_b, &groups, 2);
        assert!(same_group_order(&a, &b));
        assert_eq!(group_order_agreement(&a, &b), 1.0);
    }

    #[test]
    fn disagreement_is_fractional() {
        let a = vec![vec![0, 1], vec![2, 3]];
        let b = vec![vec![0, 1], vec![3, 2]];
        assert!(!same_group_order(&a, &b));
        assert_eq!(group_order_agreement(&a, &b), 0.5);
    }

    #[test]
    fn empty_groups_are_preserved() {
        let sorted = sorted_members_by_group(&[1.0], &[2], 3);
        assert_eq!(sorted, vec![vec![], vec![], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_group_rejected() {
        let _ = sorted_members_by_group(&[1.0], &[5], 2);
    }
}
