//! Little's-law bandwidth/latency relations.
//!
//! The paper invokes Little's law to explain why far-partition L2 slices see
//! lower bandwidth from a small number of SMs (Fig. 14): a fixed in-flight
//! byte budget divided by a larger round-trip latency yields a lower rate.

/// Achievable bandwidth (GB/s) of a requester holding `mlp_bytes` in flight
/// against a round-trip of `latency_cycles` at `clock_ghz`.
///
/// # Panics
///
/// Panics if `latency_cycles` or `clock_ghz` is not strictly positive.
pub fn bandwidth_gbps(mlp_bytes: f64, latency_cycles: f64, clock_ghz: f64) -> f64 {
    assert!(latency_cycles > 0.0, "latency must be positive");
    assert!(clock_ghz > 0.0, "clock must be positive");
    mlp_bytes * clock_ghz / latency_cycles
}

/// In-flight bytes implied by an observed `(bandwidth, latency)` pair — the
/// inverse relation, used to check that measured curves are Little-consistent.
///
/// # Panics
///
/// Panics if `clock_ghz` is not strictly positive.
pub fn implied_mlp_bytes(bandwidth_gbps: f64, latency_cycles: f64, clock_ghz: f64) -> f64 {
    assert!(clock_ghz > 0.0, "clock must be positive");
    bandwidth_gbps * latency_cycles / clock_ghz
}

/// Relative bandwidth drop expected when latency grows from `near` to `far`
/// cycles under a fixed in-flight budget: `1 - near/far`.
pub fn expected_drop(near_cycles: f64, far_cycles: f64) -> f64 {
    1.0 - near_cycles / far_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matches_hand_computation() {
        // 7000 B in flight at 212 cycles and 1.41 GHz ≈ 46.6 GB/s.
        let bw = bandwidth_gbps(7000.0, 212.0, 1.41);
        assert!((bw - 46.556).abs() < 0.01);
    }

    #[test]
    fn relations_are_mutually_inverse() {
        let mlp = implied_mlp_bytes(bandwidth_gbps(5000.0, 300.0, 1.38), 300.0, 1.38);
        assert!((mlp - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn longer_latency_means_less_bandwidth() {
        let near = bandwidth_gbps(8000.0, 212.0, 1.41);
        let far = bandwidth_gbps(8000.0, 400.0, 1.41);
        assert!(far < near);
        let drop = expected_drop(212.0, 400.0);
        assert!(((near - far) / near - drop).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = bandwidth_gbps(1.0, 0.0, 1.0);
    }
}
