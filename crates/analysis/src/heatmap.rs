//! ASCII heatmap rendering for correlation matrices and traffic maps
//! (Figs. 6 and 16).

/// Renders `matrix` (row-major) as an ASCII heatmap using a density ramp.
///
/// Values are scaled linearly between `lo` and `hi`; out-of-range values
/// clamp. Row/column group boundaries every `group` cells get separators,
/// matching the paper's GPC-grouped axes (pass 0 to disable).
///
/// # Panics
///
/// Panics if rows have inconsistent lengths or `hi <= lo`.
pub fn render_heatmap(matrix: &[Vec<f64>], lo: f64, hi: f64, group: usize) -> String {
    assert!(hi > lo, "heatmap range must be non-empty");
    const RAMP: &[u8] = b" .:-=+*#%@";
    let width = matrix.first().map_or(0, Vec::len);
    let mut out = String::new();
    for (r, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), width, "ragged heatmap row {r}");
        if group > 0 && r > 0 && r % group == 0 {
            for c in 0..width {
                if group > 0 && c > 0 && c % group == 0 {
                    out.push('+');
                }
                out.push('-');
            }
            out.push('\n');
        }
        for (c, &v) in row.iter().enumerate() {
            if group > 0 && c > 0 && c % group == 0 {
                out.push('|');
            }
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders a time × destination traffic map (rows = time steps) with one
/// character per cell scaled to the row-independent global maximum — the
/// Fig. 16 view of per-slice traffic over time.
pub fn render_traffic_map(rows: &[Vec<f64>]) -> String {
    let max = rows
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    render_heatmap(rows, 0.0, max, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_maps_extremes() {
        let m = vec![vec![0.0, 1.0]];
        let art = render_heatmap(&m, 0.0, 1.0, 0);
        assert_eq!(art, " @\n");
    }

    #[test]
    fn group_separators_are_inserted() {
        let m = vec![vec![1.0; 4]; 4];
        let art = render_heatmap(&m, 0.0, 1.0, 2);
        // 4 data rows + 1 separator row.
        assert_eq!(art.lines().count(), 5);
        assert!(art.contains('|'));
        assert!(art.contains('+'));
    }

    #[test]
    fn values_clamp_to_range() {
        let m = vec![vec![-10.0, 10.0]];
        let art = render_heatmap(&m, 0.0, 1.0, 0);
        assert_eq!(art, " @\n");
    }

    #[test]
    fn traffic_map_scales_to_global_max() {
        let rows = vec![vec![0.0, 5.0], vec![10.0, 0.0]];
        let art = render_traffic_map(&rows);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[1].chars().next(), Some('@'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let m = vec![vec![1.0, 2.0], vec![1.0]];
        let _ = render_heatmap(&m, 0.0, 1.0, 0);
    }
}
