//! Ordinary least-squares linear regression.
//!
//! The side-channel reproductions rely on linear relationships: AES timing vs
//! number of unique cache lines (Fig. 17a) and RSA execution time vs the
//! number of 1-bits in the key (Fig. 19). The defense works precisely by
//! destroying the quality of these fits, which [`LinearFit::r_squared`]
//! quantifies.

use serde::{Deserialize, Serialize};

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line to `(x, y)` samples.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or hold fewer than two samples.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "fit requires equal-length vectors");
        assert!(x.len() >= 2, "fit requires at least two samples");
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (a, b) in x.iter().zip(y) {
            let dx = a - mx;
            let dy = b - my;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let intercept = my - slope * mx;
        let r_squared = if sxx == 0.0 || syy == 0.0 {
            0.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Self {
            slope,
            intercept,
            r_squared,
        }
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Inverts the fit: the `x` whose prediction is `y`. Returns `None` for a
    /// (near-)zero slope, where inversion is meaningless — exactly the
    /// attacker's failure mode under the randomised scheduler.
    pub fn invert(&self, y: f64) -> Option<f64> {
        (self.slope.abs() > 1e-12).then(|| (y - self.intercept) / self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v + 1.0).collect();
        let f = LinearFit::fit(&x, &y);
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_r_squared() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let f = LinearFit::fit(&x, &y);
        assert!(f.r_squared < 0.9);
    }

    #[test]
    fn predict_and_invert_are_inverse() {
        let f = LinearFit {
            slope: 3.0,
            intercept: -1.0,
            r_squared: 1.0,
        };
        let y = f.predict(7.0);
        assert!((f.invert(y).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn flat_fit_cannot_invert() {
        let f = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert!(f.invert(5.0).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        let _ = LinearFit::fit(&[1.0], &[1.0]);
    }
}
