//! Summary statistics over measurement samples.

use serde::{Deserialize, Serialize};

/// Summary of a sample set: count, mean, standard deviation and range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample set");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// The sample range (`max - min`).
    pub fn span(&self) -> f64 {
        self.max - self.min
    }

    /// Coefficient of variation (`stddev / mean`); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.n, self.mean, self.stddev, self.min, self.max
        )
    }
}

/// A sorted-once multi-quantile view of a sample set.
///
/// [`quantile`] clones and sorts the full sample set on every call, so a
/// caller reporting p50/p95/p99 pays three O(n log n) sorts. `Quantiles`
/// sorts once at construction; each [`q`](Self::q) lookup is then O(1)
/// linear interpolation over the shared sorted buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Sorts `samples` once.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a non-finite value.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "quantile of empty sample set");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Quantiles { sorted }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn q(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (`q(0.5)`).
    pub fn median(&self) -> f64 {
        self.q(0.5)
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `samples` by linear interpolation.
///
/// Thin wrapper over [`Quantiles`] — callers needing several quantiles of
/// one sample set should construct a [`Quantiles`] and reuse it, avoiding a
/// re-sort per call.
///
/// # Panics
///
/// Panics if `samples` is empty or `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    Quantiles::new(samples).q(q)
}

/// Indices that sort `values` ascending — the slice-ordering primitive behind
/// the paper's Fig. 3 ("sorted slice order is identical across SMs").
pub fn argsort(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.span(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 0.25), 2.0);
    }

    #[test]
    fn argsort_orders_indices() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 3.0]);
        assert!(s.to_string().starts_with("n=2 mean=2.00"));
    }
}
