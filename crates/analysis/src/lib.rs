//! # gnoc-analysis
//!
//! Statistics and reverse-engineering toolkit for the `gnoc` reproduction of
//! *Uncovering Real GPU NoC Characteristics* (MICRO 2024).
//!
//! The paper's analyses reduce to a handful of primitives, all implemented
//! here without external math dependencies:
//!
//! - [`Summary`], [`quantile`], [`Quantiles`], [`argsort`] — sample
//!   statistics ([`Quantiles`] sorts once for multi-quantile reports);
//! - [`pearson`], [`correlation_matrix`] — the paper's Eq. 1, used for both
//!   placement recovery (Fig. 6) and the AES attack (Fig. 18);
//!   [`correlation_matrix_par`] / [`correlation_clusters_par`] fan the O(n²)
//!   work across a [`gnoc_par::WorkerPool`] with bit-identical results;
//! - [`Histogram`] with peak detection — latency/bandwidth distributions
//!   (Figs. 2, 9, 13);
//! - [`render_heatmap`] — ASCII heatmaps (Figs. 6, 16);
//! - [`correlation_clusters`], [`rand_index`] — placement inference
//!   (Implication #1);
//! - [`LinearFit`] — the linear timing relationships the side-channel attacks
//!   exploit (Figs. 17, 19);
//! - [`littles_law`] — the bandwidth/latency relation behind Fig. 14;
//! - [`profile`] — stall-attribution, utilization-heatmap, and
//!   critical-path reduction of a `gnoc-telemetry` flight recording (the
//!   analysis half of `gnoc profile`);
//! - [`sorted_members_by_group`] — the Fig. 3 group-and-sort analysis;
//! - [`svg`] — dependency-free SVG rendering of line charts, bar charts and
//!   heatmaps for figure artifacts.
//!
//! ```
//! use gnoc_analysis::pearson;
//!
//! let a = [1.0, 2.0, 3.0];
//! let b = [2.0, 4.0, 6.0];
//! assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod grouping;
mod heatmap;
mod histogram;
mod linreg;
pub mod littles_law;
mod pearson;
pub mod profile;
mod stats;
pub mod svg;

pub use cluster::{cluster_count, correlation_clusters, correlation_clusters_par, rand_index};
pub use grouping::{group_order_agreement, same_group_order, sorted_members_by_group};
pub use heatmap::{render_heatmap, render_traffic_map};
pub use histogram::Histogram;
pub use linreg::LinearFit;
pub use pearson::{correlation_matrix, correlation_matrix_par, pearson, spearman};
pub use stats::{argsort, quantile, Quantiles, Summary};
