//! Fixed-bin histograms with peak detection.
//!
//! Used for the latency histograms of Fig. 2 and the bandwidth distributions
//! of Fig. 9b,c and Fig. 13, where the *modality* matters: A100 per-slice
//! bandwidth is bimodal (near/far partitions) while H100 is unimodal.

use serde::{Deserialize, Serialize};

/// A histogram over equal-width bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Samples outside the range are clamped into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &s in samples {
            let idx = ((s - lo) / width).floor() as i64;
            let idx = idx.clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Self { lo, width, counts }
    }

    /// Builds a histogram spanning the sample range with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    pub fn auto(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram of empty sample set");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        Self::new(samples, lo, hi, bins)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + self.width * (i as f64 + 0.5)
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of local maxima after light smoothing, counting only peaks at
    /// least `min_fraction` of the tallest bin. Detects bimodality: the A100
    /// per-slice bandwidth histogram has two peaks, H100 one (Fig. 13).
    pub fn peak_count(&self, min_fraction: f64) -> usize {
        // 3-point moving average to suppress noise peaks.
        let n = self.counts.len();
        let smooth: Vec<f64> = (0..n)
            .map(|i| {
                let a = if i > 0 { self.counts[i - 1] } else { 0 } as f64;
                let b = self.counts[i] as f64;
                let c = if i + 1 < n { self.counts[i + 1] } else { 0 } as f64;
                (a + b + c) / 3.0
            })
            .collect();
        let tallest = smooth.iter().cloned().fold(0.0, f64::max);
        if tallest == 0.0 {
            return 0;
        }
        let floor = tallest * min_fraction;
        let mut peaks = 0;
        let mut i = 0;
        while i < n {
            let v = smooth[i];
            if v >= floor {
                let left = if i > 0 { smooth[i - 1] } else { -1.0 };
                // Walk any plateau.
                let mut j = i;
                while j + 1 < n && smooth[j + 1] == v {
                    j += 1;
                }
                let right = if j + 1 < n { smooth[j + 1] } else { -1.0 };
                if v > left && v > right {
                    peaks += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
        peaks
    }

    /// Renders the histogram as ASCII rows (`center | bar count`).
    pub fn render_ascii(&self, max_bar: usize) -> String {
        let tallest = self.counts.iter().cloned().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * max_bar).div_ceil(tallest as usize);
            out.push_str(&format!(
                "{:8.1} | {}{} {}\n",
                self.bin_center(i),
                "#".repeat(bar.min(max_bar)),
                " ".repeat(max_bar.saturating_sub(bar)),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_correct_bins() {
        let h = Histogram::new(&[0.5, 1.5, 1.6, 2.5], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let h = Histogram::new(&[-5.0, 99.0], 0.0, 10.0, 2);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn auto_spans_sample_range() {
        let h = Histogram::auto(&[10.0, 20.0, 30.0], 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn unimodal_distribution_has_one_peak() {
        // Sum of two uniform strides → triangular (unimodal) distribution.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 50.0 + ((i % 20) as f64 - 9.5) / 2.0 + ((i % 17) as f64 - 8.0) / 2.0)
            .collect();
        let h = Histogram::new(&samples, 0.0, 100.0, 25);
        assert_eq!(h.peak_count(0.25), 1, "{}", h.render_ascii(30));
    }

    #[test]
    fn bimodal_distribution_has_two_peaks() {
        // Two tight clusters, like A100 near/far slice bandwidth.
        let mut samples = Vec::new();
        for i in 0..500 {
            samples.push(26.0 + 0.7 * ((i % 10) as f64 / 10.0 - 0.5));
            samples.push(39.5 + 0.7 * ((i % 7) as f64 / 7.0 - 0.5));
        }
        let h = Histogram::new(&samples, 20.0, 45.0, 25);
        assert_eq!(h.peak_count(0.2), 2, "{}", h.render_ascii(30));
    }

    #[test]
    fn render_contains_every_bin() {
        let h = Histogram::new(&[1.0, 2.0], 0.0, 4.0, 4);
        let art = h.render_ascii(10);
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(&[1.0], 0.0, 1.0, 0);
    }
}
