//! Offline shim for `criterion`.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `Bencher::iter`, `BenchmarkId::new`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! wall-clock loop: per sample the closure runs enough iterations to cover a
//! minimum window, and the median per-iteration time across samples is
//! printed. No statistics engine, HTML reports, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier `function/parameter` for parameterised benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut per_iter: Vec<f64> = bencher.samples;
        if per_iter.is_empty() {
            println!(
                "{}/{id}: no measurement (closure never called iter)",
                self.name
            );
            return;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{}/{id:<40} median {:>12} (min {}, max {}, {} samples)",
            self.name,
            format_ns(median),
            format_ns(min),
            format_ns(max),
            per_iter.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing harness passed to each bench closure.
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count per sample that
        // covers at least ~2ms so Instant resolution doesn't dominate.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); ignored.
            $( $group(); )+
        }
    };
}
