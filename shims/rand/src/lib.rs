//! Offline shim for `rand` 0.8.
//!
//! Provides `Rng`, `RngCore`, `SeedableRng`, and `rngs::StdRng` with the
//! method surface this workspace uses (`seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`, `fill`). `StdRng` is xoshiro256++ seeded through SplitMix64 —
//! a different stream than the real crate's ChaCha12 `StdRng`, but the
//! workspace only relies on determinism per seed, never on specific values.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same scheme the real
    /// crate uses for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly from raw generator output (the shim's
/// equivalent of sampling the `Standard` distribution).
pub trait Random: Sized {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

impl<T: Random, const N: usize> Random for [T; N] {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::random_from(rng))
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::random_from(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Destinations fillable by [`Rng::fill`].
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=5usize);
            assert!(i <= 5);
        }
        let full = rng.gen_range(2u64..u64::MAX);
        assert!(full >= 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 1000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fill_fills_arrays() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 16]);
    }
}
