//! Offline shim for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact serde surface the workspace uses: `Serialize`/`Deserialize` traits
//! (with derive macros from the sibling `serde_derive` shim) plus
//! `serde::de::DeserializeOwned`. Instead of serde's visitor architecture it
//! uses a simple value model: types convert to/from [`Value`], and
//! `serde_json` (also shimmed) renders [`Value`] as JSON text.
//!
//! The wire format matches real serde's JSON conventions for the shapes this
//! workspace contains: structs as objects, newtype structs as their inner
//! value (so `#[serde(transparent)]` holds), enums externally tagged with
//! unit variants as bare strings, `Option` as `null`/value, sequences as
//! arrays.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate representation every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (JSON numbers without sign/fraction/exponent).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Externally-tagged enum payload: `{"Tag": value}`.
    pub fn tagged(tag: &str, value: Value) -> Value {
        Value::Object(vec![(tag.to_string(), value)])
    }

    /// Looks up a field of an object, erroring on missing field / non-object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets `self` as a single-entry object `{"Tag": value}`.
    pub fn as_tagged(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::msg(format!(
                "expected externally tagged enum value, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets `self` as an array of exactly `n` elements.
    pub fn expect_array(&self, n: usize) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::msg(format!(
                "expected array of length {n}, found length {}",
                items.len()
            ))),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts `self` into the [`Value`] model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] model.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::{Error, Serialize};
}

pub mod de {
    pub use crate::{Deserialize, Error};

    /// Matches real serde's `DeserializeOwned` bound; in this shim every
    /// `Deserialize` type already owns its data.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ------------------------------------------------------- primitive impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let v = value.as_u64().ok_or_else(|| Error::msg("expected usize"))?;
        usize::try_from(v).map_err(|_| Error::msg("out of range for usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}
impl Deserialize for isize {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let v = value.as_i64().ok_or_else(|| Error::msg("expected isize"))?;
        isize::try_from(v).map_err(|_| Error::msg("out of range for isize"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            // Real serde_json cannot encode non-finite floats and writes null.
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Mirrors real serde, where `&'static str: Deserialize<'de>` exists (so
/// derives on structs holding `&'static str` compile) but deserializing one
/// from non-static input fails. This shim owns all parsed data, so the
/// failure is unconditional at runtime.
impl Deserialize for &'static str {
    fn deserialize_value(_value: &Value) -> Result<Self, Error> {
        Err(Error::msg(
            "cannot deserialize into a borrowed &'static str; use String",
        ))
    }
}

// ------------------------------------------------------- container impls ----

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value.expect_array(N)?;
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::deserialize_value).collect();
        parsed?
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+) with $n:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.expect_array($n)?;
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
