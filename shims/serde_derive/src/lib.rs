//! Offline shim for `serde_derive`.
//!
//! The build environment has no crates.io access, so this workspace carries a
//! minimal re-implementation of the serde surface it actually uses (see
//! `shims/README.md`). This crate provides `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the value-model traits in `shims/serde`,
//! written directly on `proc_macro::TokenStream` (no `syn`/`quote`).
//!
//! Supported shapes — exactly what the workspace needs, nothing more:
//! named structs, tuple/newtype structs, unit structs, and enums whose
//! variants are unit, newtype, tuple, or struct-like. Generic types are not
//! supported. `#[serde(...)]` attributes are accepted and ignored; the only
//! one the workspace uses is `#[serde(transparent)]` on newtype structs,
//! whose semantics (serialize as the inner value) are this derive's default
//! for newtypes anyway.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

// ------------------------------------------------------------- parsing ----

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips `#[...]` attributes (each arrives as a `#` punct followed by a
/// bracket group) and an optional `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' + bracketed group
            continue;
        }
        if i < toks.len() && ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
            continue;
        }
        return i;
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let is_enum = match ident_of(&toks[i]).as_deref() {
        Some("struct") => false,
        Some("enum") => true,
        other => panic!("serde shim derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = ident_of(&toks[i]).expect("serde shim derive: expected type name");
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    if is_enum {
        let body = match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
            _ => panic!("serde shim derive: expected enum body for `{name}`"),
        };
        Item {
            name,
            kind: ItemKind::Enum(parse_variants(body)),
        }
    } else {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        Item {
            name,
            kind: ItemKind::Struct(fields),
        }
    }
}

/// Field names of a `{ ... }` body; types are skipped by tracking `<>` depth
/// so commas inside `Vec<Vec<f64>>` etc. don't split fields.
fn parse_named(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim derive: expected field name");
        i += 1; // name
        i += 1; // ':'
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Number of fields in a `( ... )` tuple body (top-level commas + 1,
/// ignoring a trailing comma).
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < toks.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(g: &Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim derive: expected variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g2)) if g2.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g2))
            }
            Some(TokenTree::Group(g2)) if g2.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named(g2))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
        out.push((name, fields));
    }
    out
}

// ------------------------------------------------------------- codegen ----

fn ser_expr(value: &str) -> String {
    format!("::serde::Serialize::serialize_value({value})")
}

fn de_expr(value: &str) -> String {
    format!("::serde::Deserialize::deserialize_value({value})?")
}

fn object_expr(entries: &[(String, String)]) -> String {
    if entries.is_empty() {
        return "::serde::Value::Object(::std::vec::Vec::new())".to_string();
    }
    let items: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn array_expr(items: &[String]) -> String {
    if items.is_empty() {
        return "::serde::Value::Array(::std::vec::Vec::new())".to_string();
    }
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Tuple(0)) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Tuple(1)) => ser_expr("&self.0"),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| ser_expr(&format!("&self.{i}"))).collect();
            array_expr(&items)
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), ser_expr(&format!("&self.{f}"))))
                .collect();
            object_expr(&entries)
        }
        ItemKind::Enum(variants) => {
            let mut arms = Vec::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "Self::{v}(__f0) => ::serde::Value::tagged(\"{v}\", {}),",
                        ser_expr("__f0")
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders.iter().map(|b| ser_expr(b)).collect();
                        format!(
                            "Self::{v}({}) => ::serde::Value::tagged(\"{v}\", {}),",
                            binders.join(", "),
                            array_expr(&items)
                        )
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> =
                            fs.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let entries: Vec<(String, String)> = fs
                            .iter()
                            .map(|f| (f.clone(), ser_expr(&format!("__f_{f}"))))
                            .collect();
                        format!(
                            "Self::{v} {{ {} }} => ::serde::Value::tagged(\"{v}\", {}),",
                            binders.join(", "),
                            object_expr(&entries)
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) | ItemKind::Struct(Fields::Tuple(0)) => {
            "::std::result::Result::Ok(Self)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok(Self({}))", de_expr("__v"))
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| de_expr(&format!("&__a[{i}]"))).collect();
            format!(
                "let __a = __v.expect_array({n}usize)?;\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {},", de_expr(&format!("__v.field(\"{f}\")?"))))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(" "))
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{v}\" => ::std::result::Result::Ok(Self::{v}),"))
                    }
                    Fields::Tuple(1) => data_arms.push(format!(
                        "\"{v}\" => ::std::result::Result::Ok(Self::{v}({})),",
                        de_expr("__inner")
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> =
                            (0..*n).map(|i| de_expr(&format!("&__a[{i}]"))).collect();
                        data_arms.push(format!(
                            "\"{v}\" => {{\n\
                                 let __a = __inner.expect_array({n}usize)?;\n\
                                 ::std::result::Result::Ok(Self::{v}({}))\n\
                             }},",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("{f}: {},", de_expr(&format!("__inner.field(\"{f}\")?")))
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{v}\" => ::std::result::Result::Ok(Self::{v} {{ {} }}),",
                            inits.join(" ")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     return match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(\n\
                             ::std::format!(\"unknown variant `{{__other}}` of enum `{name}`\"))),\n\
                     }};\n\
                 }}\n\
                 let (__tag, __inner) = __v.as_tagged()?;\n\
                 match __tag {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::Error::msg(\n\
                         ::std::format!(\"unknown variant `{{__other}}` of enum `{name}`\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn deserialize_value(__v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
