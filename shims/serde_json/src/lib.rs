//! Offline shim for `serde_json`.
//!
//! Renders the `serde` shim's [`Value`] model as JSON text and parses JSON
//! text back. Supports the full JSON grammar (nested arrays/objects, string
//! escapes including `\uXXXX` surrogate pairs, and numbers with exponents).
//! Floats print via Rust's `Display`, which emits the shortest string that
//! round-trips — equivalent to the real crate's `float_roundtrip` feature.
//! Non-finite floats serialize as `null`, matching `serde_json`.

use std::fmt;

pub use serde::Value;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize_value(value)?)
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize_value(&value)?)
}

// -------------------------------------------------------------- writing ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Display prints the shortest representation that parses back
                // to the same f64; integral floats gain ".0" so they stay
                // recognisably floats on the wire.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid keyword"))
                }
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => unreachable!("string scan stops only at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((v as i128).wrapping_neg() as i64));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::F64(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".into(), Value::Str("x \"y\" \n z".into())),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -2.5e-7, 212.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats_on_the_wire() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn unicode_escapes_parse() {
        // é = é; 😀 is a surrogate pair for U+1F600.
        let s: String = from_str("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(s, "a\u{e9}\u{1F600}b");
    }
}
