//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, numeric range strategies,
//! tuple strategies, `Just`, `prop_oneof!`, `any::<T>()`,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros. Unlike the real crate it does plain random sampling — no
//! shrinking — with a deterministic per-test seed derived from the test
//! name, so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn gen_usize_in(&mut self, range: Range<usize>) -> usize {
        self.0.gen_range(range)
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// FNV-1a of the fully qualified test name, mixed with the case index — the
/// per-case seed used by the `proptest!` macro. Public for the macro.
#[doc(hidden)]
pub fn __seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1)
}

/// Failure raised by `prop_assert*`; `Display` carries the message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

#[doc(hidden)]
pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_usize_in(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

// ----------------------------------------------------------- primitives ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_usize_in(self.size.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------- macros ----

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union_of(::std::vec![$(::std::boxed::Box::new($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
}

/// The test harness macro. Each contained `fn` becomes a `#[test]` that
/// samples its strategies `cases` times with a name-derived deterministic
/// seed and runs the body, which may use `prop_assert*`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let __seed = $crate::__seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __rng = $crate::TestRng::from_seed(__seed);
                $(
                    let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __result {
                    panic!(
                        "proptest {} failed at case {} (seed {}):\n{}",
                        stringify!($name),
                        __case,
                        __seed,
                        __err
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            a in 3u32..17,
            b in (0u64..10).prop_map(|v| v * 2),
            mut v in crate::collection::vec(-1.0f64..1.0, 1..8),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b % 2 == 0 && b < 20);
            v.push(0.0);
            prop_assert!(v.len() >= 2);
            prop_assert!(v.iter().all(|x| (-1.0..=1.0).contains(x)));
        }

        #[test]
        fn oneof_picks_from_options(x in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert!(x == 1 || x == 7);
        }

        #[test]
        fn any_covers_arrays(bytes in any::<[u8; 16]>(), n in any::<u64>()) {
            prop_assert_eq!(bytes.len(), 16);
            prop_assert_ne!(n, n.wrapping_add(1));
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name_and_case() {
        assert_eq!(crate::__seed_for("a::b", 0), crate::__seed_for("a::b", 0));
        assert_ne!(crate::__seed_for("a::b", 0), crate::__seed_for("a::b", 1));
        assert_ne!(crate::__seed_for("a::b", 0), crate::__seed_for("a::c", 0));
    }
}
