//! Differential golden suite: the event-driven NoC core against the
//! cycle-exact reference, at every layer of the stack.
//!
//! The event core skips provably-quiet spans instead of stepping them; the
//! contract is that *nothing observable changes* — not the final cycle, not
//! a stats counter, not a flight-recorder byte, not a chaos report. Each
//! test here runs the same workload both ways and compares:
//!
//! 1. the bare mesh over generated fault plans (25 seeds);
//! 2. the retrying [`ReliableMesh`] soak, outcomes and drained ejections
//!    included (25 seeds);
//! 3. the flight recorder's streamed JSONL, byte for byte;
//! 4. 2–4-device fabrics over generated inter-device plans;
//! 5. full chaos reports, across the `--jobs {1, 2, 7}` sweep.
//!
//! The engine toggle is process-global, so every test serializes on one
//! mutex and restores the default (event) engine on exit, panic included.

use gnoc_chaos::{run_chaos, ChaosConfig, ChaosOptions};
use gnoc_core::noc::{
    set_event_skip_enabled, ArbiterKind, MeshConfig, NodeId, PacketClass, ReliableMesh, RetryConfig,
};
use gnoc_core::telemetry::{TelemetryHandle, TraceEvent, TraceSink};
use gnoc_core::{FabricConfig, FabricSim, FabricTopology, FaultGenConfig, FaultPlan, Mesh};
use std::sync::Mutex;

/// Serializes tests that read or flip the process-global engine toggle.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the lock for a test's duration and restores the default (event)
/// engine afterwards, even on panic.
struct EngineGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl EngineGuard<'_> {
    fn take() -> Self {
        let lock = ENGINE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self { _lock: lock }
    }
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        set_event_skip_enabled(true);
    }
}

/// splitmix64 step — the same deterministic traffic recipe the CLI drives.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A generated plan with everything the event core must preserve across
/// skipped spans: dead links, flaky links, router stalls, transients, and
/// an onset storm so faults keep manifesting mid-run.
fn gen_cfg(seed: u64, width: u32, height: u32, devices: u32) -> FaultGenConfig {
    FaultGenConfig {
        seed,
        width,
        height,
        dead_link_fraction: 0.06,
        flaky_links: 4,
        flaky_drop_prob: 0.25,
        stalled_routers: 2,
        stall_duration: 300,
        transient_drop_prob: 0.002,
        transient_corrupt_prob: 0.001,
        onset: 100,
        onset_storm_span: 2_000,
        region: None,
        burst: None,
        num_slices: 0,
        disabled_slice_count: 0,
        sweep: None,
        devices,
        fabric_topology: FabricTopology::Ring,
        dead_fabric_links: u32::from(devices >= 3),
        flaky_fabric_links: u32::from(devices >= 2),
        fabric_flaky_drop_prob: 0.2,
        dead_devices: 0,
        dead_switch: false,
    }
}

fn mesh_cfg() -> MeshConfig {
    MeshConfig::paper_6x6(ArbiterKind::RoundRobin).with_vcs(2)
}

#[test]
fn mesh_runs_bit_identical_across_generated_plans() {
    let _guard = EngineGuard::take();
    for seed in 0..25u64 {
        let plan = FaultPlan::generate(&gen_cfg(seed, 6, 6, 1));
        let build = || {
            let mut m = Mesh::try_new(mesh_cfg()).expect("valid config");
            m.apply_fault_plan(&plan).expect("plan fits the mesh");
            let mut state = seed;
            for _ in 0..80 {
                let src = (mix(&mut state) % 36) as u32;
                let dst = (mix(&mut state) % 36) as u32;
                if src != dst {
                    let flits = 1 + (mix(&mut state) % 4) as u32;
                    m.try_inject(
                        NodeId::new(src),
                        NodeId::new(dst),
                        flits,
                        PacketClass::Request,
                    );
                }
            }
            m
        };
        let mut event = build();
        let mut cycle = build();
        event.run(8_000);
        cycle.run_cycle_exact(8_000);
        assert_eq!(event.cycle(), cycle.cycle(), "seed {seed}: clock diverged");
        assert_eq!(event.stats(), cycle.stats(), "seed {seed}: stats diverged");
        assert_eq!(
            event.drain_ejected(),
            cycle.drain_ejected(),
            "seed {seed}: ejections diverged"
        );
        assert_eq!(
            event.drain_lost(),
            cycle.drain_lost(),
            "seed {seed}: losses diverged"
        );
    }
}

#[test]
fn reliable_mesh_soaks_bit_identical_across_seeds() {
    let _guard = EngineGuard::take();
    for seed in 0..25u64 {
        let plan = FaultPlan::generate(&gen_cfg(seed, 6, 6, 1));
        let soak = |event: bool| {
            let mut rm = ReliableMesh::with_faults(mesh_cfg(), &plan, RetryConfig::default())
                .expect("plan fits the mesh");
            let mut state = seed ^ 0xabcd;
            for _ in 0..48 {
                let src = (mix(&mut state) % 36) as u32;
                let dst = (mix(&mut state) % 36) as u32;
                if src != dst {
                    let flits = 1 + (mix(&mut state) % 4) as u32;
                    rm.submit(
                        NodeId::new(src),
                        NodeId::new(dst),
                        flits,
                        PacketClass::Request,
                    );
                }
            }
            let quiesced = if event {
                rm.run_until_quiescent(60_000)
            } else {
                rm.run_until_quiescent_cycle_exact(60_000)
            };
            (
                quiesced,
                rm.mesh().cycle(),
                rm.stats().clone(),
                rm.outcomes(),
                rm.mesh_mut().drain_ejected(),
            )
        };
        assert_eq!(soak(true), soak(false), "seed {seed}: soak diverged");
    }
}

/// Collects the JSONL lines a sink would write.
#[derive(Debug, Default)]
struct LineSink {
    lines: Vec<String>,
}

impl TraceSink for LineSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.lines
            .push(serde_json::to_string(event).expect("trace event serializes"));
    }
}

#[test]
fn flight_recorder_jsonl_is_byte_identical() {
    let _guard = EngineGuard::take();
    let profile = |event: bool| {
        set_event_skip_enabled(event);
        let plan = FaultPlan::generate(&gen_cfg(3, 6, 6, 1));
        let mut rm = ReliableMesh::with_faults(mesh_cfg(), &plan, RetryConfig::default())
            .expect("plan fits the mesh");
        rm.mesh_mut().attach_flight_recorder();
        let mut state = 17u64;
        for _ in 0..48 {
            let src = (mix(&mut state) % 36) as u32;
            let dst = (mix(&mut state) % 36) as u32;
            if src != dst {
                rm.submit(NodeId::new(src), NodeId::new(dst), 2, PacketClass::Request);
            }
        }
        assert!(rm.run_until_quiescent(60_000), "soak must quiesce");
        let rec = rm
            .mesh_mut()
            .take_flight_recorder()
            .expect("recorder attached");
        let mut sink = LineSink::default();
        rec.stream_to(&mut sink);
        sink.lines
    };
    let event_lines = profile(true);
    let cycle_lines = profile(false);
    assert!(!event_lines.is_empty());
    assert_eq!(
        event_lines, cycle_lines,
        "recorder JSONL must be byte-identical across engines"
    );
}

#[test]
fn fabric_soaks_bit_identical_across_devices() {
    let _guard = EngineGuard::take();
    for devices in 2..=4u32 {
        for seed in 0..8u64 {
            let plan = FaultPlan::generate(&gen_cfg(seed, 5, 5, devices));
            let soak = |event: bool| {
                let mut sim =
                    FabricSim::with_faults(FabricConfig::new(devices, FabricTopology::Ring), &plan)
                        .expect("plan fits the fabric");
                let nodes = 25u64;
                let mut state = seed ^ u64::from(devices) << 32;
                let mut submitted = 0;
                while submitted < 24 {
                    let sd = (mix(&mut state) % u64::from(devices)) as u32;
                    let dd = (mix(&mut state) % u64::from(devices)) as u32;
                    let src = (mix(&mut state) % nodes) as u32;
                    let dst = (mix(&mut state) % nodes) as u32;
                    if sd == dd && src == dst {
                        continue;
                    }
                    let flits = 1 + (mix(&mut state) % 4) as u32;
                    sim.submit(
                        sd,
                        NodeId::new(src),
                        dd,
                        NodeId::new(dst),
                        flits,
                        PacketClass::Request,
                    )
                    .expect("all devices are alive in this plan");
                    submitted += 1;
                }
                let quiesced = if event {
                    sim.run_until_quiescent(200_000)
                } else {
                    sim.run_until_quiescent_cycle_exact(200_000)
                };
                let die_cycles: Vec<u64> = sim.dies().iter().map(|d| d.mesh().cycle()).collect();
                (
                    quiesced,
                    sim.cycle(),
                    die_cycles,
                    sim.stats().clone(),
                    sim.outcomes(),
                )
            };
            assert_eq!(
                soak(true),
                soak(false),
                "devices {devices} seed {seed}: fabric soak diverged"
            );
        }
    }
}

#[test]
fn chaos_reports_identical_under_both_engines_and_jobs() {
    let _guard = EngineGuard::take();
    let run = |event: bool, jobs: usize| {
        set_event_skip_enabled(event);
        let cfg = ChaosConfig {
            device: None, // NoC-only: device oracles never touch the engine
            ..ChaosConfig::default()
        };
        let opts = ChaosOptions {
            seeds: (0..10).collect(),
            jobs,
            ..ChaosOptions::default()
        };
        let run = run_chaos(&cfg, &opts, &TelemetryHandle::disabled()).expect("chaos soak runs");
        assert!(run.finished);
        run.report
    };
    let reference = run(false, 1);
    for jobs in [1usize, 2, 7] {
        assert_eq!(
            run(true, jobs),
            reference,
            "event-engine chaos report diverged at jobs={jobs}"
        );
    }
}
