//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use gnoc_core::analysis;
use gnoc_core::engine::{AccessKind, FlowSpec, GpuDevice};
use gnoc_core::noc::{ArbiterKind, Mesh, MeshConfig, NodeId, PacketClass, RouteOrder};
use gnoc_core::sidechannel::{Aes128, BigUint, SBOX};
use gnoc_core::topo::{
    GpcId, GpuSpec, Hierarchy, HierarchySpec, PartitionId, SliceId, SmEnumeration, SmId,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- topo ----

fn arb_hierarchy() -> impl Strategy<Value = HierarchySpec> {
    (
        proptest::collection::vec(
            proptest::collection::vec(1u32..4, 1..3), // cpcs per gpc
            1..5,                                     // gpcs
        ),
        1u32..3, // sms per tpc
        1u32..5, // mps
        1u32..5, // slices per mp
        1u32..3, // partitions
    )
        .prop_map(
            |(gpc_cpc_tpcs, sms_per_tpc, num_mps, slices_per_mp, num_partitions)| {
                let gpcs = gpc_cpc_tpcs.len();
                HierarchySpec {
                    gpc_partition: (0..gpcs)
                        .map(|g| PartitionId::new(g as u32 % num_partitions))
                        .collect(),
                    mp_partition: (0..num_mps)
                        .map(|m| PartitionId::new(m % num_partitions))
                        .collect(),
                    gpc_cpc_tpcs,
                    sms_per_tpc,
                    num_partitions,
                    num_mps,
                    slices_per_mp,
                    sm_enumeration: SmEnumeration::GpcMajor,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hierarchy_containment_is_consistent(spec in arb_hierarchy()) {
        let h = Hierarchy::build(spec).expect("generated specs are valid");
        // Forward and reverse SM tables agree, and partition/GPC/CPC/TPC
        // containment is transitive.
        let mut seen = 0;
        for g in GpcId::range(h.num_gpcs()) {
            for &sm in h.sms_in_gpc(g) {
                let info = h.sm(sm);
                prop_assert_eq!(info.gpc, g);
                prop_assert_eq!(h.gpc_of_cpc(info.cpc), g);
                prop_assert_eq!(h.gpc_of_tpc(info.tpc), g);
                prop_assert_eq!(info.partition, h.partition_of_gpc(g));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, h.num_sms());
        // Slices partition into MPs exactly.
        let total: usize = (0..h.num_mps())
            .map(|m| h.slices_in_mp(gnoc_core::MpId::new(m as u32)).len())
            .sum();
        prop_assert_eq!(total, h.num_slices());
    }

    #[test]
    fn floorplan_keeps_blocks_on_die(
        spec in arb_hierarchy(),
        w in 5.0f64..60.0,
        hgt in 5.0f64..60.0,
    ) {
        let h = Hierarchy::build(spec).expect("valid");
        let fp = gnoc_core::Floorplan::layout(&h, w, hgt);
        for sm in SmId::range(h.num_sms()) {
            prop_assert!(fp.die().contains(fp.sm_pos(sm)));
        }
        for s in SliceId::range(h.num_slices()) {
            prop_assert!(fp.die().contains(fp.slice_pos(s)));
        }
        // Routed distance is at least the direct distance and symmetric in
        // the same-partition case.
        for sm in SmId::range(h.num_sms().min(6)) {
            for s in SliceId::range(h.num_slices().min(6)) {
                let direct = fp.sm_pos(sm).manhattan(fp.slice_pos(s));
                prop_assert!(fp.wire_distance(sm, s) >= direct - 1e-9);
            }
        }
    }
}

// ------------------------------------------------------------- analysis ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pearson_is_bounded_and_symmetric(
        x in proptest::collection::vec(-1e3f64..1e3, 3..40),
        y_seed in proptest::collection::vec(-1e3f64..1e3, 3..40),
    ) {
        let n = x.len().min(y_seed.len());
        let (x, y) = (&x[..n], &y_seed[..n]);
        let r = analysis::pearson(x, y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - analysis::pearson(y, x)).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut v in proptest::collection::vec(-1e6f64..1e6, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        // One sort, many lookups — and the one-shot wrapper must agree.
        let qs = analysis::Quantiles::new(&v);
        let a = qs.q(lo);
        let b = qs.q(hi);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= qs.min() - 1e-9 && b <= qs.max() + 1e-9);
        prop_assert_eq!(a, analysis::quantile(&v, lo));
        prop_assert_eq!(qs.n(), v.len());
        prop_assert!((qs.median() - analysis::quantile(&v, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn histogram_conserves_samples(
        v in proptest::collection::vec(-50.0f64..50.0, 1..200),
        bins in 1usize..30,
    ) {
        let h = analysis::Histogram::new(&v, -50.0, 50.0, bins);
        prop_assert_eq!(h.total(), v.len() as u64);
    }

    #[test]
    fn argsort_yields_sorted_permutation(
        v in proptest::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let idx = analysis::argsort(&v);
        prop_assert_eq!(idx.len(), v.len());
        let mut check: Vec<usize> = idx.clone();
        check.sort_unstable();
        prop_assert_eq!(check, (0..v.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] <= v[w[1]]);
        }
    }
}

// -------------------------------------------------------------- bigint ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bigint_matches_u128_reference(a in any::<u64>(), b in any::<u64>(), m in 2u64..u64::MAX) {
        let big_a = BigUint::from_u64(a);
        let big_b = BigUint::from_u64(b);
        // Multiplication.
        let prod = big_a.mul(&big_b);
        let expected = (a as u128) * (b as u128);
        let got = prod.limbs().first().copied().unwrap_or(0) as u128
            | ((prod.limbs().get(1).copied().unwrap_or(0) as u128) << 64);
        prop_assert_eq!(got, expected);
        // Remainder.
        let r = prod.rem(&BigUint::from_u64(m));
        prop_assert_eq!(r.limbs().first().copied().unwrap_or(0), (expected % m as u128) as u64);
    }

    #[test]
    fn bigint_modpow_matches_naive(base in 1u64..1000, exp in 0u64..64, m in 2u64..100_000) {
        let (r, squares, _) = BigUint::from_u64(base)
            .modpow_counted(&BigUint::from_u64(exp), &BigUint::from_u64(m));
        // Naive reference.
        let mut acc: u128 = 1;
        for i in (0..64u32).rev() {
            acc = acc * acc % m as u128;
            if (exp >> i) & 1 == 1 {
                acc = acc * (base as u128) % m as u128;
            }
        }
        prop_assert_eq!(r.limbs().first().copied().unwrap_or(0), acc as u64);
        if exp > 0 {
            prop_assert_eq!(squares as usize, 64 - exp.leading_zeros() as usize);
        }
    }
}

// ----------------------------------------------------------------- aes ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_trace_matches_ciphertext(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        let (ct, trace) = aes.encrypt_block_traced(pt);
        let k10 = aes.last_round_key();
        for i in 0..16 {
            prop_assert_eq!(ct[i], SBOX[trace.last_round_indices[i] as usize] ^ k10[i]);
        }
    }

    #[test]
    fn aes_is_deterministic_and_key_sensitive(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.encrypt_block(pt), aes.encrypt_block(pt));
        let mut key2 = key;
        key2[0] ^= 1;
        prop_assert_ne!(Aes128::new(key2).encrypt_block(pt), aes.encrypt_block(pt));
    }
}

// -------------------------------------------------------------- engine ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fabric_rates_respect_capacities(
        sm_picks in proptest::collection::vec(0u32..80, 1..10),
        slice in 0u32..32,
    ) {
        let dev = GpuDevice::v100(0);
        let flows: Vec<FlowSpec> = sm_picks
            .iter()
            .map(|&sm| FlowSpec {
                sm: SmId::new(sm),
                slice: SliceId::new(slice),
                kind: AccessKind::ReadHit,
            })
            .collect();
        let sol = dev.solve_bandwidth(&flows);
        // No negative or runaway rates, and the shared slice never exceeds
        // its calibrated capacity.
        for &r in &sol.rates_gbps {
            prop_assert!(r >= 0.0);
            prop_assert!(r <= dev.calibration().flow_port_gbps + 1e-6);
        }
        prop_assert!(sol.total_gbps <= dev.calibration().slice_gbps + 1e-6);
    }

    #[test]
    fn hit_latency_is_within_physical_bounds(sm in 0u32..80, slice in 0u32..32) {
        let dev = GpuDevice::v100(0);
        let lat = dev.hit_cycles_mean(SmId::new(sm), SliceId::new(slice));
        let c = dev.calibration();
        let max_wire = 2.0 * c.cycles_per_mm
            * (dev.spec().die_width_mm + dev.spec().die_height_mm);
        prop_assert!(lat >= c.base_hit_cycles);
        prop_assert!(lat <= c.base_hit_cycles + max_wire);
    }
}

// ----------------------------------------------------------------- noc ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mesh_conserves_packets(
        injections in proptest::collection::vec((0u32..9, 0u32..9), 1..20),
        arbiter in prop_oneof![Just(ArbiterKind::RoundRobin), Just(ArbiterKind::AgeBased)],
    ) {
        let mut mesh = Mesh::new(MeshConfig {
            width: 3,
            height: 3,
            buffer_packets: 4,
            arbiter,
            route_order: RouteOrder::Xy,
            vcs: 1,
        });
        let mut accepted = 0u64;
        for (src, dst) in injections {
            if mesh.try_inject(NodeId::new(src), NodeId::new(dst), 1, PacketClass::Request) {
                accepted += 1;
            }
            mesh.step();
        }
        // Everything injected eventually drains with no duplication or loss.
        mesh.run(500);
        prop_assert_eq!(mesh.stats().delivered_total, accepted);
        let per_src: u64 = mesh.stats().delivered_by_src.iter().sum();
        prop_assert_eq!(per_src, accepted);
        prop_assert_eq!(mesh.drain_ejected().len() as u64, accepted);
    }
}

// ------------------------------------------------------------ scheduler ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_seed_schedule_is_a_rotation(blocks in 1usize..40, sms in 1u32..32, seed in any::<u64>()) {
        use gnoc_core::CtaScheduler;
        use rand::SeedableRng;
        let sm_list: Vec<SmId> = (0..sms).map(SmId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assignment = CtaScheduler::RandomSeed.assign(blocks, &sm_list, &mut rng);
        prop_assert_eq!(assignment.len(), blocks);
        let start = assignment[0].index();
        for (b, sm) in assignment.iter().enumerate() {
            prop_assert_eq!(sm.index(), (start + b) % sm_list.len());
        }
    }

    #[test]
    fn address_hash_is_stable_and_in_range(line in any::<u64>()) {
        let spec = GpuSpec::v100();
        let map = gnoc_core::AddressMap::new(&spec.hierarchy(), spec.cache_policy);
        let s1 = map.home_slice(line);
        let s2 = map.home_slice(line);
        prop_assert_eq!(s1, s2);
        prop_assert!(s1.index() < 32);
    }
}
