//! Integration tests for the multi-GPU fabric (`gnoc-fabric`) through the
//! `gnoc_core` facade.
//!
//! Four contracts are pinned here, complementing the fabric crate's unit
//! tests by running against *generated* fault plans over the full device
//! range:
//!
//! 1. **Exactly-once-or-reported-lost.** Over 2–8 devices, every topology,
//!    and generated inter-device fault plans (dead/flaky fabric links, dead
//!    devices, onsets), every submitted transfer resolves to exactly one of
//!    `Delivered` or `Lost {reason}` — and the stats counters agree with
//!    the per-transfer outcomes exactly.
//! 2. **Failover replay is bit-identical.** The same config, plan, and
//!    traffic seed produce byte-for-byte equal outcome vectors, stats, and
//!    quiescence cycles on re-execution, faults and reroutes included.
//! 3. **Ring failover takes the long way within a latency bound.** With
//!    the direct link dead, a ring delivers 100% of the severed pair's
//!    traffic over the 3-hop detour, and the latency uplift stays within
//!    the serialization bound of two extra link crossings.
//! 4. **Recording is read-only and the stall identity spans the fabric.**
//!    A profiled multi-device run returns bit-identical outcomes/stats to
//!    an unprofiled one, and for every delivered message `source_wait +
//!    stalls + transit == latency` holds exactly, with cross-device time
//!    charged to the `fabric_hop` stall class.

use gnoc_core::faults::{FabricLinkFault, LinkFaultKind};
use gnoc_core::noc::{LossReason, NodeId, PacketClass, TransferOutcome};
use gnoc_core::{
    FabricConfig, FabricSim, FabricTopology, FaultGenConfig, FaultPlan, ProfileReport,
};
use proptest::prelude::*;

/// splitmix64 step — the same deterministic traffic recipe the CLI drives.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform-random cross-die traffic over every device pair.
fn submit_traffic(sim: &mut FabricSim, devices: u32, seed: u64, transfers: usize) {
    let nodes = (sim.config().mesh.width * sim.config().mesh.height) as u64;
    let mut state = seed;
    let mut submitted = 0;
    while submitted < transfers {
        let src_dev = (mix(&mut state) % u64::from(devices)) as u32;
        let dst_dev = (mix(&mut state) % u64::from(devices)) as u32;
        let src = (mix(&mut state) % nodes) as u32;
        let dst = (mix(&mut state) % nodes) as u32;
        if src_dev == dst_dev && src == dst {
            continue;
        }
        let flits = 1 + (mix(&mut state) % 4) as u32;
        sim.submit(
            src_dev,
            NodeId::new(src),
            dst_dev,
            NodeId::new(dst),
            flits,
            PacketClass::Request,
        )
        .expect("generated endpoints are in range");
        submitted += 1;
    }
}

/// A generated plan whose fabric atoms fit `devices` on `topology`: the
/// generator's own connectivity guarantee keeps surviving devices routable.
#[allow(clippy::too_many_arguments)] // mirrors the FaultGenConfig knobs
fn fabric_plan(
    seed: u64,
    devices: u32,
    topology: FabricTopology,
    dead: u32,
    flaky: u32,
    drop_prob: f64,
    dead_devices: u32,
    onset: u64,
) -> FaultPlan {
    let mut cfg = FaultGenConfig::benign(seed, 5, 5);
    cfg.devices = devices;
    cfg.fabric_topology = topology;
    cfg.dead_fabric_links = dead;
    cfg.flaky_fabric_links = flaky;
    cfg.fabric_flaky_drop_prob = drop_prob;
    cfg.dead_devices = dead_devices;
    cfg.onset = onset;
    FaultPlan::generate(&cfg)
}

fn topology_for(idx: usize, devices: u32) -> FabricTopology {
    if idx == 4 && devices == 2 {
        return FabricTopology::PointToPoint;
    }
    [
        FabricTopology::Line,
        FabricTopology::Ring,
        FabricTopology::FullyConnected,
        FabricTopology::Switch,
    ][idx % 4]
}

fn run_soak(
    devices: u32,
    topology: FabricTopology,
    plan: &FaultPlan,
    seed: u64,
    transfers: usize,
) -> FabricSim {
    let mut sim = FabricSim::with_faults(FabricConfig::new(devices, topology), plan)
        .expect("generated plans validate for their own fabric");
    submit_traffic(&mut sim, devices, seed, transfers);
    assert!(
        sim.run_until_quiescent(400_000),
        "retry budgets and the watchdog bound every transfer's lifetime"
    );
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_transfer_delivers_exactly_once_or_reports_loss(
        devices in 2u32..=8,
        topo_idx in 0usize..5,
        seed in 0u64..1_000,
        dead in 0u32..=2,
        flaky in 0u32..=2,
        drop_prob in 0.05f64..0.9,
        dead_devices in 0u32..=1,
        onset in 0u64..400,
    ) {
        let topology = topology_for(topo_idx, devices);
        let plan = fabric_plan(
            seed, devices, topology, dead, flaky, drop_prob, dead_devices, onset,
        );
        let sim = run_soak(devices, topology, &plan, seed ^ 0xfab, 32);
        let outcomes = sim.outcomes();
        prop_assert_eq!(outcomes.len(), 32);
        let mut delivered = 0u64;
        let mut lost = 0u64;
        for o in &outcomes {
            match o {
                TransferOutcome::Delivered { .. } => delivered += 1,
                TransferOutcome::Lost { .. } => lost += 1,
                other => prop_assert!(
                    false,
                    "unresolved transfer after quiescence: {other:?}"
                ),
            }
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.submitted, 32);
        prop_assert_eq!(stats.delivered, delivered);
        prop_assert_eq!(stats.lost_total(), lost);
        prop_assert_eq!(delivered + lost, 32);
        // Without dead devices or a dead switch, the generator's
        // connectivity guarantee means nothing may be reported partitioned.
        if dead_devices == 0 {
            prop_assert_eq!(stats.lost_partitioned, 0);
        }
    }

    #[test]
    fn failover_replay_is_bit_identical(
        devices in 2u32..=6,
        topo_idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let topology = topology_for(topo_idx, devices);
        // Always at least one dead and one flaky link: the replayed run
        // must reproduce the reroutes and retry draws, not just the happy
        // path.
        let plan = fabric_plan(seed, devices, topology, 1, 1, 0.35, 0, 100);
        let a = run_soak(devices, topology, &plan, seed, 24);
        let b = run_soak(devices, topology, &plan, seed, 24);
        prop_assert_eq!(a.outcomes(), b.outcomes());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.cycle(), b.cycle());
    }
}

#[test]
fn ring_dead_link_takes_the_long_way_within_a_latency_bound() {
    let run = |plan: &FaultPlan| {
        let mut sim = FabricSim::with_faults(FabricConfig::new(4, FabricTopology::Ring), plan)
            .expect("plan fits the ring");
        // Traffic exclusively over the 0<->1 pair, so every transfer is
        // forced onto the detour once the direct link dies.
        for i in 0..12u32 {
            sim.submit(
                0,
                NodeId::new(i),
                1,
                NodeId::new(24 - i),
                2,
                PacketClass::Request,
            )
            .expect("in-range endpoints");
        }
        assert!(sim.run_until_quiescent(200_000));
        sim
    };

    let benign = run(&FaultPlan::none());
    let mut plan = FaultPlan::none();
    plan.fabric.links.push(FabricLinkFault {
        a: 0,
        b: 1,
        kind: LinkFaultKind::Dead,
        onset: 0,
    });
    let faulted = run(&plan);

    assert_eq!(benign.stats().delivered, 12);
    assert_eq!(benign.stats().fabric_hops, 12, "direct route is one hop");
    assert_eq!(
        faulted.stats().delivered,
        12,
        "a ring survives one dead link"
    );
    assert_eq!(faulted.stats().lost_total(), 0);
    assert_eq!(
        faulted.stats().fabric_hops,
        36,
        "the 0->3->2->1 detour is three hops per transfer"
    );
    // Latency bound: the detour adds two link crossings per transfer. With
    // link_latency 8 and 2-flit serialization at flit_cycles 4, that is at
    // most 2 * (8 + 8) = 32 extra transit cycles plus detour queueing, for
    // which 12 serialized transfers give 12 * 16 cycles of headroom.
    let bound = benign.stats().latency_max + 32 + 12 * 16;
    assert!(
        faulted.stats().latency_max <= bound,
        "detour latency {} exceeds bound {bound}",
        faulted.stats().latency_max
    );
}

#[test]
fn profiled_multi_device_run_is_bit_identical_and_charges_fabric_hops() {
    let plan = fabric_plan(7, 4, FabricTopology::Ring, 1, 1, 0.3, 0, 50);
    let run = |record: bool| {
        let mut sim = FabricSim::with_faults(FabricConfig::new(4, FabricTopology::Ring), &plan)
            .expect("plan fits the ring");
        if record {
            sim.attach_flight_recorder();
        }
        submit_traffic(&mut sim, 4, 99, 48);
        assert!(sim.run_until_quiescent(400_000));
        let rec = sim.take_flight_recorder();
        (sim.outcomes(), sim.stats().clone(), rec)
    };

    let (bare_out, bare_stats, _) = run(false);
    let (rec_out, rec_stats, rec) = run(true);
    assert_eq!(bare_out, rec_out, "recording must not perturb outcomes");
    assert_eq!(bare_stats, rec_stats, "recording must not perturb stats");

    let rec = rec.expect("recorder attached");
    assert_eq!(rec.open_count(), 0, "every recorded message finished");
    let mut fabric_time = 0u64;
    for m in rec.finished() {
        if m.delivered {
            assert_eq!(
                m.components_sum(),
                m.latency(),
                "stall identity must hold across fabric hops for msg {}",
                m.id
            );
        }
        fabric_time += m.stalls().fabric_hop;
    }
    assert!(
        fabric_time > 0,
        "cross-device time must be charged to the fabric_hop stall class"
    );
    // The recorder reduces into the profile layer over the fabric node
    // graph (4 devices on a ring = 4 fabric nodes).
    let report = ProfileReport::from_recorder(&rec, 4, 1, rec_stats.latency_max.max(1), 5);
    assert!(report.messages > 0);
}

#[test]
fn partition_loss_is_reported_as_partitioned_not_unroutable() {
    // One device dies at cycle 0 on a 3-device line (the generator keeps
    // device 0 alive): traffic touching the dead device — or cut off
    // behind it — must be lost as `Partitioned`, never `Unroutable`.
    let plan = fabric_plan(3, 3, FabricTopology::Line, 0, 0, 0.0, 1, 0);
    assert!(!plan.fabric.dead_devices().is_empty());
    let sim = run_soak(3, FabricTopology::Line, &plan, 17, 32);
    let stats = sim.stats();
    assert!(
        stats.lost_partitioned > 0,
        "dead-device traffic must be lost"
    );
    for o in sim.outcomes() {
        if let TransferOutcome::Lost { reason } = o {
            assert_eq!(
                reason,
                LossReason::Partitioned,
                "device loss severs, it does not misroute"
            );
        }
    }
}
