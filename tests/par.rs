//! Cross-crate determinism tests for the parallel execution layer: the
//! parallel campaign and analysis paths must be bit-identical to their
//! serial counterparts for every worker count, and a panicking task must
//! never leak workers or deadlock the pool.

use gnoc_core::{resolve_jobs, CheckpointedCampaign, LatencyCampaign, LatencyProbe, WorkerPool};
use proptest::prelude::*;

fn quick_probe() -> LatencyProbe {
    LatencyProbe {
        working_set_lines: 2,
        samples: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ordered `par_map` contract: results land in input order for any
    /// worker count, bit-identical to a plain serial map.
    #[test]
    fn par_map_is_ordered_for_any_jobs(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        jobs in 1usize..9,
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31).rotate_left(7)).collect();
        let pool = WorkerPool::new(jobs);
        let got = pool.par_map(&items, |&x| x.wrapping_mul(31).rotate_left(7));
        prop_assert_eq!(got, expect);
    }

    /// Parallel correlation matrices match serial ones bit for bit.
    #[test]
    fn correlation_matrix_par_matches_serial(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 4..10),
            2..8,
        ),
        jobs in 1usize..9,
    ) {
        let n = rows.iter().map(Vec::len).min().unwrap();
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|r| r[..n].to_vec()).collect();
        let serial = gnoc_core::correlation_matrix(&rows);
        let pool = WorkerPool::new(jobs);
        prop_assert_eq!(
            gnoc_core::analysis::correlation_matrix_par(&rows, &pool),
            serial
        );
    }
}

/// The tentpole determinism guarantee: a parallel campaign is bit-identical
/// across `jobs ∈ {1, 2, 7}` *and* to the serial checkpointed run of the
/// same parameters.
#[test]
fn parallel_campaign_is_bit_identical_across_job_counts_and_to_serial() {
    let probe = quick_probe();
    let mut serial = CheckpointedCampaign::new("v100", 11, probe, None).unwrap();
    let reference = serial.run_to_completion(None).unwrap();

    for jobs in [1usize, 2, 7] {
        let pool = WorkerPool::new(jobs);
        let par = LatencyCampaign::run_par("v100", 11, &probe, None, &pool).unwrap();
        assert_eq!(par, reference, "run_par jobs={jobs}");

        let mut ckpt = CheckpointedCampaign::new("v100", 11, probe, None).unwrap();
        let batched = ckpt.run_to_completion_par(None, &pool).unwrap();
        assert_eq!(batched, reference, "run_to_completion_par jobs={jobs}");
    }
}

/// Batched parallel checkpointing resumes bit-identically after a kill, just
/// like the serial per-row path.
#[test]
fn parallel_checkpoint_kill_and_resume_is_bit_identical() {
    let path = std::env::temp_dir().join(format!("gnoc-parckpt-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let probe = quick_probe();
    let pool = WorkerPool::new(4);

    let mut full = CheckpointedCampaign::new("v100", 5, probe, None).unwrap();
    let reference = full.run_to_completion(None).unwrap();

    // Measure a prefix serially, checkpoint, then finish in parallel from
    // the resumed state: the row-seeded scheme makes the splice seamless.
    let mut first = CheckpointedCampaign::new("v100", 5, probe, None).unwrap();
    for _ in 0..13 {
        assert!(first.step_row().unwrap());
    }
    first.save(&path).unwrap();
    drop(first);

    let mut resumed = CheckpointedCampaign::resume(&path, "v100", 5, probe, None).unwrap();
    assert_eq!(resumed.completed_rows(), 13);
    let result = resumed.run_to_completion_par(Some(&path), &pool).unwrap();
    assert_eq!(result, reference);

    let _ = std::fs::remove_file(&path);
}

/// A panicking task poisons the batch, joins every worker (the scope
/// guarantees it — this test would hang forever on a leak), reports the
/// panic as a typed error, and leaves the pool fully reusable.
#[test]
fn pool_survives_task_panics_without_leaking_workers() {
    let pool = WorkerPool::new(4);
    let items: Vec<u64> = (0..100).collect();
    let err = pool
        .try_par_map(&items, |&x| {
            if x % 10 == 3 {
                panic!("injected failure at {x}");
            }
            x
        })
        .unwrap_err();
    assert!(err.message.contains("injected failure"), "{err}");
    assert!(err.task_index % 10 == 3, "{err}");

    // The pool is stateless between batches: the very next call succeeds.
    let ok = pool.par_map(&items, |&x| x + 1);
    assert_eq!(ok.len(), 100);
    assert_eq!(ok[99], 100);

    // par_map (the panicking wrapper) re-raises rather than deadlocking.
    let raised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.par_map(&items, |&x| if x == 7 { panic!("boom") } else { x })
    }));
    assert!(raised.is_err(), "panic must propagate to the caller");
    assert_eq!(pool.par_map(&[1u64], |&x| x), vec![1]);
}

/// `resolve_jobs` is the single knob: flag beats env beats detection.
#[test]
fn jobs_resolution_is_flag_then_env() {
    assert_eq!(resolve_jobs(Some(5)), 5);
    assert_eq!(resolve_jobs(Some(0)), 1);
    // Env interaction is covered in gnoc-par's unit tests (mutating
    // GNOC_JOBS here would race other integration tests in this binary).
    assert!(resolve_jobs(None) >= 1);
}
