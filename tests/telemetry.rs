//! Integration tests for the gnoc-telemetry layer: histogram edge cases,
//! the JSONL trace schema, and end-to-end coverage of all three instrumented
//! subsystems (engine, noc, campaign) on one shared handle.

use gnoc_core::noc::{run_memsim_traced, MemSimConfig};
use gnoc_core::telemetry::{
    parse_jsonl_line, JsonlWriter, LogHistogram, MemorySink, Telemetry, TelemetryHandle,
    SUBSYSTEM_CAMPAIGN, SUBSYSTEM_ENGINE, SUBSYSTEM_NOC,
};
use gnoc_core::{GpuDevice, LatencyCampaign, LatencyProbe, MetricRegistry};

fn tiny_memsim() -> MemSimConfig {
    MemSimConfig {
        warmup: 200,
        measure: 1_000,
        ..MemSimConfig::underprovisioned()
    }
}

#[test]
fn empty_histogram_reports_nothing() {
    let h = LogHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.mean(), None);
    assert_eq!(h.quantile(0.5), None);
}

#[test]
fn single_sample_histogram_pins_every_statistic() {
    let mut h = LogHistogram::new();
    h.record(42);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 42);
    assert_eq!(h.min(), Some(42));
    assert_eq!(h.max(), Some(42));
    assert_eq!(h.mean(), Some(42.0));
    // Every quantile of a one-sample distribution is that sample's bucket;
    // log-scale buckets are approximate but must bracket the value.
    for q in [0.0, 0.5, 0.99, 1.0] {
        let v = h.quantile(q).unwrap();
        assert!((21.0..=84.0).contains(&v), "q{q} = {v}");
    }
}

#[test]
fn merged_histograms_match_recording_into_one() {
    let mut a = LogHistogram::new();
    let mut b = LogHistogram::new();
    let mut whole = LogHistogram::new();
    for v in [1u64, 7, 30, 200, 5_000] {
        a.record(v);
        whole.record(v);
    }
    for v in [2u64, 90, 1_000_000] {
        b.record(v);
        whole.record(v);
    }
    a.merge(&b);
    assert_eq!(a, whole);
    assert_eq!(a.count(), 8);
    assert_eq!(a.min(), Some(1));
    assert_eq!(a.max(), Some(1_000_000));
}

#[test]
fn quantiles_are_monotone_and_bracketed() {
    let mut h = LogHistogram::new();
    for v in 1..=1_000u64 {
        h.record(v);
    }
    let mut prev = 0.0;
    for i in 0..=20 {
        let q = i as f64 / 20.0;
        let v = h.quantile(q).unwrap();
        assert!(v >= prev, "quantiles must be monotone: q{q} = {v} < {prev}");
        prev = v;
    }
    // Log-scale buckets: p50 of uniform 1..=1000 lands near 500 within a
    // bucket's relative error.
    let p50 = h.quantile(0.5).unwrap();
    assert!((250.0..=1000.0).contains(&p50), "p50 = {p50}");
}

#[test]
fn memsim_trace_round_trips_through_jsonl_schema() {
    // Golden-schema check: a short traced memsim run streamed to a JSONL
    // file parses back line-by-line into TraceEvents with the expected
    // subsystem tags and fields.
    let path = std::env::temp_dir().join(format!(
        "gnoc-telemetry-schema-{}.jsonl",
        std::process::id()
    ));
    {
        let mut t = Telemetry::new();
        t.set_sink(Box::new(JsonlWriter::create(&path).expect("temp jsonl")));
        let telemetry = TelemetryHandle::attach(t);
        run_memsim_traced(tiny_memsim(), 9, telemetry.clone());
        telemetry.flush();
    }
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);
    let events: Vec<_> = text
        .lines()
        .map(|l| parse_jsonl_line(l).expect("every line is a valid TraceEvent"))
        .collect();
    assert!(!events.is_empty(), "traced memsim must emit events");
    assert!(events.iter().all(|e| e.subsystem == SUBSYSTEM_NOC));
    assert!(events
        .iter()
        .any(|e| e.event == "utilization_window" && e.field("utilization").is_some()));
    assert!(events
        .iter()
        .any(|e| e.event == "queue_depth" && e.field("router").is_some()));
    // Window events carry the mesh cycle as the virtual timestamp.
    assert!(events.iter().all(|e| e.cycle > 0));
}

#[test]
fn one_handle_collects_all_three_subsystems() {
    // The acceptance check behind `--trace`/`--metrics`: an engine-level
    // campaign and a NoC-level memsim feeding one shared handle produce
    // non-zero counters tagged by all three subsystems.
    let sink = MemorySink::new();
    let telemetry = TelemetryHandle::attach(Telemetry::with_sink(Box::new(sink.clone())));

    let mut dev = GpuDevice::v100(5);
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 2,
    };
    LatencyCampaign::run_traced(&mut dev, &probe, &telemetry);
    run_memsim_traced(tiny_memsim(), 5, telemetry.clone());

    let reg = telemetry.snapshot_registry().unwrap();
    assert!(reg.counter("engine.reads") > 0, "engine subsystem");
    assert!(reg.counter("noc.memsim.requests") > 0, "noc subsystem");
    assert!(
        reg.counter("campaign.sm_profiles") > 0,
        "campaign subsystem"
    );

    let events = sink.snapshot();
    for subsystem in [SUBSYSTEM_ENGINE, SUBSYSTEM_NOC, SUBSYSTEM_CAMPAIGN] {
        assert!(
            events.iter().any(|e| e.subsystem == subsystem),
            "expected events from {subsystem}"
        );
    }

    // The registry survives a JSON round trip (the `--metrics` file format).
    let back = MetricRegistry::from_json(&reg.to_json_pretty()).unwrap();
    assert_eq!(back, reg);
}
