//! End-to-end pipelines that exercise several crates together, beyond the
//! per-observation checks: slice-map reverse engineering feeding the latency
//! probe, workloads feeding the fabric solver, and full-device campaigns on
//! custom (non-preset) devices.

use gnoc_core::engine::LINE_BYTES;
use gnoc_core::microbench::slicemap;
use gnoc_core::topo::{HierarchySpec, SmEnumeration};
use gnoc_core::workloads::streaming;
use gnoc_core::{AccessKind, GpcId, GpuDevice, GpuSpec, LatencyProbe, PartitionId, SliceId, SmId};

#[test]
fn slicemap_feeds_latency_probe_on_v100() {
    // Reverse engineer the address→slice map via profiler counters, then use
    // a recovered class as the latency probe's working set — the exact
    // methodology pipeline of Algorithm 1.
    let mut dev = GpuDevice::v100(31);
    let sm = SmId::new(10);
    let lines: Vec<u64> = (0..64).collect();
    let classes = slicemap::classify_lines(&mut dev, sm, &lines);
    assert!(classes.len() > 8, "expected many slices touched");

    let (rep, members) = &classes[0];
    let slice = dev.effective_slice(sm, *rep);
    for &line in members {
        dev.warm_line(sm, line);
    }
    let measured: f64 = members
        .iter()
        .map(|&l| dev.timed_read(sm, l) as f64)
        .sum::<f64>()
        / members.len() as f64;
    let model = dev.hit_cycles_mean(sm, slice);
    assert!(
        (measured - model).abs() < 6.0,
        "recovered-class latency {measured} vs model {model}"
    );
}

#[test]
fn contention_slicemap_works_without_profiler_counters() {
    // The A100/H100 fallback (paper footnote 1) classifies addresses without
    // per-slice counters; verify against the device's ground truth.
    let mut dev = GpuDevice::a100(32);
    let sm = SmId::new(0);
    let lines: Vec<u64> = (0..10).collect();
    let classes = slicemap::classify_lines(&mut dev, sm, &lines);
    for (_, members) in &classes {
        let s0 = dev.effective_slice(sm, members[0]);
        for &l in members {
            assert_eq!(dev.effective_slice(sm, l), s0);
        }
    }
}

#[test]
fn streaming_workload_through_fabric_matches_direct_aggregate() {
    let mut dev = GpuDevice::a100(33);
    let flows = streaming::flow_set(&dev, AccessKind::ReadHit);
    let via_workload = dev.solve_bandwidth(&flows).total_gbps;
    let direct = gnoc_core::microbench::bandwidth::aggregate_fabric_gbps(&mut dev);
    assert!(
        (via_workload - direct).abs() / direct < 0.02,
        "workload path {via_workload} vs direct {direct}"
    );
}

#[test]
fn custom_device_runs_the_full_pipeline() {
    // A what-if device: 4 GPCs, single partition, 4 MPs — the architectural
    // exploration use case.
    let spec = GpuSpec::custom(
        "mini",
        HierarchySpec {
            gpc_cpc_tpcs: vec![vec![4], vec![4], vec![4], vec![4]],
            sms_per_tpc: 2,
            gpc_partition: vec![PartitionId::new(0); 4],
            num_partitions: 1,
            num_mps: 4,
            slices_per_mp: 4,
            mp_partition: vec![PartitionId::new(0); 4],
            sm_enumeration: SmEnumeration::GpcMajor,
        },
    );
    let mut dev = GpuDevice::with_seed(spec, 0).expect("valid custom spec");
    assert_eq!(dev.hierarchy().num_sms(), 32);

    // Latency probe works.
    let probe = LatencyProbe::default();
    let profile = probe.sm_profile(&mut dev, SmId::new(0));
    assert_eq!(profile.len(), 16);
    assert!(profile.iter().all(|&l| l > 150.0));

    // Bandwidth solver works and respects the (Volta-default) slice caps.
    let sms: Vec<SmId> = dev.hierarchy().sms_in_gpc(GpcId::new(0)).to_vec();
    let bw = gnoc_core::microbench::bandwidth::sms_to_slice_gbps(&mut dev, &sms, SliceId::new(0));
    assert!((60.0..90.0).contains(&bw), "{bw}");
}

#[test]
fn l2_capacity_is_respected_end_to_end() {
    // Working sets beyond L2 capacity start missing again (FIFO eviction):
    // warm more lines than fit, then re-read the first one.
    let mut spec = GpuSpec::v100();
    spec.l2_mib = 1; // shrink L2 to 8192 lines for test speed
    let mut dev = GpuDevice::with_seed(spec, 0).expect("valid");
    let capacity_lines = (1u64 << 20) / LINE_BYTES;
    let sm = SmId::new(0);
    dev.warm_line(sm, 0);
    for line in 1..=capacity_lines {
        dev.warm_line(sm, line);
    }
    let t = dev.timed_read(sm, 0);
    assert!(t > 330, "line 0 should have been evicted: {t} cycles");
}

#[test]
fn h100_partition_local_pipeline() {
    // On H100 the same address is served by different slices for SMs on
    // different partitions, and both partitions keep independent copies.
    let mut dev = GpuDevice::h100(34);
    let h = dev.hierarchy().clone();
    let left = h.sms_in_partition(PartitionId::new(0))[0];
    let right = h.sms_in_partition(PartitionId::new(1))[0];
    let line = 777u64;
    let sl = dev.effective_slice(left, line);
    let sr = dev.effective_slice(right, line);
    assert_ne!(
        h.slice(sl).partition,
        h.slice(sr).partition,
        "partition-local caching"
    );
    // Warm from the left; the right still misses; then both hit.
    dev.warm_line(left, line);
    let hit_left = dev.timed_read(left, line);
    let miss_right = dev.timed_read(right, line);
    let hit_right = dev.timed_read(right, line);
    assert!(miss_right > hit_right + 100);
    assert!(hit_left < 300);
}

#[test]
fn seeded_devices_are_fully_reproducible_across_the_stack() {
    let run = |seed: u64| -> (Vec<f64>, f64) {
        let mut dev = GpuDevice::a100(seed);
        let probe = LatencyProbe {
            working_set_lines: 2,
            samples: 4,
        };
        let profile = probe.sm_profile(&mut dev, SmId::new(5));
        let bw = gnoc_core::microbench::bandwidth::sms_to_slice_gbps(
            &mut dev,
            &[SmId::new(5)],
            SliceId::new(3),
        );
        (profile, bw)
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}
