//! Integration tests asserting every numbered Observation of the paper
//! (Sections III and IV) end-to-end: methodology (`gnoc-microbench`) against
//! the virtual devices (`gnoc-engine`), analysed with `gnoc-analysis`.

use gnoc_core::microbench::bandwidth::{
    aggregate_fabric_gbps, aggregate_memory_gbps, sm_slice_profile_gbps, sms_to_slice_gbps,
};
use gnoc_core::microbench::sm2sm::cpc_latency_matrix;
use gnoc_core::workloads::{bfs, gaussian, trace};
use gnoc_core::{
    analysis, input_speedups, AccessKind, GpcId, GpuDevice, LatencyProbe, MpId, PartitionId,
    SliceId, SmId, Summary,
};

fn probe() -> LatencyProbe {
    LatencyProbe {
        working_set_lines: 2,
        samples: 6,
    }
}

#[test]
fn observation_01_latency_to_slices_is_nonuniform() {
    let mut dev = GpuDevice::v100(1);
    let p = probe();
    for sm in [SmId::new(24), SmId::new(0), SmId::new(61)] {
        let profile = p.sm_profile(&mut dev, sm);
        let s = Summary::of(&profile);
        assert!(
            s.span() > 30.0,
            "{sm}: latency should be non-uniform, got {s}"
        );
        // Paper Fig. 1a magnitudes: 175..248 cycles, mean ≈ 212.
        assert!(
            s.min > 168.0 && s.max < 265.0 && (195.0..228.0).contains(&s.mean),
            "{s}"
        );
    }
}

#[test]
fn observation_02_gpc_averages_similar_but_variation_differs() {
    let mut dev = GpuDevice::v100(2);
    let p = probe();
    let mut means = Vec::new();
    let mut sds = Vec::new();
    for g in 0..6 {
        let sms = dev.hierarchy().sms_in_gpc(GpcId::new(g)).to_vec();
        let mut all = Vec::new();
        for sm in sms {
            all.extend(p.sm_profile(&mut dev, sm));
        }
        let s = Summary::of(&all);
        means.push(s.mean);
        sds.push(s.stddev);
    }
    // Averages are similar across GPCs…
    let mean_summary = Summary::of(&means);
    assert!(
        mean_summary.span() / mean_summary.mean < 0.06,
        "per-GPC means too different: {means:?}"
    );
    // …but the variation differs: central GPCs (2, 3) are the tightest
    // (paper: GPC0 σ≈13.9 vs GPC2 σ≈7.5).
    let central = sds[2].min(sds[3]);
    let edge = sds[0].max(sds[4]);
    assert!(
        edge > 1.4 * central,
        "edge GPC σ {edge:.1} should exceed central σ {central:.1}"
    );
}

#[test]
fn observation_03_sorted_slice_order_is_identical_across_sms() {
    // Fig. 3: group slices by MP, sort by latency; the order matches across
    // SMs even though absolute values shift.
    let mut dev = GpuDevice::v100(3);
    let p = LatencyProbe {
        working_set_lines: 2,
        samples: 24, // averaging suppresses jitter-induced swaps
    };
    let h = dev.hierarchy().clone();
    let group_of: Vec<usize> = (0..32)
        .map(|s| h.slice(SliceId::new(s)).mp.index())
        .collect();
    let orders: Vec<Vec<Vec<usize>>> = [SmId::new(60), SmId::new(24), SmId::new(64)]
        .into_iter()
        .map(|sm| {
            let profile = p.sm_profile(&mut dev, sm);
            analysis::sorted_members_by_group(&profile, &group_of, 8)
        })
        .collect();
    let agree_01 = analysis::group_order_agreement(&orders[0], &orders[1]);
    let agree_02 = analysis::group_order_agreement(&orders[0], &orders[2]);
    assert!(agree_01 >= 0.75, "same-trend order agreement {agree_01}");
    assert!(agree_02 >= 0.75, "same-trend order agreement {agree_02}");
}

#[test]
fn observation_04_pearson_correlation_reveals_placement() {
    let mut dev = GpuDevice::v100(4);
    let campaign = gnoc_core::LatencyCampaign::run(&mut dev, &probe());
    let report = gnoc_core::infer_placement(&campaign, &dev, 2.5);
    assert!(
        report.position_recovery_r > 0.75,
        "profile similarity should track physical proximity: {}",
        report.position_recovery_r
    );
    assert_eq!(report.gpc_rand_index, 1.0, "column groups fully recovered");
}

#[test]
fn observation_05_h100_exposes_a_cpc_hierarchy() {
    let mut dev = GpuDevice::h100(5);
    let m = cpc_latency_matrix(&mut dev, GpcId::new(0), 4).expect("H100 has the network");
    assert_eq!(m.len(), 3, "three CPCs per GPC");
    // Fig. 7b: intra-CPC0 fastest (≈196), intra-CPC2 slowest (≈213).
    assert!((190.0..204.0).contains(&m[0][0]), "{:?}", m[0][0]);
    assert!(m[2][2] > m[0][0] + 8.0, "CPC distance must show: {m:?}");
    // V100 and A100 have no such network.
    assert!(cpc_latency_matrix(&mut GpuDevice::v100(0), GpcId::new(0), 1).is_none());
    assert!(cpc_latency_matrix(&mut GpuDevice::a100(0), GpcId::new(0), 1).is_none());
}

#[test]
fn observation_06_partitioned_gpus_have_policy_dependent_uniformity() {
    let p = probe();

    // A100: far-partition hits ≈ 400 cycles, near ≈ V100-like (Fig. 8b).
    let mut a100 = GpuDevice::a100(6);
    let h = a100.hierarchy().clone();
    let near_sm = h.sms_in_partition(PartitionId::new(0))[0];
    let mp0_slices = h.slices_in_mp(MpId::new(0)).to_vec();
    let near: f64 = mp0_slices
        .iter()
        .map(|&s| p.measure_pair(&mut a100, near_sm, s))
        .sum::<f64>()
        / mp0_slices.len() as f64;
    let far_sm = h.sms_in_partition(PartitionId::new(1))[0];
    let far: f64 = mp0_slices
        .iter()
        .map(|&s| p.measure_pair(&mut a100, far_sm, s))
        .sum::<f64>()
        / mp0_slices.len() as f64;
    assert!((180.0..245.0).contains(&near), "near {near}");
    assert!((350.0..450.0).contains(&far), "far {far}");

    // H100: hit latency uniform across GPCs (partition-local caching,
    // Fig. 8c), miss penalty variable (Fig. 8f).
    let mut h100 = GpuDevice::h100(6);
    let hh = h100.hierarchy().clone();
    let mut gpc_means = Vec::new();
    for g in 0..8 {
        let sm = hh.sms_in_gpc(GpcId::new(g))[0];
        let profile = p.sm_profile(&mut h100, sm);
        gpc_means.push(Summary::of(&profile).mean);
    }
    let s = Summary::of(&gpc_means);
    assert!(
        s.span() / s.mean < 0.08,
        "H100 per-GPC hit means should be uniform: {gpc_means:?}"
    );
    let sm = hh.sms_in_partition(PartitionId::new(0))[0];
    let local_slice = hh.slices_in_partition(PartitionId::new(0))[0];
    let local_mp = hh.mps_in_partition(PartitionId::new(0))[0];
    let remote_mp = hh.mps_in_partition(PartitionId::new(1))[0];
    let near_miss = h100.miss_cycles_mean(sm, local_slice, local_mp);
    let far_miss = h100.miss_cycles_mean(sm, local_slice, remote_mp);
    assert!(far_miss > near_miss + 100.0, "{near_miss} vs {far_miss}");
}

#[test]
fn observation_07_fabric_bandwidth_exceeds_memory_bandwidth() {
    for (name, mut dev) in [
        ("V100", GpuDevice::v100(7)),
        ("A100", GpuDevice::a100(7)),
        ("H100", GpuDevice::h100(7)),
    ] {
        let fabric = aggregate_fabric_gbps(&mut dev);
        let mem = aggregate_memory_gbps(&mut dev);
        let ratio = fabric / mem;
        assert!((2.0..4.0).contains(&ratio), "{name}: ratio {ratio:.2}");
        let peak_frac = mem / dev.spec().mem_peak_gbps;
        assert!(
            (0.82..0.93).contains(&peak_frac),
            "{name}: memory at {peak_frac:.2} of peak"
        );
    }
}

#[test]
fn observation_08_bandwidth_is_uniform_where_latency_is_not() {
    let mut dev = GpuDevice::v100(8);
    let p = probe();
    let lat = Summary::of(&p.sm_profile(&mut dev, SmId::new(0)));
    let bw = Summary::of(&sm_slice_profile_gbps(&mut dev, SmId::new(0)));
    assert!(lat.cv() > 0.05, "latency CV {:.3}", lat.cv());
    assert!(bw.cv() < 0.02, "bandwidth CV {:.3}", bw.cv());
    // Paper magnitudes: ≈34 GB/s single SM (σ≈0.15), ≈85 GB/s per GPC slice.
    assert!((33.0..35.5).contains(&bw.mean), "{}", bw.mean);
    let gpc_sms = dev.hierarchy().sms_in_gpc(GpcId::new(1)).to_vec();
    let gpc_bw = sms_to_slice_gbps(&mut dev, &gpc_sms, SliceId::new(2));
    assert!((78.0..90.0).contains(&gpc_bw), "{gpc_bw}");
}

#[test]
fn observation_09_input_speedup_exists_at_every_level() {
    let v100 = GpuDevice::v100(9);
    let r = input_speedups(&v100, AccessKind::ReadHit);
    let w = input_speedups(&v100, AccessKind::Write);
    assert!(r.tpc > 1.9, "TPC read {}", r.tpc);
    assert!((1.0..1.25).contains(&w.tpc), "V100 TPC write {}", w.tpc);
    assert!(r.gpc_local > 3.0, "GPC provides speedup: {}", r.gpc_local);

    let h100 = GpuDevice::h100(9);
    let hw = input_speedups(&h100, AccessKind::Write);
    let frac = hw.gpc_local / hw.gpc_tpcs as f64;
    assert!(frac > 0.75, "H100 approaches full GPC speedup: {frac:.2}");
    assert!(
        (4.0..5.2).contains(&hw.cpc.unwrap()),
        "H100 CPC write speedup {}",
        hw.cpc.unwrap()
    );
}

#[test]
fn observation_10_partitions_create_nonuniform_bandwidth() {
    let mut dev = GpuDevice::a100(10);
    let h = dev.hierarchy().clone();
    let near_sms: Vec<SmId> = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let far_sms: Vec<SmId> = h.sms_in_partition(PartitionId::new(1)).to_vec();
    let slice = h.slices_in_partition(PartitionId::new(0))[0];
    // One SM: far clearly lower (Fig. 12/14).
    let near1 = sms_to_slice_gbps(&mut dev, &near_sms[..1], slice);
    let far1 = sms_to_slice_gbps(&mut dev, &far_sms[..1], slice);
    assert!(far1 < 0.8 * near1, "near {near1} far {far1}");
    // Eight SMs: converged (Little's law saturated).
    let near8 = sms_to_slice_gbps(&mut dev, &near_sms[..8], slice);
    let far8 = sms_to_slice_gbps(&mut dev, &far_sms[..8], slice);
    assert!(
        (near8 - far8).abs() / near8 < 0.12,
        "8-SM near {near8} vs far {far8}"
    );
    // And newer GPUs have more per-slice bandwidth than V100's 34 GB/s.
    assert!(near1 > 37.0);
}

#[test]
fn observation_11_sm_balance_matters_more_than_slice_balance() {
    // Fig. 15: distributing SMs across GPCs matters (62 % loss if not);
    // distributing L2 slices across MPs barely matters.
    let dev = GpuDevice::v100(11);
    let h = dev.hierarchy().clone();
    let all_sms: Vec<SmId> = SmId::range(80).collect();

    // (a) all SMs -> 4 slices, same MP vs different MPs: minimal difference.
    let same_mp: Vec<SliceId> = h.slices_in_mp(MpId::new(0)).to_vec();
    let diff_mp: Vec<SliceId> = (0..4).map(|m| h.slices_in_mp(MpId::new(m))[0]).collect();
    let flows = |slices: &[SliceId], sms: &[SmId]| {
        gnoc_core::microbench::bandwidth::cross_flows(sms, slices, AccessKind::ReadHit)
    };
    let bw_same = dev.solve_bandwidth(&flows(&same_mp, &all_sms)).total_gbps;
    let bw_diff = dev.solve_bandwidth(&flows(&diff_mp, &all_sms)).total_gbps;
    assert!(
        (bw_same - bw_diff).abs() / bw_diff < 0.1,
        "contiguous {bw_same} vs distributed {bw_diff} MPs should be close"
    );

    // (b) 28 SMs -> one MP: contiguous (2 GPCs) vs distributed (6 GPCs).
    let contiguous: Vec<SmId> = h
        .sms_in_gpc(GpcId::new(0))
        .iter()
        .chain(h.sms_in_gpc(GpcId::new(1)))
        .copied()
        .collect();
    let distributed: Vec<SmId> = (0..6)
        .flat_map(|g| h.sms_in_gpc(GpcId::new(g))[..5].to_vec())
        .take(28)
        .collect();
    let bw_contig = dev
        .solve_bandwidth(&flows(&same_mp, &contiguous[..28]))
        .total_gbps;
    let bw_dist = dev
        .solve_bandwidth(&flows(&same_mp, &distributed))
        .total_gbps;
    let degradation = 1.0 - bw_contig / bw_dist;
    assert!(
        (0.45..0.75).contains(&degradation),
        "contiguous SMs should lose ≈62 %: contig {bw_contig:.0} dist {bw_dist:.0} (-{:.0} %)",
        degradation * 100.0
    );

    // (c) 14 contiguous SMs: spreading targets from 1 to 4 MPs helps ≈3×
    // ("speedup in space").
    let gpc0: Vec<SmId> = h.sms_in_gpc(GpcId::new(0)).to_vec();
    let one_mp = dev.solve_bandwidth(&flows(&same_mp, &gpc0)).total_gbps;
    let four_mp_slices: Vec<SliceId> = (0..4)
        .flat_map(|m| h.slices_in_mp(MpId::new(m)).to_vec())
        .collect();
    let four_mp = dev
        .solve_bandwidth(&flows(&four_mp_slices, &gpc0))
        .total_gbps;
    let gain = four_mp / one_mp;
    assert!((2.4..4.2).contains(&gain), "1→4 MP gain {gain:.2}");
}

#[test]
fn observation_12_hashed_traffic_is_load_balanced() {
    let dev = GpuDevice::v100(12);
    let map = dev.address_map();
    for t in [
        bfs::generate(bfs::BfsConfig::default(), 3),
        gaussian::generate(gaussian::GaussianConfig::default()),
    ] {
        // Balance is a property of the step's address *footprint*: judge the
        // hash on each step's distinct lines, for steps with enough of them
        // for a statistically meaningful per-slice count (>= ~100/slice).
        let t = gnoc_core::workloads::MemoryTrace {
            name: t.name.clone(),
            steps: t
                .steps
                .iter()
                .map(|step| {
                    let mut lines = step.clone();
                    lines.sort_unstable();
                    lines.dedup();
                    lines
                })
                .collect(),
        };
        let traffic = trace::slice_traffic(&t, map, PartitionId::new(0));
        let imbalance = trace::imbalance_per_step(&traffic, 3_200.0);
        assert!(!imbalance.is_empty(), "{}: no busy steps", t.name);
        for (i, imb) in imbalance.iter().enumerate() {
            // Memory camping would put the whole step on a few slices
            // (imbalance of several ×); hashing keeps every busy step within
            // tens of percent of a flat distribution.
            assert!(
                *imb < 1.6,
                "{} step {i}: slice imbalance {imb:.2} (hashing should balance)",
                t.name
            );
        }
    }
}
