//! Integration tests asserting the paper's six Implications (Sections V
//! and VI) across crates.

use gnoc_core::noc::{
    priorwork, run_fairness, run_memsim, ArbiterKind, Crossbar, CrossbarConfig, FairnessConfig,
    MemSimConfig, NodeId, PacketClass,
};
use gnoc_core::sidechannel::timing::{two_sm_op_cycles, warp_read_cycles};
use gnoc_core::{
    infer_placement, run_aes_attack, run_rsa_attack, AesAttackConfig, CtaScheduler, GpuDevice,
    LatencyCampaign, LatencyProbe, PartitionId, RsaAttackConfig, SmId,
};

const KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

#[test]
fn implication_1_noc_characterisation_reveals_core_placement() {
    // An attacker can recover placement information for co-location purely
    // from L2 latency measurements, on old and new devices alike.
    for mut dev in [GpuDevice::v100(21), GpuDevice::a100(21)] {
        let name = dev.spec().name.clone();
        let campaign = LatencyCampaign::run(
            &mut dev,
            &LatencyProbe {
                working_set_lines: 2,
                samples: 6,
            },
        );
        let report = infer_placement(&campaign, &dev, 2.5);
        assert!(
            report.position_recovery_r > 0.7,
            "{name}: position recovery {}",
            report.position_recovery_r
        );
        assert!(
            report.gpc_rand_index > 0.9,
            "{name}: column recovery {}",
            report.gpc_rand_index
        );
    }
}

#[test]
fn implication_2_core_placement_shifts_attack_timing() {
    // Non-uniform latency does not break the attacks by itself, but it shifts
    // the timing relationships between cores (Fig. 17).
    let mut dev = GpuDevice::a100(22);
    let h = dev.hierarchy().clone();
    let left = h.sms_in_partition(PartitionId::new(0)).to_vec();
    let right = h.sms_in_partition(PartitionId::new(1)).to_vec();

    // (a) AES warp-read timing: same line set, different SM, shifted time.
    let lines = [0u8, 1, 2, 3];
    let avg = |dev: &mut GpuDevice, sm: SmId| -> f64 {
        (0..16)
            .map(|_| warp_read_cycles(dev, sm, &lines))
            .sum::<f64>()
            / 16.0
    };
    let t_near = avg(&mut dev, left[0]);
    let t_far = avg(&mut dev, right[0]);
    assert!(
        (t_near - t_far).abs() > 15.0,
        "expected placement shift: {t_near} vs {t_far}"
    );

    // (b) RSA two-SM kernel: cross-partition placement costs ≈1.7×.
    let same = two_sm_op_cycles(&dev, left[0], left[2]);
    let cross = two_sm_op_cycles(&dev, left[0], right[0]);
    assert!((1.5..1.95).contains(&(cross / same)), "{}", cross / same);

    // (c) The attack itself still succeeds under static scheduling — the
    // shift alone is not a defense.
    let r = run_aes_attack(
        &mut dev,
        &AesAttackConfig {
            samples: 2_500,
            ..AesAttackConfig::new(KEY)
        },
        1,
    );
    assert!(r.succeeded());
}

#[test]
fn implication_3_random_scheduling_mitigates_both_attacks() {
    let mut dev = GpuDevice::a100(23);
    let aes = run_aes_attack(
        &mut dev,
        &AesAttackConfig {
            samples: 2_500,
            scheduler: CtaScheduler::RandomSeed,
            ..AesAttackConfig::new(KEY)
        },
        1,
    );
    let true_corr = aes.correlations[aes.true_byte as usize];
    let noise_floor = aes
        .correlations
        .iter()
        .enumerate()
        .filter(|&(g, _)| g != aes.true_byte as usize)
        .map(|(_, c)| c.abs())
        .fold(0.0f64, f64::max);
    assert!(
        true_corr < 2.0 * noise_floor,
        "AES correlation peak should vanish: {true_corr} vs {noise_floor}"
    );

    let dev = GpuDevice::a100(23);
    let static_run = run_rsa_attack(&dev, &RsaAttackConfig::default(), 9);
    let random_run = run_rsa_attack(
        &dev,
        &RsaAttackConfig {
            scheduler: CtaScheduler::RandomSeed,
            ..RsaAttackConfig::default()
        },
        9,
    );
    assert!(static_run.fit.r_squared > 0.98);
    assert!(random_run.fit.r_squared < 0.8);
    assert!(random_run.weight_uncertainty > 3 * static_run.weight_uncertainty.max(1));
}

#[test]
fn implication_4_noc_must_not_bottleneck_memory_or_l2() {
    // Simulators that under-provision the reply interface see fluctuating,
    // ≈20–30 % memory utilisation (Fig. 21); the real-GPU-style provisioned
    // interface sustains the channel.
    let under = run_memsim(MemSimConfig::underprovisioned(), 4);
    let provisioned = run_memsim(MemSimConfig::provisioned(), 4);
    assert!(
        under.mean_utilization < 0.40,
        "under-provisioned utilisation {:.2}",
        under.mean_utilization
    );
    let fluctuation = {
        let max = under
            .utilization_timeline
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min = under
            .utilization_timeline
            .iter()
            .cloned()
            .fold(1.0f64, f64::min);
        max - min
    };
    assert!(fluctuation > 0.1, "utilisation should fluctuate");
    assert!(
        provisioned.mean_utilization > 0.8,
        "provisioned utilisation {:.2}",
        provisioned.mean_utilization
    );

    // Meanwhile the real-GPU model (the engine) sustains 85–90 % of peak
    // memory bandwidth — the paper's Fig. 9a contrast.
    let mut dev = GpuDevice::v100(24);
    let mem = gnoc_core::microbench::bandwidth::aggregate_memory_gbps(&mut dev);
    assert!(mem / dev.spec().mem_peak_gbps > 0.82);
}

#[test]
fn implication_5_interface_bandwidth_is_the_first_order_knob() {
    // Sweep the reply-interface width: utilisation rises monotonically until
    // the interface stops being the bottleneck (the "bandwidth hierarchy").
    let mut last = 0.0;
    for reply_flits in [8, 4, 2, 1] {
        let cfg = MemSimConfig {
            reply_flits,
            ..MemSimConfig::underprovisioned()
        };
        let r = run_memsim(cfg, 5);
        assert!(
            r.mean_utilization >= last - 0.02,
            "wider interface must not hurt: {reply_flits} flits -> {:.2} (prev {last:.2})",
            r.mean_utilization
        );
        last = r.mean_utilization;
    }
    assert!(last > 0.8, "fully provisioned should sustain: {last:.2}");

    // The survey: a substantial share of prior-work baselines sit behind the
    // network wall (BW_NoC-MEM < BW_MEM).
    let points = priorwork::dataset();
    let walled = points.iter().filter(|p| p.network_wall()).count();
    assert!(walled >= 3 && walled < points.len());
}

#[test]
fn implication_6_mesh_unfairness_vs_single_hop_uniformity() {
    // Multi-hop mesh with locally fair arbitration: large throughput spread.
    let rr = run_fairness(FairnessConfig::paper(ArbiterKind::RoundRobin), 2);
    assert!(rr.unfairness > 1.6, "mesh unfairness {:.2}", rr.unfairness);

    // Age-based arbitration restores global fairness at added complexity.
    let age = run_fairness(FairnessConfig::paper(ArbiterKind::AgeBased), 2);
    assert!(age.unfairness < 1.25, "age-based {:.2}", age.unfairness);

    // A single-hop crossbar (the hierarchical-crossbar building block real
    // GPUs use) is uniform even with plain round-robin.
    let mut xbar = Crossbar::new(CrossbarConfig {
        inputs: 30,
        outputs: 6,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
    });
    let mut state = 99u64;
    for _ in 0..15_000 {
        for i in 0..30u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let dst = ((state >> 33) % 6) as u32;
            let _ = xbar.try_inject(NodeId::new(i), NodeId::new(dst), 1, PacketClass::Request);
        }
        xbar.step();
        xbar.drain_ejected();
    }
    let d = &xbar.stats().delivered_by_src;
    let spread = *d.iter().max().unwrap() as f64 / (*d.iter().min().unwrap()).max(1) as f64;
    assert!(spread < 1.1, "crossbar spread {spread:.3}");
}
