//! Integration tests for the NoC flight recorder and the `gnoc profile`
//! layer built on it.
//!
//! Three contracts are pinned here:
//!
//! 1. **Golden JSONL schema.** The recorder streams `msg_inject` /
//!    `msg_hop` / `msg_deliver` / `msg_lost` events whose required fields
//!    are part of the artifact's public interface; `parse_jsonl_line` must
//!    round-trip every one of them.
//! 2. **Stall attribution is an identity, not an estimate.** For every
//!    delivered message, `source_wait + per-hop stalls + transit` equals
//!    the measured end-to-end latency *exactly* — under clean uniform
//!    traffic and under generated fault plans with retries.
//! 3. **Recording is read-only.** A profiled run returns bit-identical
//!    results to an unprofiled one; the recorder observes phase decisions
//!    without participating in them.

use gnoc_core::noc::{
    run_fairness, run_fairness_recorded, ArbiterKind, FairnessConfig, MeshConfig, NodeId,
    PacketClass, ReliableMesh, RetryConfig, RouteOrder,
};
use gnoc_core::telemetry::{parse_jsonl_line, TelemetryHandle, TraceEvent, TraceSink};
use gnoc_core::{FaultGenConfig, FaultPlan, FlightRecorder, ProfileReport, StallKind};
use proptest::prelude::*;

/// Collects the JSONL lines a sink would write, so tests can parse them
/// back through the public [`parse_jsonl_line`] entry point.
#[derive(Debug, Default)]
struct LineSink {
    lines: Vec<String>,
}

impl TraceSink for LineSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.lines
            .push(serde_json::to_string(event).expect("trace event serializes"));
    }
}

/// splitmix64 step — the same deterministic traffic the CLI drives.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn require(ev: &TraceEvent, keys: &[&str]) {
    for k in keys {
        assert!(
            ev.field(k).is_some(),
            "{} event is missing required field `{k}`: {ev:?}",
            ev.event
        );
    }
}

#[test]
fn streamed_jsonl_matches_the_golden_schema() {
    let cfg = FairnessConfig {
        warmup: 100,
        measure: 600,
        ..FairnessConfig::paper(ArbiterKind::RoundRobin)
    };
    let (_, rec) = run_fairness_recorded(cfg, 11, TelemetryHandle::disabled(), true);
    let rec = rec.expect("recorder was attached");
    let mut sink = LineSink::default();
    rec.stream_to(&mut sink);
    assert!(!sink.lines.is_empty());

    let mut seen_inject = 0usize;
    let mut seen_hop = 0usize;
    let mut seen_deliver = 0usize;
    for line in &sink.lines {
        let ev = parse_jsonl_line(line).expect("recorder lines parse back");
        match ev.event.as_str() {
            "msg_inject" => {
                require(&ev, &["id", "src", "dst", "flits", "birth"]);
                seen_inject += 1;
            }
            "msg_hop" => {
                require(
                    &ev,
                    &[
                        "id",
                        "router",
                        "in_port",
                        "arrive",
                        "serialization",
                        "contention",
                        "backpressure",
                        "router_stall",
                        "queued",
                    ],
                );
                seen_hop += 1;
            }
            "msg_deliver" => {
                require(&ev, &["id", "latency"]);
                seen_deliver += 1;
            }
            "msg_lost" => require(&ev, &["id", "reason"]),
            _ => {} // annotations (notes) ride along and are schema-free
        }
    }
    assert!(seen_inject > 0 && seen_hop > 0 && seen_deliver > 0);
    assert_eq!(
        seen_inject, seen_deliver,
        "clean uniform traffic loses nothing"
    );
}

#[test]
fn lost_messages_stream_with_a_reason() {
    // The fairness soak never loses packets, so drive the recorder's loss
    // path directly: its schema is part of the public artifact too.
    // `on_inject` opens the source hop itself; `on_enqueue` is for the
    // downstream routers a forwarded head flit arrives at.
    let mut rec = FlightRecorder::new();
    rec.on_inject(0, 3, 9, 2, 5, 10);
    rec.charge(0, StallKind::Contention);
    rec.on_grant(0, 1, 12);
    rec.on_enqueue(0, 9, 3, 13);
    rec.on_grant(0, 0, 14);
    rec.on_deliver(0, 20);
    rec.on_inject(1, 4, 8, 1, 30, 30);
    rec.charge(1, StallKind::Backpressure);
    rec.on_lost(1, 45, "link_dead");
    let mut sink = LineSink::default();
    rec.stream_to(&mut sink);

    let events: Vec<TraceEvent> = sink
        .lines
        .iter()
        .map(|l| parse_jsonl_line(l).unwrap())
        .collect();
    let kinds: Vec<&str> = events.iter().map(|e| e.event.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "msg_inject",
            "msg_hop",
            "msg_hop",
            "msg_deliver",
            "msg_inject",
            "msg_hop",
            "msg_lost"
        ]
    );
    let lost = events.last().unwrap();
    require(lost, &["id", "reason"]);
    assert_eq!(lost.cycle, 45);
}

/// Runs the CLI's faulted-mesh soak with a recorder attached and returns
/// the recording plus whether the mesh quiesced.
fn record_faulted_soak(
    plan: &FaultPlan,
    width: u32,
    height: u32,
    transfers: usize,
    seed: u64,
) -> (Box<FlightRecorder>, bool, u64) {
    let cfg = MeshConfig {
        width: width as usize,
        height: height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let mut rm = ReliableMesh::with_faults(cfg, plan, RetryConfig::default()).expect("plan fits");
    rm.mesh_mut().attach_flight_recorder();
    let nodes = u64::from(width) * u64::from(height);
    let mut state = seed;
    let mut submitted = 0usize;
    while submitted < transfers {
        let src = (mix(&mut state) % nodes) as u32;
        let dst = (mix(&mut state) % nodes) as u32;
        let flits = 1 + (mix(&mut state) % 4) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), flits, PacketClass::Request);
        submitted += 1;
    }
    let quiesced = rm.run_until_quiescent(2_000_000);
    let cycles = rm.mesh().cycle();
    let rec = rm
        .mesh_mut()
        .take_flight_recorder()
        .expect("recorder attached above");
    (rec, quiesced, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contract 2, clean traffic: the stall components of every delivered
    /// message sum to its end-to-end latency exactly, across random loads,
    /// seeds, and both arbiters. Contract 3 rides along: the recorded run
    /// must match the bare one bit for bit.
    #[test]
    fn stall_components_sum_to_latency_under_uniform_traffic(
        seed in 0u64..1_000,
        rate in 0.05f64..0.35,
        age in any::<bool>(),
    ) {
        let arbiter = if age { ArbiterKind::AgeBased } else { ArbiterKind::RoundRobin };
        let cfg = FairnessConfig {
            inject_rate: rate,
            warmup: 100,
            measure: 500,
            ..FairnessConfig::paper(arbiter)
        };
        let bare = run_fairness(cfg, seed);
        let (recorded, rec) = run_fairness_recorded(cfg, seed, TelemetryHandle::disabled(), true);
        prop_assert!(bare == recorded, "recording must not perturb the run");
        let rec = rec.expect("recorder was attached");
        prop_assert!(!rec.finished().is_empty());
        for m in rec.finished().iter().filter(|m| m.delivered) {
            prop_assert!(
                m.components_sum() == m.latency(),
                "msg {}: source_wait {} + stalls {} + transit {} != latency {}",
                m.id, m.source_wait(), m.stalls().total(), m.transit(), m.latency()
            );
        }
    }

    /// Contract 2 under faults: dead links, flaky links, and transient
    /// drops force retries and reroutes, and the attribution identity must
    /// survive all of them. The profile report built from the recording
    /// must agree with the recording's own totals.
    #[test]
    fn stall_components_sum_to_latency_under_faults(
        seed in 1u64..500,
        dead in 0.0f64..0.06,
        drop_p in 0.0f64..0.02,
    ) {
        let plan = FaultPlan::generate(&FaultGenConfig {
            dead_link_fraction: dead,
            transient_drop_prob: drop_p,
            ..FaultGenConfig::benign(seed, 5, 5)
        });
        let (rec, quiesced, cycles) = record_faulted_soak(&plan, 5, 5, 150, seed);
        prop_assert!(quiesced, "watchdog must force quiescence");
        let mut delivered = 0usize;
        for m in rec.finished().iter().filter(|m| m.delivered) {
            prop_assert!(m.components_sum() == m.latency(), "msg {}", m.id);
            delivered += 1;
        }
        prop_assert!(delivered > 0);
        let report = ProfileReport::from_recorder(&rec, 5, 5, cycles, 3);
        let json = report.to_json_pretty();
        prop_assert!(json.starts_with("{\n  \"schema\": 1"), "schema tag must lead");
    }
}
