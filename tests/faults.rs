//! Property tests for the fault-injection layer.
//!
//! Two invariants the whole robustness story rests on:
//!
//! 1. **Exactly once or reported lost.** Under any generated fault plan the
//!    reliable mesh quiesces (the watchdog guarantees forward progress) and
//!    every submitted transfer ends in a terminal state — `Delivered` (once)
//!    or `Lost` with a reason. Nothing hangs, nothing is double-counted,
//!    nothing vanishes silently.
//! 2. **Bit-identical replay.** The same generator config yields the same
//!    plan byte-for-byte, and the same plan plus the same traffic yields the
//!    same per-transfer outcomes and statistics. Determinism is what makes a
//!    fault report debuggable and a checkpointed campaign resumable.

use gnoc_core::faults::mesh_connected;
use gnoc_core::noc::{
    ArbiterKind, MeshConfig, NodeId, PacketClass, ReliabilityStats, ReliableMesh, RetryConfig,
    RouteOrder, TransferOutcome,
};
use gnoc_core::{FaultGenConfig, FaultPlan};
use proptest::prelude::*;

/// splitmix64 step — deterministic traffic independent of the fault RNG.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const TRANSFERS: usize = 48;

/// Runs `TRANSFERS` reliable transfers under `plan` and returns
/// `(quiesced, outcomes, stats)`.
fn run_plan(
    plan: &FaultPlan,
    width: u32,
    height: u32,
) -> (bool, Vec<TransferOutcome>, ReliabilityStats) {
    let cfg = MeshConfig {
        width: width as usize,
        height: height as usize,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
        route_order: RouteOrder::Xy,
        vcs: 1,
    };
    let mut rm = ReliableMesh::with_faults(cfg, plan, RetryConfig::default())
        .expect("generated plans validate for their own geometry");
    let nodes = (width * height) as u64;
    let mut state = plan.seed ^ 0xd1b5_4a32_d192_ed03;
    let mut submitted = 0;
    while submitted < TRANSFERS {
        let src = (mix(&mut state) % nodes) as u32;
        let dst = (mix(&mut state) % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
        submitted += 1;
    }
    let quiesced = rm.run_until_quiescent(3_000_000);
    (quiesced, rm.outcomes(), rm.stats().clone())
}

/// Fault generator configs across the whole fault surface: dead links, flaky
/// links, stalled routers, transient drop/corruption, delayed onsets, on
/// meshes from 3x3 to 6x6.
fn arb_cfg() -> impl Strategy<Value = FaultGenConfig> {
    (
        (1u64..1_000_000, 3u32..7, 3u32..7, 0.0f64..0.08, 0u32..3),
        (0.0f64..0.5, 0u32..2, 0.0f64..0.02, 0.0f64..0.02, 0u64..120),
    )
        .prop_map(
            |((seed, width, height, dead, flaky), (flaky_p, stalls, drop_p, corrupt_p, onset))| {
                FaultGenConfig {
                    dead_link_fraction: dead,
                    flaky_links: flaky,
                    flaky_drop_prob: flaky_p,
                    stalled_routers: stalls,
                    stall_duration: 200,
                    transient_drop_prob: drop_p,
                    transient_corrupt_prob: corrupt_p,
                    onset,
                    ..FaultGenConfig::benign(seed, width, height)
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_transfer_delivered_exactly_once_or_reported_lost(cfg in arb_cfg()) {
        let plan = FaultPlan::generate(&cfg);
        let (quiesced, outcomes, stats) = run_plan(&plan, cfg.width, cfg.height);
        prop_assert!(quiesced, "watchdog must force quiescence: {plan:?}");
        prop_assert_eq!(outcomes.len(), TRANSFERS);
        for (i, o) in outcomes.iter().enumerate() {
            prop_assert!(o.is_resolved(), "transfer {i} unresolved: {o:?}");
        }
        let delivered = outcomes
            .iter()
            .filter(|o| matches!(o, TransferOutcome::Delivered { .. }))
            .count() as u64;
        // Exactly-once accounting: the terminal outcomes partition the
        // submissions, and the stats agree with the per-transfer view.
        prop_assert_eq!(delivered, stats.delivered);
        prop_assert_eq!(stats.delivered + stats.lost_total(), stats.submitted);
        prop_assert_eq!(stats.submitted, TRANSFERS as u64);
    }

    #[test]
    fn same_seed_is_bit_identical(cfg in arb_cfg()) {
        let plan_a = FaultPlan::generate(&cfg);
        let plan_b = FaultPlan::generate(&cfg);
        prop_assert_eq!(
            plan_a.to_json().expect("plans serialize"),
            plan_b.to_json().expect("plans serialize")
        );
        let (qa, outcomes_a, stats_a) = run_plan(&plan_a, cfg.width, cfg.height);
        let (qb, outcomes_b, stats_b) = run_plan(&plan_b, cfg.width, cfg.height);
        prop_assert_eq!(qa, qb);
        prop_assert_eq!(outcomes_a, outcomes_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn flaky_plans_below_certain_loss_deliver_or_report_everything(
        (seed, width, height, flaky, drop_p) in
            (1u64..1_000_000, 3u32..7, 3u32..7, 1u32..5, 0.0f64..0.95)
    ) {
        // Flaky-only plans (no dead links, so the mesh stays fully routable)
        // with per-hop drop probability strictly below 1.0: every retry has
        // a chance, so the retry protocol must resolve every submission —
        // delivered, or lost with an explicit retries-exhausted/watchdog
        // reason once the budget runs out. No silent disappearance at any
        // drop rate.
        let plan = FaultPlan::generate(&FaultGenConfig {
            flaky_links: flaky,
            flaky_drop_prob: drop_p,
            ..FaultGenConfig::benign(seed, width, height)
        });
        let (quiesced, outcomes, stats) = run_plan(&plan, width, height);
        prop_assert!(quiesced, "flaky links must never wedge the mesh: {plan:?}");
        prop_assert_eq!(outcomes.len(), TRANSFERS);
        for (i, o) in outcomes.iter().enumerate() {
            prop_assert!(o.is_resolved(), "transfer {i} unresolved: {o:?}");
        }
        // Flaky-only plans keep every route, so unroutable losses are
        // impossible; only retries-exhausted/watchdog losses may remain.
        prop_assert_eq!(stats.lost_unroutable, 0);
        prop_assert_eq!(stats.delivered + stats.lost_total(), stats.submitted);
    }

    #[test]
    fn connected_dead_only_plans_lose_nothing(
        (seed, width, height, dead) in (1u64..1_000_000, 3u32..7, 3u32..7, 0.0f64..0.10)
    ) {
        // Immediate-onset dead links and nothing probabilistic: as long as
        // the surviving mesh is connected, up*/down* rerouting must deliver
        // every transfer — degradation shows up as latency, not loss.
        let plan = FaultPlan::generate(&FaultGenConfig {
            dead_link_fraction: dead,
            ..FaultGenConfig::benign(seed, width, height)
        });
        if !mesh_connected(width, height, &plan.dead_undirected_edges(width, height)) {
            return Ok(()); // generator only disconnects when asked to kill too much
        }
        let (quiesced, _, stats) = run_plan(&plan, width, height);
        prop_assert!(quiesced);
        prop_assert!(stats.lost_total() == 0, "lost {} under {plan:?}", stats.lost_total());
        prop_assert_eq!(stats.delivered, TRANSFERS as u64);
    }
}

/// Mean retry count over a seed ensemble is monotone in the flaky drop
/// rate: more drops can only mean more timeouts and retransmissions. A
/// fault-free mesh retries exactly zero times.
#[test]
fn retry_counts_are_monotone_in_drop_rate() {
    const SEEDS: u64 = 8;
    const DROP_LEVELS: [f64; 3] = [0.0, 0.2, 0.45];
    let mut means = [0.0f64; 3];
    for (level, &drop_p) in DROP_LEVELS.iter().enumerate() {
        let mut total_retries = 0u64;
        for seed in 1..=SEEDS {
            let plan = FaultPlan::generate(&FaultGenConfig {
                flaky_links: 6,
                flaky_drop_prob: drop_p,
                ..FaultGenConfig::benign(seed, 5, 5)
            });
            let cfg = MeshConfig {
                width: 5,
                height: 5,
                buffer_packets: 4,
                arbiter: ArbiterKind::RoundRobin,
                route_order: RouteOrder::Xy,
                vcs: 1,
            };
            let mut rm = ReliableMesh::with_faults(cfg, &plan, RetryConfig::default())
                .expect("flaky-only plans validate");
            let mut state = seed ^ 0x5e7a_11ab_1e5e_ed05;
            let mut submitted = 0;
            while submitted < 200 {
                let src = (mix(&mut state) % 25) as u32;
                let dst = (mix(&mut state) % 25) as u32;
                if src == dst {
                    continue;
                }
                rm.submit(NodeId(src), NodeId(dst), 1, PacketClass::Request);
                submitted += 1;
            }
            assert!(rm.run_until_quiescent(3_000_000));
            total_retries += rm.stats().retries;
        }
        means[level] = total_retries as f64 / SEEDS as f64;
    }
    assert_eq!(means[0], 0.0, "a drop rate of zero must never retry");
    assert!(
        means[0] <= means[1] && means[1] <= means[2],
        "mean retries must be non-decreasing in drop rate: {means:?}"
    );
    assert!(
        means[2] > means[0],
        "heavy flakiness must actually force retries: {means:?}"
    );
}
