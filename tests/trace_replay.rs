//! Round-trip and corruption-tolerance suite for the trace subsystem.
//!
//! Three contracts from DESIGN.md §8.3 get pinned:
//!
//! 1. **Record → replay is bit-identical**: a soak recorded through a
//!    `TraceTap` and re-driven through `replay_from` lands on the same
//!    canonical stats line — over generated fault plans on the 6x6 mesh
//!    and over 2–4-device ring fabrics, seeds 0..25.
//! 2. **Damage is salvage-or-error, never a panic**: every truncation
//!    point and every flipped byte yields either a trustworthy prefix
//!    (the `TruncatedTail` salvage path) or a typed error naming the
//!    chunk — the full matrix is walked, no position may panic, and no
//!    single-byte flip may pass off as a complete, valid trace.
//! 3. **Schema drift is rejected loudly**: a bumped version number fails
//!    with an error naming both the found and the supported schema.

use gnoc_core::noc::{ArbiterKind, MeshConfig, NodeId, PacketClass, ReliableMesh, RetryConfig};
use gnoc_core::trace::{
    validate_stream, TraceError, TraceHeader, TraceReader, TraceTap, TRACE_SCHEMA,
};
use gnoc_core::trace_digest;
use gnoc_core::{FabricConfig, FabricSim, FabricTopology, FaultGenConfig, FaultPlan};

/// splitmix64 step — the same deterministic traffic recipe the CLI drives.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gen_cfg(seed: u64, width: u32, height: u32, devices: u32) -> FaultGenConfig {
    FaultGenConfig {
        seed,
        width,
        height,
        dead_link_fraction: 0.06,
        flaky_links: 4,
        flaky_drop_prob: 0.25,
        stalled_routers: 2,
        stall_duration: 300,
        transient_drop_prob: 0.002,
        transient_corrupt_prob: 0.001,
        onset: 100,
        onset_storm_span: 2_000,
        region: None,
        burst: None,
        num_slices: 0,
        disabled_slice_count: 0,
        sweep: None,
        devices,
        fabric_topology: FabricTopology::Ring,
        dead_fabric_links: u32::from(devices >= 3),
        flaky_fabric_links: u32::from(devices >= 2),
        fabric_flaky_drop_prob: 0.2,
        dead_devices: 0,
        dead_switch: false,
    }
}

fn mesh_cfg() -> MeshConfig {
    MeshConfig::paper_6x6(ArbiterKind::RoundRobin)
}

/// Records a faulted 6x6 mesh soak in memory; returns the trace bytes and
/// the canonical stats line of the recorded run.
fn record_mesh(plan: &FaultPlan, seed: u64, transfers: usize) -> (Vec<u8>, String) {
    let cfg = mesh_cfg();
    let mut rm = ReliableMesh::with_faults(cfg, plan, RetryConfig::default()).expect("plan fits");
    let header = TraceHeader::mesh(
        cfg.width as u32,
        cfg.height as u32,
        seed,
        transfers as u64,
        0,
    );
    rm.attach_trace_tap(TraceTap::in_memory(&header));
    let nodes = (cfg.width * cfg.height) as u64;
    let mut state = seed;
    let mut submitted = 0;
    while submitted < transfers {
        let src = (mix(&mut state) % nodes) as u32;
        let dst = (mix(&mut state) % nodes) as u32;
        if src == dst {
            continue;
        }
        rm.submit(NodeId::new(src), NodeId::new(dst), 1, PacketClass::Request);
        submitted += 1;
    }
    assert!(rm.run_until_quiescent(2_000_000), "seed {seed}: no quiesce");
    let line = trace_digest::mesh_stats_line(&rm).expect("stats serialize");
    let tap = rm.take_trace_tap().expect("tap attached");
    let bytes = tap
        .finish_bytes(trace_digest::line_digest(&line))
        .expect("in-memory finalize");
    (bytes, line)
}

/// Replays mesh trace bytes into a fresh simulator; returns the stats line.
fn replay_mesh(bytes: &[u8], plan: &FaultPlan) -> String {
    let mut reader = TraceReader::from_bytes(bytes.to_vec()).expect("trace opens");
    let mut rm =
        ReliableMesh::with_faults(mesh_cfg(), plan, RetryConfig::default()).expect("plan fits");
    let outcome = rm.replay_from(&mut reader).expect("trace replays");
    assert!(outcome.truncated.is_none(), "complete trace read clean");
    assert!(rm.run_until_quiescent(2_000_000), "replay quiesces");
    trace_digest::mesh_stats_line(&rm).expect("stats serialize")
}

#[test]
fn mesh_record_replay_bit_identical_across_generated_plans() {
    for seed in 0..25u64 {
        let plan = FaultPlan::generate(&gen_cfg(seed, 6, 6, 1));
        let (bytes, recorded_line) = record_mesh(&plan, seed, 120);
        let replayed_line = replay_mesh(&bytes, &plan);
        assert_eq!(
            recorded_line, replayed_line,
            "seed {seed}: replay diverged from the recording"
        );
        // The sealed footer digest is the same identity the tools compare.
        let mut reader = TraceReader::from_bytes(bytes).expect("trace opens");
        let summary = validate_stream(&mut reader).expect("recorded trace validates");
        assert!(summary.complete);
        assert_eq!(summary.events, 120);
        assert_eq!(summary.stats_fnv, trace_digest::line_digest(&recorded_line));
    }
}

#[test]
fn fabric_record_replay_bit_identical_2_to_4_devices() {
    for devices in 2..=4u32 {
        for seed in 0..8u64 {
            let plan = FaultPlan::generate(&gen_cfg(seed, 5, 5, devices));
            let build = || {
                FabricSim::with_faults(FabricConfig::new(devices, FabricTopology::Ring), &plan)
                    .expect("plan fits the fabric")
            };
            let mut sim = build();
            let (w, h) = (
                sim.config().mesh.width as u32,
                sim.config().mesh.height as u32,
            );
            let header = TraceHeader::fabric(devices, "ring", w, h, seed, 24, 0);
            sim.attach_trace_tap(TraceTap::in_memory(&header));
            let nodes = u64::from(w) * u64::from(h);
            let mut state = seed ^ u64::from(devices) << 32;
            let mut submitted = 0;
            while submitted < 24 {
                let sd = (mix(&mut state) % u64::from(devices)) as u32;
                let dd = (mix(&mut state) % u64::from(devices)) as u32;
                let src = (mix(&mut state) % nodes) as u32;
                let dst = (mix(&mut state) % nodes) as u32;
                if sd == dd && src == dst {
                    continue;
                }
                let flits = 1 + (mix(&mut state) % 4) as u32;
                sim.submit(
                    sd,
                    NodeId::new(src),
                    dd,
                    NodeId::new(dst),
                    flits,
                    PacketClass::Request,
                )
                .expect("all devices are alive in this plan");
                submitted += 1;
            }
            assert!(sim.run_until_quiescent(2_000_000));
            let recorded_line = trace_digest::fabric_stats_line(&sim).expect("stats serialize");
            let tap = sim.take_trace_tap().expect("tap attached");
            let bytes = tap
                .finish_bytes(trace_digest::line_digest(&recorded_line))
                .expect("in-memory finalize");

            let mut reader = TraceReader::from_bytes(bytes).expect("trace opens");
            let mut replayed = build();
            let outcome = replayed.replay_from(&mut reader).expect("trace replays");
            assert!(outcome.truncated.is_none());
            assert!(replayed.run_until_quiescent(2_000_000));
            let replayed_line =
                trace_digest::fabric_stats_line(&replayed).expect("stats serialize");
            assert_eq!(
                recorded_line, replayed_line,
                "devices {devices} seed {seed}: fabric replay diverged"
            );
        }
    }
}

#[test]
fn every_truncation_point_salvages_a_prefix_or_errors_never_panics() {
    let plan = FaultPlan::generate(&gen_cfg(3, 6, 6, 1));
    let (bytes, _) = record_mesh(&plan, 3, 140);
    let mut salvaged = 0usize;
    for cut in 0..bytes.len() {
        let prefix = bytes[..cut].to_vec();
        match TraceReader::from_bytes(prefix) {
            // A cut inside magic/schema/header: a typed error, nothing to
            // salvage — any variant is acceptable except a panic.
            Err(_) => {}
            Ok(mut reader) => {
                let mut rm = ReliableMesh::with_faults(mesh_cfg(), &plan, RetryConfig::default())
                    .expect("plan fits");
                match rm.replay_from(&mut reader) {
                    Ok(outcome) => {
                        assert!(
                            outcome.replayed <= 140,
                            "cut {cut}: replayed more events than were recorded"
                        );
                        if outcome.truncated.is_none() {
                            // Only the footer was lost or the cut hit a
                            // chunk boundary: full event prefix replayed.
                            assert!(outcome.replayed <= 140);
                        }
                        salvaged += 1;
                    }
                    Err(e) => {
                        // Corrupt mid-chunk cuts may surface as typed
                        // errors; the message must carry a location.
                        let msg = e.to_string();
                        assert!(!msg.is_empty(), "cut {cut}: silent error");
                    }
                }
            }
        }
    }
    assert!(
        salvaged > bytes.len() / 2,
        "most truncation points should salvage a prefix (got {salvaged}/{})",
        bytes.len()
    );
}

#[test]
fn every_bit_flip_is_detected_or_salvaged_never_valid() {
    let plan = FaultPlan::generate(&gen_cfg(5, 6, 6, 1));
    let (bytes, line) = record_mesh(&plan, 5, 130);
    let good_digest = trace_digest::line_digest(&line);
    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        match TraceReader::from_bytes(damaged) {
            Err(TraceError::BadMagic { .. }) => assert!(pos < 8, "magic error at byte {pos}"),
            Err(TraceError::SchemaVersion { .. }) => {
                assert!((8..12).contains(&pos), "schema error at byte {pos}")
            }
            Err(_) => {} // header chunk damage: typed, located, no panic
            Ok(mut reader) => match validate_stream(&mut reader) {
                // Detected as corruption: the exit-1 path.
                Err(TraceError::CorruptChunk { .. }) => {}
                Err(_) => {}
                // Reclassified as truncation (e.g. a length field flipped
                // past EOF): the salvage path — but the footer digest can
                // no longer vouch for the whole stream.
                Ok(summary) => {
                    assert!(
                        !(summary.complete && summary.stats_fnv == good_digest),
                        "byte {pos}: a flipped byte passed off as the valid trace"
                    );
                }
            },
        }
    }
}

#[test]
fn schema_version_bump_is_rejected_with_a_clear_error() {
    let plan = FaultPlan::none();
    let (mut bytes, _) = record_mesh(&plan, 1, 40);
    // The schema version is the little-endian u32 right after the magic.
    let bumped = TRACE_SCHEMA + 1;
    bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
    match TraceReader::from_bytes(bytes) {
        Err(TraceError::SchemaVersion { found, supported }) => {
            assert_eq!(found, bumped);
            assert_eq!(supported, TRACE_SCHEMA);
            let msg = TraceError::SchemaVersion { found, supported }.to_string();
            assert!(
                msg.contains(&bumped.to_string()) && msg.contains(&TRACE_SCHEMA.to_string()),
                "error must name both versions: {msg}"
            );
        }
        Err(other) => panic!("expected a schema-version rejection, got {other}"),
        Ok(_) => panic!("a bumped schema version must not open"),
    }
}
