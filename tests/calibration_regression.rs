//! Calibration regression: pins the headline reproduced metrics to their
//! expected values (with tolerances) so any future model change that drifts
//! away from the paper's numbers fails loudly here, with the paper target in
//! the assertion message.

use gnoc_core::microbench::bandwidth::{
    aggregate_fabric_gbps, aggregate_memory_gbps, sms_to_slice_gbps,
};
use gnoc_core::microbench::sm2sm::cpc_latency_matrix;
use gnoc_core::{
    input_speedups, AccessKind, GpcId, GpuDevice, LatencyProbe, PartitionId, SliceId, SmId, Summary,
};

/// Asserts `value` is within `tol` (relative) of `expect`.
fn within(metric: &str, value: f64, expect: f64, tol: f64) {
    let rel = (value - expect).abs() / expect.abs();
    assert!(
        rel <= tol,
        "{metric}: measured {value:.2}, pinned {expect:.2} (±{:.0}%), drift {:.1}%",
        tol * 100.0,
        rel * 100.0
    );
}

#[test]
fn v100_latency_pins() {
    // Paper: 175–248 cycles, mean ≈ 212 (Fig. 1).
    let mut dev = GpuDevice::v100(100);
    let probe = LatencyProbe::default();
    let mut all = Vec::new();
    for sm in [0u32, 24, 40, 64] {
        all.extend(probe.sm_profile(&mut dev, SmId::new(sm)));
    }
    let s = Summary::of(&all);
    within("V100 mean hit latency", s.mean, 212.0, 0.05);
    within("V100 min hit latency", s.min, 186.0, 0.05);
    within("V100 max hit latency", s.max, 255.0, 0.05);
}

#[test]
fn a100_partition_latency_pins() {
    // Paper Fig. 8b: near ≈ 212, far ≈ 400 cycles.
    let mut dev = GpuDevice::a100(100);
    let probe = LatencyProbe::default();
    let h = dev.hierarchy().clone();
    let near_sm = h.sms_in_partition(PartitionId::new(0))[0];
    let far_sm = h.sms_in_partition(PartitionId::new(1))[0];
    let slices = h.slices_in_partition(PartitionId::new(0))[..8].to_vec();
    let mean = |dev: &mut GpuDevice, sm| {
        slices
            .iter()
            .map(|&s| probe.measure_pair(dev, sm, s))
            .sum::<f64>()
            / slices.len() as f64
    };
    within(
        "A100 near hit latency",
        mean(&mut dev, near_sm),
        212.0,
        0.07,
    );
    within("A100 far hit latency", mean(&mut dev, far_sm), 400.0, 0.07);
}

#[test]
fn bandwidth_pins() {
    // Paper Fig. 9: single SM ≈ 34 GB/s; GPC→slice ≈ 85 GB/s; fabric/memory
    // ratios 2.4–3.5×; memory 85–90 % of peak.
    let mut dev = GpuDevice::v100(100);
    within(
        "V100 SM→slice bandwidth",
        sms_to_slice_gbps(&mut dev, &[SmId::new(0)], SliceId::new(0)),
        34.2,
        0.04,
    );
    let gpc_sms = dev.hierarchy().sms_in_gpc(GpcId::new(0)).to_vec();
    within(
        "V100 GPC→slice bandwidth",
        sms_to_slice_gbps(&mut dev, &gpc_sms, SliceId::new(0)),
        85.0,
        0.06,
    );

    for (name, mut dev, ratio_pin, mem_frac_pin) in [
        ("V100", GpuDevice::v100(100), 2.43, 0.88),
        ("A100", GpuDevice::a100(100), 2.58, 0.87),
        ("H100", GpuDevice::h100(100), 2.42, 0.89),
    ] {
        let fabric = aggregate_fabric_gbps(&mut dev);
        let mem = aggregate_memory_gbps(&mut dev);
        within(
            &format!("{name} fabric/memory ratio"),
            fabric / mem,
            ratio_pin,
            0.05,
        );
        within(
            &format!("{name} memory fraction of peak"),
            mem / dev.spec().mem_peak_gbps,
            mem_frac_pin,
            0.03,
        );
    }
}

#[test]
fn a100_near_far_bandwidth_pins() {
    // Paper Fig. 12: near ≈ 39.5, far ≈ 26 GB/s (we land ≈ 25.6).
    let mut dev = GpuDevice::a100(100);
    let h = dev.hierarchy().clone();
    let sm = h.sms_in_partition(PartitionId::new(0))[0];
    let near = h.slices_in_partition(PartitionId::new(0))[0];
    let far = h.slices_in_partition(PartitionId::new(1))[0];
    within(
        "A100 near slice bandwidth",
        sms_to_slice_gbps(&mut dev, &[sm], near),
        39.6,
        0.04,
    );
    within(
        "A100 far slice bandwidth",
        sms_to_slice_gbps(&mut dev, &[sm], far),
        25.6,
        0.08,
    );
}

#[test]
fn speedup_pins() {
    // Paper Fig. 10 (write path): V100 TPC ≈ 1.09, GPC_l ≈ 50 % of 7;
    // H100 GPC_l ≈ 85 % of 9, CPC ≈ 4.6 of 6.
    let v = input_speedups(&GpuDevice::v100(100), AccessKind::Write);
    within("V100 TPC write speedup", v.tpc, 1.09, 0.03);
    within("V100 GPC_l write speedup", v.gpc_local, 3.5, 0.06);

    let h = input_speedups(&GpuDevice::h100(100), AccessKind::Write);
    within("H100 GPC_l write speedup", h.gpc_local, 7.7, 0.06);
    within("H100 CPC write speedup", h.cpc.unwrap(), 4.6, 0.05);

    let r = input_speedups(&GpuDevice::v100(100), AccessKind::ReadHit);
    within("V100 TPC read speedup", r.tpc, 2.0, 0.03);
}

#[test]
fn h100_cpc_latency_pins() {
    // Paper Fig. 7b: 196 (CPC0↔CPC0) … ≈ 213 (CPC2↔CPC2).
    let mut dev = GpuDevice::h100(100);
    let m = cpc_latency_matrix(&mut dev, GpcId::new(0), 6).expect("H100");
    within("H100 intra-CPC0 latency", m[0][0], 196.0, 0.03);
    within("H100 intra-CPC2 latency", m[2][2], 210.0, 0.03);
}
