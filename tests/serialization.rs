//! Serde round-trip and stability tests: all result and configuration types
//! serialize to JSON and come back identical, so experiment outputs can be
//! archived and diffed across runs.

use gnoc_core::engine::Calibration;
use gnoc_core::noc::{run_fairness, ArbiterKind, FairnessConfig, MemSimConfig};
use gnoc_core::{
    infer_placement, GpuDevice, GpuSpec, LatencyCampaign, LatencyProbe, SliceId, SmId,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn gpu_specs_round_trip() {
    for spec in GpuSpec::paper_presets() {
        let back: GpuSpec = round_trip(&spec);
        assert_eq!(back, spec);
        // The deserialized spec builds an identical hierarchy.
        assert_eq!(back.hierarchy(), spec.hierarchy());
    }
}

#[test]
fn calibrations_round_trip_exactly() {
    // Unlimited capacities use a finite sentinel (engine::UNLIMITED), so all
    // three calibrations are plain JSON numbers end to end.
    for calib in [
        Calibration::volta(),
        Calibration::ampere(),
        Calibration::hopper(),
    ] {
        let back: Calibration = round_trip(&calib);
        assert_eq!(back, calib);
    }
}

#[test]
fn campaign_results_round_trip() {
    let mut dev = GpuDevice::v100(0);
    let probe = LatencyProbe {
        working_set_lines: 2,
        samples: 2,
    };
    let campaign = LatencyCampaign::run(&mut dev, &probe);
    let back: LatencyCampaign = round_trip(&campaign);
    assert_eq!(back, campaign);

    let report = infer_placement(&campaign, &dev, 2.5);
    let back = round_trip(&report);
    assert_eq!(back, report);
}

#[test]
fn noc_results_round_trip() {
    let fairness = run_fairness(
        FairnessConfig {
            warmup: 200,
            measure: 500,
            ..FairnessConfig::paper(ArbiterKind::RoundRobin)
        },
        1,
    );
    let back = round_trip(&fairness);
    assert_eq!(back, fairness);

    let cfg = MemSimConfig::underprovisioned();
    let back = round_trip(&cfg);
    assert_eq!(back, cfg);
}

#[test]
fn ids_serialize_transparently() {
    // Newtype ids are `#[serde(transparent)]`: a bare number on the wire.
    assert_eq!(serde_json::to_string(&SmId::new(24)).unwrap(), "24");
    assert_eq!(serde_json::to_string(&SliceId::new(7)).unwrap(), "7");
    let sm: SmId = serde_json::from_str("24").unwrap();
    assert_eq!(sm, SmId::new(24));
}

#[test]
fn flow_solutions_round_trip() {
    let dev = GpuDevice::v100(0);
    let flows = vec![gnoc_core::FlowSpec {
        sm: SmId::new(0),
        slice: SliceId::new(0),
        kind: gnoc_core::AccessKind::ReadHit,
    }];
    let sol = dev.solve_bandwidth(&flows);
    let back = round_trip(&sol);
    assert_eq!(back, sol);
}
