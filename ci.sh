#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test check.
# Usage: ./ci.sh
set -euo pipefail

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q (GNOC_JOBS=2) =="
cargo build --release
# GNOC_JOBS=2 routes every env-resolved worker pool through the parallel
# path; all results are asserted bit-identical to serial, so this only
# widens coverage, never changes expectations.
GNOC_JOBS=2 cargo test -q

echo "== bench: serial-vs-parallel wall time (BENCH_par.json) =="
cargo run --release -q -p gnoc-bench --bin bench_par -- BENCH_par.json

echo "== bench: cycle-vs-event engine speedup guard (BENCH_noc.json) =="
# The event core must stay bit-identical to cycle-exact stepping (asserted
# inside the bench before any timing is trusted) and at least 3x faster on
# the idle-heavy soak, or the idle-tick fix has regressed.
cargo run --release -q -p gnoc-bench --bin bench_noc -- BENCH_noc.json --min-ratio 3

echo "== profile: trace determinism (same soak twice, --jobs 1 vs 2) =="
# The flight recorder timestamps in virtual cycles only, so the same soak
# must produce byte-identical traces across runs and worker counts. Any
# wall-clock or thread-id leak into the trace fails the gate here.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 1 mesh --profile "$tmp/prof_a.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 1 mesh --profile "$tmp/prof_b.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 mesh --profile "$tmp/prof_c.json" > /dev/null
cmp "$tmp/prof_a.json" "$tmp/prof_b.json"
cmp "$tmp/prof_a.json" "$tmp/prof_c.json"
cmp "$tmp/prof_a.json.trace.json" "$tmp/prof_b.json.trace.json"
cmp "$tmp/prof_a.json.trace.json" "$tmp/prof_c.json.trace.json"

echo "== engine parity: cycle-exact artifacts byte-identical to event =="
# The same soaks forced onto the cycle-exact core (--engine cycle) must
# reproduce the event engine's profile, trace, and chaos artifacts byte for
# byte — the engines differ in wall time only.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --engine cycle mesh --profile "$tmp/prof_cyc.json" > /dev/null
cmp "$tmp/prof_a.json" "$tmp/prof_cyc.json"
cmp "$tmp/prof_a.json.trace.json" "$tmp/prof_cyc.json.trace.json"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    chaos run --seeds 0..6 --report "$tmp/chaos_evt.json" > /dev/null
GNOC_ENGINE=cycle cargo run --release -q -p gnoc-cli --bin gnoc -- \
    chaos run --seeds 0..6 --report "$tmp/chaos_cyc.json" > /dev/null
cmp "$tmp/chaos_evt.json" "$tmp/chaos_cyc.json"

echo "== profile: bounded gnoc profile smoke on a chaos-style soak =="
# Same traffic recipe the chaos harness soaks with, bounded transfer count;
# exercises the report/trace/JSONL/SVG writers end to end.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    profile --transfers 500 --report "$tmp/smoke.json" \
    --perfetto "$tmp/smoke.trace.json" --jsonl "$tmp/smoke.jsonl" \
    --svg "$tmp/smoke.svg" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    chaos run --seeds 0..3 --profile "$tmp/chaos_prof.json" > /dev/null

echo "== fault suite smoke: plan round-trip + degraded campaign =="
cargo test -q -p gnoc-faults
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    faults gen --out "$tmp/plan.json" --seed 1 --dead-frac 0.02
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    faults check "$tmp/plan.json"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    campaign a100fs --seed 1 --lines 2 --samples 2 \
    --checkpoint "$tmp/campaign.json"

echo "== trace: record -> replay byte-identity across engines and job counts =="
# A faulted mesh soak is recorded once, then replayed under every worker
# count and both engine cores; each replay's canonical stats line must be
# byte-identical to the recording's (the footer digest seals the same
# bytes, so gnoc also self-checks — a divergence exits 1 before the cmp).
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace record mesh --seed 5 --transfers 800 --faults "$tmp/plan.json" \
    --out "$tmp/mesh.trc" --stats "$tmp/mesh-rec.json" > /dev/null
for jobs in 1 2 7; do
    cargo run --release -q -p gnoc-cli --bin gnoc -- \
        --jobs "$jobs" trace replay "$tmp/mesh.trc" --faults "$tmp/plan.json" \
        --stats "$tmp/mesh-rep-j$jobs.json" > /dev/null
    cmp "$tmp/mesh-rec.json" "$tmp/mesh-rep-j$jobs.json"
done
for engine in cycle event; do
    cargo run --release -q -p gnoc-cli --bin gnoc -- \
        --engine "$engine" trace replay "$tmp/mesh.trc" --faults "$tmp/plan.json" \
        --stats "$tmp/mesh-rep-$engine.json" > /dev/null
    cmp "$tmp/mesh-rec.json" "$tmp/mesh-rep-$engine.json"
done

echo "== trace: 4-device ring fabric and campaign record -> replay =="
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace record fabric --devices 4 --topology ring --seed 9 --transfers 400 \
    --out "$tmp/fabric.trc" --stats "$tmp/fabric-rec.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace replay "$tmp/fabric.trc" --stats "$tmp/fabric-rep.json" > /dev/null
cmp "$tmp/fabric-rec.json" "$tmp/fabric-rep.json"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace record campaign v100 --seed 2 --lines 2 --samples 2 \
    --out "$tmp/camp.trc" --stats "$tmp/camp-rec.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace replay "$tmp/camp.trc" --stats "$tmp/camp-rep.json" > /dev/null
cmp "$tmp/camp-rec.json" "$tmp/camp-rep.json"

echo "== trace: record -> kill -> validate -> replay salvage, corrupt -> exit 1 =="
# A writer killed mid-stream leaves a truncated artifact. Simulated by
# cutting the recording short of its footer: validate must warn and call it
# salvageable (exit 0), replay must drive the complete prefix (exit 0).
size=$(wc -c < "$tmp/mesh.trc")
head -c "$((size - 500))" "$tmp/mesh.trc" > "$tmp/mesh-cut.trc"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace validate "$tmp/mesh-cut.trc" > "$tmp/cut.out" 2>&1
grep -q "truncated" "$tmp/cut.out"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace replay "$tmp/mesh-cut.trc" --faults "$tmp/plan.json" > /dev/null
# A flipped byte is corruption, not truncation: exit 1, naming the chunk.
cp "$tmp/mesh.trc" "$tmp/mesh-bad.trc"
printf '\xff' | dd of="$tmp/mesh-bad.trc" bs=1 seek="$((size / 2))" \
    conv=notrunc 2> /dev/null
set +e
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    trace validate "$tmp/mesh-bad.trc" 2> "$tmp/corrupt.err"
corrupt_rc=$?
set -e
[ "$corrupt_rc" -eq 1 ]
grep -q "chunk" "$tmp/corrupt.err"

echo "== chaos: oracle-catches-bugs suite (bug-hooks) =="
cargo test -q -p gnoc-chaos --features bug-hooks

echo "== chaos: bounded soak with replay differential oracle =="
# A violation prints the oracle name plus the shrunk reproducer path and
# exits nonzero, failing the gate. --replay records each iteration's
# traffic and re-drives it through a fresh simulator: any recorded-vs-
# replayed stats divergence is a determinism bug and fires the oracle.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --replay --seeds 0..12 --wall-ms 120000 \
    --state "$tmp/chaos-state.json" --repro-dir "$tmp/repros"

echo "== chaos: hidden-plan detection soak (fixed seeds, wall deadline) =="
# Plans are applied physically but hidden from routing; the detection
# oracle scores the health layer's detected-vs-ground-truth set. Any miss,
# false quarantine, or late detection prints the oracle name plus the
# shrunk reproducer path and exits nonzero, failing the gate.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --detect --seeds 0..12 --wall-ms 120000 \
    --state "$tmp/chaos-detect-state.json" --repro-dir "$tmp/repros-detect"

echo "== fabric: bounded multi-GPU chaos soak (fixed seeds, wall deadline) =="
# Cross-device soaks over a 4-device ring compose the fabric with the
# per-die reliable mesh; a delivery/progress/differential/detection
# violation prints the oracle name plus the shrunk reproducer path and
# exits nonzero, failing the gate.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --seeds 0..12 --devices 4 --topology ring \
    --wall-ms 120000 --state "$tmp/chaos-fabric-state.json" \
    --repro-dir "$tmp/repros-fabric"

echo "== serve: daemon smoke (overload-safe queue, cache, crash recovery) =="
# A daemon under --row-delay-ms so the kill -9 below reliably lands mid-
# campaign; the campaign checkpoint and the fsynced journal must carry the
# job across the crash.
gnoc_bin="target/release/gnoc"
serve_state="$tmp/serve-state"
serve_sock="$tmp/serve.sock"
"$gnoc_bin" serve --state "$serve_state" --socket "$serve_sock" \
    --row-delay-ms 20 > "$tmp/serve1.log" &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.05; done

# Leg (a): the one-shot CLI's output line for the same request.
"$gnoc_bin" campaign v100 --seed 7 --lines 2 --samples 2 \
    | tail -1 > "$tmp/oneshot.txt"

# Kill -9 mid-campaign; the victim client dies with the daemon.
"$gnoc_bin" submit campaign v100 --seed 7 --lines 2 --samples 2 \
    --socket "$serve_sock" > /dev/null 2>&1 &
victim_pid=$!
sleep 0.7
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
ls "$serve_state"/ckpt/*.json > /dev/null  # the checkpoint survived

# Restart: journal replay resumes the campaign; the same request completes
# (leg d) and then hits the cache (leg c). Run the resumed leg at --jobs 2
# and the cached leg at --jobs 1 to cross worker counts too.
rm -f "$serve_sock"
"$gnoc_bin" --jobs 2 serve --state "$serve_state" --socket "$serve_sock" \
    > "$tmp/serve2.log" &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.05; done
"$gnoc_bin" submit campaign v100 --seed 7 --lines 2 --samples 2 \
    --socket "$serve_sock" --payload-out "$tmp/resumed.json" \
    --summary > "$tmp/resumed-summary.txt"
"$gnoc_bin" submit campaign v100 --seed 7 --lines 2 --samples 2 \
    --socket "$serve_sock" --payload-out "$tmp/cached.json" \
    | grep -q '"cached":true'
# A chaos job, a trace replay, and a health snapshot exercise the other
# op paths; the daemon's replay verdict must match the local recording.
"$gnoc_bin" submit chaos --seed-count 2 --transfers 16 \
    --socket "$serve_sock" > /dev/null
"$gnoc_bin" trace record mesh --seed 3 --transfers 200 \
    --out "$tmp/serve.trc" > /dev/null
"$gnoc_bin" submit replay "$tmp/serve.trc" --socket "$serve_sock" --summary \
    > "$tmp/replay-summary.txt"
grep -q "matches the recording" "$tmp/replay-summary.txt"
"$gnoc_bin" submit health --socket "$serve_sock" | grep -q '"overload":"closed"'
"$gnoc_bin" submit shutdown --socket "$serve_sock" > /dev/null
wait "$serve_pid"
grep -q "recovered 1 unfinished job(s) from the journal" "$tmp/serve2.log"

# Leg (b): the same request served cold by a fresh single-worker daemon.
"$gnoc_bin" --jobs 1 serve --state "$tmp/serve-cold" --socket "$serve_sock" \
    > /dev/null &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.05; done
"$gnoc_bin" submit campaign v100 --seed 7 --lines 2 --samples 2 \
    --socket "$serve_sock" --payload-out "$tmp/cold.json" > /dev/null
"$gnoc_bin" submit shutdown --socket "$serve_sock" > /dev/null
wait "$serve_pid"

# The determinism pin: (b) cold, (c) cached, and (d) crash-resumed payloads
# are byte-identical across --jobs 1 and 2, and the payload summary equals
# the one-shot CLI line (a).
cmp "$tmp/cold.json" "$tmp/resumed.json"
cmp "$tmp/cold.json" "$tmp/cached.json"
cmp "$tmp/oneshot.txt" "$tmp/resumed-summary.txt"

echo "== bench: serve cold-vs-cached latency and throughput (BENCH_serve.json) =="
cargo run --release -q -p gnoc-bench --bin bench_serve -- BENCH_serve.json

echo "== bench: detection latency within oracle bounds (BENCH_health.json) =="
cargo run --release -q -p gnoc-bench --bin bench_health -- BENCH_health.json

echo "== bench: flight-recorder overhead A/B/A (BENCH_profile.json) =="
cargo run --release -q -p gnoc-bench --bin bench_profile -- BENCH_profile.json

echo "== bench: cross-device soak latency/retry/failover (BENCH_fabric.json) =="
cargo run --release -q -p gnoc-bench --bin bench_fabric -- BENCH_fabric.json

echo "== bench: trace record overhead A/B/A + corrupt detection (BENCH_trace.json) =="
cargo run --release -q -p gnoc-bench --bin bench_trace -- BENCH_trace.json

echo "== validate: every artifact row carries schema 1 =="
cargo run --release -q -p gnoc-bench --bin validate_bench -- \
    BENCH_par.json BENCH_noc.json BENCH_health.json BENCH_profile.json \
    BENCH_fabric.json BENCH_serve.json BENCH_trace.json \
    "$tmp/prof_a.json" "$tmp/smoke.json" "$tmp/chaos_prof.json"

echo "ci.sh: all green"
