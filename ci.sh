#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test check.
# Usage: ./ci.sh
set -euo pipefail

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "ci.sh: all green"
