#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test check.
# Usage: ./ci.sh
set -euo pipefail

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q (GNOC_JOBS=2) =="
cargo build --release
# GNOC_JOBS=2 routes every env-resolved worker pool through the parallel
# path; all results are asserted bit-identical to serial, so this only
# widens coverage, never changes expectations.
GNOC_JOBS=2 cargo test -q

echo "== bench: serial-vs-parallel wall time (BENCH_par.json) =="
cargo run --release -q -p gnoc-bench --bin bench_par -- BENCH_par.json

echo "== profile: trace determinism (same soak twice, --jobs 1 vs 2) =="
# The flight recorder timestamps in virtual cycles only, so the same soak
# must produce byte-identical traces across runs and worker counts. Any
# wall-clock or thread-id leak into the trace fails the gate here.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 1 mesh --profile "$tmp/prof_a.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 1 mesh --profile "$tmp/prof_b.json" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 mesh --profile "$tmp/prof_c.json" > /dev/null
cmp "$tmp/prof_a.json" "$tmp/prof_b.json"
cmp "$tmp/prof_a.json" "$tmp/prof_c.json"
cmp "$tmp/prof_a.json.trace.json" "$tmp/prof_b.json.trace.json"
cmp "$tmp/prof_a.json.trace.json" "$tmp/prof_c.json.trace.json"

echo "== profile: bounded gnoc profile smoke on a chaos-style soak =="
# Same traffic recipe the chaos harness soaks with, bounded transfer count;
# exercises the report/trace/JSONL/SVG writers end to end.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    profile --transfers 500 --report "$tmp/smoke.json" \
    --perfetto "$tmp/smoke.trace.json" --jsonl "$tmp/smoke.jsonl" \
    --svg "$tmp/smoke.svg" > /dev/null
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    chaos run --seeds 0..3 --profile "$tmp/chaos_prof.json" > /dev/null

echo "== fault suite smoke: plan round-trip + degraded campaign =="
cargo test -q -p gnoc-faults
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    faults gen --out "$tmp/plan.json" --seed 1 --dead-frac 0.02
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    faults check "$tmp/plan.json"
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    campaign a100fs --seed 1 --lines 2 --samples 2 \
    --checkpoint "$tmp/campaign.json"

echo "== chaos: oracle-catches-bugs suite (bug-hooks) =="
cargo test -q -p gnoc-chaos --features bug-hooks

echo "== chaos: bounded soak (fixed seeds, wall deadline) =="
# A violation prints the oracle name plus the shrunk reproducer path and
# exits nonzero, failing the gate.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --seeds 0..12 --wall-ms 120000 \
    --state "$tmp/chaos-state.json" --repro-dir "$tmp/repros"

echo "== chaos: hidden-plan detection soak (fixed seeds, wall deadline) =="
# Plans are applied physically but hidden from routing; the detection
# oracle scores the health layer's detected-vs-ground-truth set. Any miss,
# false quarantine, or late detection prints the oracle name plus the
# shrunk reproducer path and exits nonzero, failing the gate.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --detect --seeds 0..12 --wall-ms 120000 \
    --state "$tmp/chaos-detect-state.json" --repro-dir "$tmp/repros-detect"

echo "== fabric: bounded multi-GPU chaos soak (fixed seeds, wall deadline) =="
# Cross-device soaks over a 4-device ring compose the fabric with the
# per-die reliable mesh; a delivery/progress/differential/detection
# violation prints the oracle name plus the shrunk reproducer path and
# exits nonzero, failing the gate.
cargo run --release -q -p gnoc-cli --bin gnoc -- \
    --jobs 2 chaos run --seeds 0..12 --devices 4 --topology ring \
    --wall-ms 120000 --state "$tmp/chaos-fabric-state.json" \
    --repro-dir "$tmp/repros-fabric"

echo "== bench: detection latency within oracle bounds (BENCH_health.json) =="
cargo run --release -q -p gnoc-bench --bin bench_health -- BENCH_health.json

echo "== bench: flight-recorder overhead A/B/A (BENCH_profile.json) =="
cargo run --release -q -p gnoc-bench --bin bench_profile -- BENCH_profile.json

echo "== bench: cross-device soak latency/retry/failover (BENCH_fabric.json) =="
cargo run --release -q -p gnoc-bench --bin bench_fabric -- BENCH_fabric.json

echo "== validate: every artifact row carries schema 1 =="
cargo run --release -q -p gnoc-bench --bin validate_bench -- \
    BENCH_par.json BENCH_health.json BENCH_profile.json BENCH_fabric.json \
    "$tmp/prof_a.json" "$tmp/smoke.json" "$tmp/chaos_prof.json"

echo "ci.sh: all green"
