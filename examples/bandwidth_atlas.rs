//! Bandwidth atlas: the paper's Section IV bandwidth characterisation across
//! all three presets — per-slice profiles, input speedups and chip-wide
//! aggregates.
//!
//! Run with: `cargo run --release -p gnoc-core --example bandwidth_atlas`

use gnoc_core::microbench::bandwidth::{
    aggregate_fabric_gbps, aggregate_memory_gbps, sm_slice_profile_gbps,
};
use gnoc_core::{input_speedups, AccessKind, GpuDevice, Histogram, SmId, Summary};

fn main() {
    for mut dev in [GpuDevice::v100(3), GpuDevice::a100(3), GpuDevice::h100(3)] {
        let name = dev.spec().name.clone();
        println!("=== {name} ===");

        // Fig. 9a: aggregates.
        let fabric = aggregate_fabric_gbps(&mut dev);
        let mem = aggregate_memory_gbps(&mut dev);
        println!(
            "aggregate: L2 fabric {fabric:.0} GB/s, memory {mem:.0} GB/s ({:.0}% of peak) — fabric/memory = {:.2}x",
            100.0 * mem / dev.spec().mem_peak_gbps,
            fabric / mem
        );

        // Figs. 9b / 12 / 13: single-SM per-slice profile.
        let profile = sm_slice_profile_gbps(&mut dev, SmId::new(0));
        let s = Summary::of(&profile);
        let hist = Histogram::new(&profile, 15.0, 70.0, 22);
        println!(
            "SM0 per-slice bandwidth: {s} — {} peak(s) in the distribution",
            hist.peak_count(0.2)
        );

        // Fig. 10: input speedups.
        let r = input_speedups(&dev, AccessKind::ReadHit);
        let w = input_speedups(&dev, AccessKind::Write);
        println!(
            "input speedup (reads):  TPC {:.2}  GPC_l {:.1}/{}  GPC_g {:.1}/{}{}",
            r.tpc,
            r.gpc_local,
            r.gpc_tpcs,
            r.gpc_global,
            r.gpc_sms,
            r.cpc
                .map(|c| format!("  CPC {:.1}/{}", c, r.cpc_sms.unwrap()))
                .unwrap_or_default(),
        );
        println!(
            "input speedup (writes): TPC {:.2}  GPC_l {:.1}/{}  GPC_g {:.1}/{}{}\n",
            w.tpc,
            w.gpc_local,
            w.gpc_tpcs,
            w.gpc_global,
            w.gpc_sms,
            w.cpc
                .map(|c| format!("  CPC {:.1}/{}", c, w.cpc_sms.unwrap()))
                .unwrap_or_default(),
        );
    }
}
