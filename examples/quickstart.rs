//! Quickstart: reproduce the paper's headline observation in a few lines —
//! L2 access latency on a V100 is *non-uniform* and determined by physical
//! placement, while bandwidth to each slice is uniform.
//!
//! Run with: `cargo run --release -p gnoc-core --example quickstart`

use gnoc_core::{GpuDevice, LatencyProbe, SliceId, SmId, Summary};

fn main() {
    // A virtual V100 with a fixed measurement seed: results are reproducible.
    let mut gpu = GpuDevice::v100(42);
    let probe = LatencyProbe::default();

    // --- Observation #1: latency from one SM to the 32 L2 slices. ----------
    let sm = SmId::new(24); // the SM the paper plots in Fig. 1a
    let profile = probe.sm_profile(&mut gpu, sm);
    let lat = Summary::of(&profile);
    println!("L2 hit latency from {sm} on {}:", gpu.spec().name);
    println!("  {lat}");
    println!(
        "  non-uniformity: {:.0} cycles between nearest and farthest slice\n",
        lat.span()
    );

    // Which slices are closest / farthest?
    let mut order: Vec<usize> = (0..profile.len()).collect();
    order.sort_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap());
    println!(
        "  fastest slice: L2S{} at {:.0} cycles | slowest slice: L2S{} at {:.0} cycles\n",
        order[0],
        profile[order[0]],
        order[order.len() - 1],
        profile[order[order.len() - 1]],
    );

    // --- Observation #8: bandwidth to each slice is uniform. ---------------
    let bw: Vec<f64> = (0..8)
        .map(|s| {
            gnoc_core::microbench::bandwidth::sms_to_slice_gbps(
                &mut gpu,
                &[sm],
                SliceId::new(s * 4),
            )
        })
        .collect();
    let bw_summary = Summary::of(&bw);
    println!("single-SM bandwidth to 8 sample slices:");
    println!("  {bw_summary}");
    println!(
        "  => latency varies by {:.0}% but bandwidth by only {:.1}%",
        100.0 * lat.span() / lat.mean,
        100.0 * bw_summary.span() / bw_summary.mean,
    );
}
