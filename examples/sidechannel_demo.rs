//! Timing side-channel demo (paper Section V): the AES last-round key
//! recovery and RSA exponent-weight attacks succeed under the GPU's static
//! thread-block scheduling and fail under the paper's random-seed scheduling
//! defense, because the defense turns non-uniform NoC latency into noise.
//!
//! Run with: `cargo run --release -p gnoc-core --example sidechannel_demo`

use gnoc_core::{
    run_aes_attack, run_rsa_attack, AesAttackConfig, CtaScheduler, GpuDevice, RsaAttackConfig,
};

fn main() {
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    println!("=== AES last-round key recovery on a virtual A100 ===");
    for (label, scheduler) in [
        ("static scheduling (Fig. 18a)", CtaScheduler::Static),
        (
            "random-seed scheduling (Fig. 18b)",
            CtaScheduler::RandomSeed,
        ),
    ] {
        let mut dev = GpuDevice::a100(0);
        let cfg = AesAttackConfig {
            samples: 3000,
            scheduler,
            ..AesAttackConfig::new(key)
        };
        let r = run_aes_attack(&mut dev, &cfg, 42);
        let true_r = r.correlations[r.true_byte as usize];
        println!("{label}:");
        println!(
            "  best guess 0x{:02x} (true 0x{:02x}) — {} | corr(true)={:.3}, margin={:.3}",
            r.best_guess,
            r.true_byte,
            if r.succeeded() {
                "KEY BYTE RECOVERED"
            } else {
                "attack failed"
            },
            true_r,
            r.margin,
        );
        // Show the top four guesses, Fig. 18 style.
        let mut order: Vec<usize> = (0..256).collect();
        order.sort_by(|&a, &b| r.correlations[b].partial_cmp(&r.correlations[a]).unwrap());
        for &g in order.iter().take(4) {
            println!("    guess 0x{:02x}: r = {:+.3}", g, r.correlations[g]);
        }
    }

    println!("\n=== RSA exponent-weight timing attack on a virtual A100 ===");
    for (label, scheduler) in [
        ("static scheduling (Fig. 19a)", CtaScheduler::Static),
        (
            "random-seed scheduling (Fig. 19b)",
            CtaScheduler::RandomSeed,
        ),
    ] {
        let dev = GpuDevice::a100(0);
        let cfg = RsaAttackConfig {
            samples: 150,
            scheduler,
            ..RsaAttackConfig::default()
        };
        let r = run_rsa_attack(&dev, &cfg, 7);
        println!("{label}:");
        println!(
            "  fit: time = {:.0}·ones + {:.0} cycles, R² = {:.3}",
            r.fit.slope, r.fit.intercept, r.fit.r_squared
        );
        println!(
            "  inverting one timing observation constrains the weight to ±{} bits",
            r.weight_uncertainty
        );
    }
}
