//! NoC architecture implications (paper Section VI): the mesh fairness
//! problem (Fig. 23), the reply-interface "network wall" (Figs. 21/22), and
//! the crossbar contrast (Implication #6).
//!
//! Run with: `cargo run --release -p gnoc-core --example noc_design_space`

use gnoc_core::noc::{
    priorwork, run_fairness, run_memsim, ArbiterKind, Crossbar, CrossbarConfig, FairnessConfig,
    MemSimConfig, NodeId, PacketClass,
};

fn main() {
    println!("=== Fig. 23: per-node throughput on a 6x6 mesh, 30 compute -> 6 MCs ===");
    for arbiter in [ArbiterKind::RoundRobin, ArbiterKind::AgeBased] {
        let r = run_fairness(FairnessConfig::paper(arbiter), 1);
        println!("{arbiter:?}: unfairness (max/min) = {:.2}", r.unfairness);
        for row in 0..5 {
            let cells: Vec<String> = (0..6)
                .map(|c| format!("{:.3}", r.throughput[row * 6 + c]))
                .collect();
            println!(
                "  mesh row {} (hops to MCs: {}): {}",
                row + 1,
                row + 1,
                cells.join(" ")
            );
        }
    }

    println!("\n=== Implication #6: a single-hop crossbar is uniform by construction ===");
    let mut xbar = Crossbar::new(CrossbarConfig {
        inputs: 30,
        outputs: 6,
        buffer_packets: 4,
        arbiter: ArbiterKind::RoundRobin,
    });
    let mut rng_state = 0x12345u64;
    for _ in 0..20_000 {
        for i in 0..30u32 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let dst = (rng_state >> 33) % 6;
            let _ = xbar.try_inject(
                NodeId::new(i),
                NodeId::new(dst as u32),
                1,
                PacketClass::Request,
            );
        }
        xbar.step();
        xbar.drain_ejected();
    }
    let d = &xbar.stats().delivered_by_src;
    let max = *d.iter().max().unwrap() as f64;
    let min = *d.iter().min().unwrap() as f64;
    println!("crossbar unfairness (max/min) = {:.3}", max / min);

    println!("\n=== Fig. 21: memory-channel utilisation vs reply-interface provisioning ===");
    for (label, cfg) in [
        (
            "under-provisioned reply interface (prior-work style)",
            MemSimConfig::underprovisioned(),
        ),
        (
            "provisioned reply interface (real-GPU style)",
            MemSimConfig::provisioned(),
        ),
    ] {
        let r = run_memsim(cfg, 3);
        let spark: String = r
            .utilization_timeline
            .iter()
            .take(40)
            .map(|&u| {
                let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
                ramp[((u * 9.0).round() as usize).min(9)]
            })
            .collect();
        println!("{label}:");
        println!(
            "  mean utilisation {:.0}%  timeline [{spark}]",
            100.0 * r.mean_utilization
        );
    }

    println!("\n=== Fig. 22: the 'network wall' in prior-work baselines ===");
    println!(
        "{:<6} {:<42} {:>9} {:>12} wall?",
        "ref", "system", "BW_MEM", "BW_NoC-MEM"
    );
    for p in priorwork::dataset() {
        println!(
            "{:<6} {:<42} {:>9.1} {:>12.1} {}",
            p.name,
            p.system,
            p.mem_bw_gbps,
            p.noc_mem_interface_gbps(),
            if p.network_wall() {
                "YES — interface-bound"
            } else {
                "no"
            },
        );
    }
}
