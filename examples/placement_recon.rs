//! Placement reverse engineering (paper Implication #1): recover the physical
//! grouping of SMs on all three presets purely from L2 latency profiles, as
//! an attacker needing kernel co-location would.
//!
//! Run with: `cargo run --release -p gnoc-core --example placement_recon`

use gnoc_core::{infer_placement, render_heatmap, GpuDevice, LatencyCampaign, LatencyProbe};

fn main() {
    let probe = LatencyProbe {
        working_set_lines: 4,
        samples: 8,
    };

    for mut dev in [GpuDevice::v100(7), GpuDevice::a100(7), GpuDevice::h100(7)] {
        let name = dev.spec().name.clone();
        println!("=== {name} ===");
        let campaign = LatencyCampaign::run(&mut dev, &probe);
        println!(
            "latency matrix: {} SMs x {} slices, grand mean {:.0} cycles",
            campaign.matrix.len(),
            campaign.matrix[0].len(),
            campaign.grand_mean()
        );

        // The Fig. 6 heatmap (SMs grouped by GPC on both axes).
        let h = dev.hierarchy().clone();
        let mut gpc_order: Vec<usize> = (0..h.num_sms()).collect();
        gpc_order.sort_by_key(|&i| (h.sm(gnoc_core::SmId::new(i as u32)).gpc, i));
        let reordered: Vec<Vec<f64>> = gpc_order
            .iter()
            .map(|&a| {
                gpc_order
                    .iter()
                    .map(|&b| campaign.correlation[a][b])
                    .collect()
            })
            .collect();
        let group = h.num_sms() / h.num_gpcs();
        println!("Pearson heatmap (GPC-grouped axes, '@'=r=1, ' '=r<=-1):");
        print!("{}", render_heatmap(&reordered, -1.0, 1.0, group));

        let report = infer_placement(&campaign, &dev, 2.5);
        println!(
            "position recovery: corr(profile similarity, physical proximity) = {:.2}",
            report.position_recovery_r
        );
        println!(
            "GPC column recovery: labels {:?} vs truth {:?} (Rand index {:.2})\n",
            report.gpc_labels, report.gpc_truth, report.gpc_rand_index
        );
    }
}
